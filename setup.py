"""Setuptools shim: enables editable installs in offline environments
where the `wheel` package (needed by PEP 517 editable builds) is absent —
`python setup.py develop` and legacy `pip install -e .` both work."""
from setuptools import setup

setup()
