"""Axis-aligned rectangles and the distance bounds used by query pruning.

Points are plain tuples of floats.  A :class:`Rect` is the usual minimum
bounding rectangle; the query algorithms rely on two of its properties:

* ``lower`` — the corner with minimal coordinates.  A skyline point ``t``
  prunes a node ``n`` iff ``t`` dominates ``n.lower`` (BBS [9] pruning);
* :func:`mindist` — the classic lower bound of any ranking function that is
  a monotone distance to a target point.
"""

from __future__ import annotations

from typing import Iterable, Sequence

Point = tuple[float, ...]


class Rect:
    """An immutable axis-aligned rectangle ``[lows, highs]``."""

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]) -> None:
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have the same dimensionality")
        if any(lo > hi for lo, hi in zip(lows, highs)):
            raise ValueError(f"degenerate rect: lows {lows!r} exceed highs {highs!r}")
        object.__setattr__(self, "lows", tuple(float(v) for v in lows))
        object.__setattr__(self, "highs", tuple(float(v) for v in highs))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle covering a single point."""
        return cls(point, point)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_all of an empty collection") from None
        lows = list(first.lows)
        highs = list(first.highs)
        for rect in it:
            for d, (lo, hi) in enumerate(zip(rect.lows, rect.highs)):
                if lo < lows[d]:
                    lows[d] = lo
                if hi > highs[d]:
                    highs[d] = hi
        return cls(lows, highs)

    # ------------------------------------------------------------------ #
    # basic measures
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> int:
        return len(self.lows)

    @property
    def lower(self) -> Point:
        """The minimal corner — the best possible point inside this rect."""
        return self.lows

    def area(self) -> float:
        result = 1.0
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R* split criterion)."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def center(self) -> Point:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    # ------------------------------------------------------------------ #
    # relations
    # ------------------------------------------------------------------ #

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (Guttman's ChooseLeaf)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return all(
            lo <= other_hi and other_lo <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def overlap_area(self, other: "Rect") -> float:
        result = 1.0
        for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs):
            side = min(hi, ohi) - max(lo, olo)
            if side <= 0:
                return 0.0
            result *= side
        return result

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(
            lo <= v <= hi for lo, hi, v in zip(self.lows, self.highs, point)
        )

    def contains_rect(self, other: "Rect") -> bool:
        return all(
            lo <= olo and ohi <= hi
            for lo, hi, olo, ohi in zip(self.lows, self.highs, other.lows, other.highs)
        )

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lows == other.lows and self.highs == other.highs

    def __hash__(self) -> int:
        return hash((self.lows, self.highs))

    def __repr__(self) -> str:
        return f"Rect({list(self.lows)}, {list(self.highs)})"


def mindist(rect: Rect, point: Sequence[float]) -> float:
    """Squared Euclidean distance from ``point`` to the nearest point of ``rect``.

    The standard R-tree lower bound: zero when the point lies inside.
    """
    total = 0.0
    for lo, hi, v in zip(rect.lows, rect.highs, point):
        if v < lo:
            delta = lo - v
        elif v > hi:
            delta = v - hi
        else:
            continue
        total += delta * delta
    return total


def sum_lower_bound(rect: Rect) -> float:
    """``min over x in rect of sum_d x_d`` — the skyline heap key d(n) of Algorithm 1."""
    return sum(rect.lows)


def dominates(p: Sequence[float], q: Sequence[float]) -> bool:
    """Whether ``p`` dominates ``q`` (≤ everywhere, < somewhere; minimising)."""
    strict = False
    for a, b in zip(p, q):
        if a > b:
            return False
        if a < b:
            strict = True
    return strict
