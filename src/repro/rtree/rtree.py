"""A dynamic R-tree with path-change tracking.

Implements Guttman's insertion algorithm [15] with quadratic or linear node
splitting, the R*-tree's forced re-insertion [16] as an option, and deletion
with tree condensation.  Beyond the textbook structure, this tree does two
things the P-Cube life cycle needs:

* every node lives on a page of a :class:`~repro.storage.disk.SimulatedDisk`
  so query algorithms can count block reads;
* every mutation returns the exact set of :class:`PathChange` records —
  ``(tid, old_path, new_path)`` — that incremental signature maintenance
  must apply (paper Section IV-B.3: only paths under split / re-inserted
  entries change; all other signatures keep their bits).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

from repro.rtree.geometry import Point, Rect
from repro.rtree.node import Entry, RTreeNode, subtree_nodes, subtree_tids, tuple_path
from repro.storage.disk import SimulatedDisk

#: Bytes per node entry: an MBR of single-precision floats (2 * dims * 4)
#: plus a 4-byte child pointer / tid — the layout under which the paper's
#: quoted fanouts (M = 204 for 2-D, ~94 for 5-D at 4 KB pages) come out.
_POINTER_BYTES = 4
#: Fixed per-node header (level, entry count).
_NODE_HEADER_BYTES = 8


def entry_bytes(dims: int) -> int:
    """On-disk size of one node entry."""
    return 2 * dims * 4 + _POINTER_BYTES


def fanout_for_page(page_size: int, dims: int) -> int:
    """Maximum entries per node for a given page size, as in the paper.

    With 4 KB pages this yields 204 for two dimensions and ~92 for five,
    matching the figures quoted in Section IV-B.1.
    """
    fanout = (page_size - _NODE_HEADER_BYTES) // entry_bytes(dims)
    return max(4, fanout)


class PathChange(NamedTuple):
    """One tuple's path before and after a structural change.

    ``old_path is None`` for a fresh insertion; ``new_path is None`` for a
    deletion.
    """

    tid: int
    old_path: tuple[int, ...] | None
    new_path: tuple[int, ...] | None


class RTree:
    """A paged, slot-stable R-tree over ``dims``-dimensional points.

    Args:
        dims: Dimensionality of the indexed points.
        max_entries: Node capacity ``M``.
        min_entries: Underflow threshold ``m`` (default ``max(2, 2M/5)``).
        split: ``"quadratic"`` (default), ``"linear"`` or ``"rstar"``.
        disk: Page store; a private one is created when omitted.
        tag: Page tag prefix for space accounting.
        forced_reinsert: R*-style re-insertion on first overflow per level
            (implied by ``split="rstar"``).
    """

    def __init__(
        self,
        dims: int,
        max_entries: int = 50,
        min_entries: int | None = None,
        split: str = "quadratic",
        disk: SimulatedDisk | None = None,
        tag: str = "rtree",
        forced_reinsert: bool | None = None,
    ) -> None:
        if dims < 1:
            raise ValueError("dims must be at least 1")
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        if split not in ("quadratic", "linear", "rstar"):
            raise ValueError(f"unknown split policy {split!r}")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = (
            max(1, (2 * max_entries) // 5) if min_entries is None else min_entries
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must lie in [1, {max_entries // 2}], "
                f"got {self.min_entries}"
            )
        self.split_policy = split
        self.forced_reinsert = (
            split == "rstar" if forced_reinsert is None else forced_reinsert
        )
        self.disk = disk if disk is not None else SimulatedDisk()
        self.tag = tag
        self._next_node_id = 0
        self._points: dict[int, Point] = {}
        self._tid_leaf: dict[int, RTreeNode] = {}
        self._paths: dict[int, tuple[int, ...]] = {}
        #: When set, node-page frees are routed here instead of
        #: ``disk.free`` — the epoch manager defers them until no pinned
        #: snapshot can still be traversing the node.
        self.free_hook: Callable[[int], None] | None = None
        #: Node ids whose pages were (re)written since the last freeze.
        #: :func:`repro.rtree.frozen.freeze` consumes and clears this to
        #: decide which frozen subtrees of the previous snapshot it may
        #: share structurally.
        self._touched_nodes: set[int] = set()
        #: Bumped whenever node ids are re-minted wholesale (``reset``,
        #: bulk adoption) — frozen snapshots from another generation must
        #: not be shared, since ids no longer correspond.
        self.generation = 0
        self.root = self._new_node(level=0)
        # Per-insert scratch state.
        self._dirty_tids: set[int] = set()
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------------ #
    # node bookkeeping
    # ------------------------------------------------------------------ #

    def _new_node(self, level: int) -> RTreeNode:
        node = RTreeNode(self._next_node_id, level, self.max_entries)
        self._next_node_id += 1
        node.page_id = self.disk.allocate(self.tag, size=_NODE_HEADER_BYTES)
        self.disk.write(node.page_id, node, size=_NODE_HEADER_BYTES)
        self._touched_nodes.add(node.node_id)
        return node

    def _sync_page(self, node: RTreeNode) -> None:
        size = _NODE_HEADER_BYTES + node.live_count() * entry_bytes(self.dims)
        assert node.page_id is not None
        self.disk.write(node.page_id, node, size=size)
        self._touched_nodes.add(node.node_id)

    def _free_node(self, node: RTreeNode) -> None:
        assert node.page_id is not None
        self._free_page(node.page_id)
        node.page_id = None

    def _free_page(self, page_id: int) -> None:
        if self.free_hook is not None:
            self.free_hook(page_id)
        else:
            self.disk.free(page_id)

    # ------------------------------------------------------------------ #
    # public views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._points)

    def height(self) -> int:
        """Number of node levels (1 for a lone leaf root)."""
        return self.root.level + 1

    def point_of(self, tid: int) -> Point:
        return self._points[tid]

    def path_of(self, tid: int) -> tuple[int, ...]:
        """The current path of a tuple (root slot first, leaf slot last)."""
        return self._paths[tid]

    def leaf_of(self, tid: int) -> RTreeNode:
        return self._tid_leaf[tid]

    def all_paths(self) -> dict[int, tuple[int, ...]]:
        """A snapshot of every tuple's path (used by signature generation)."""
        return dict(self._paths)

    def entry_at(self, path: Sequence[int]) -> Entry | None:
        """Resolve a root-based path of 1-based slots to its entry.

        Returns ``None`` for the empty path (the root is not an entry) and
        for paths that run off the tree or land on a free slot — callers in
        degraded mode treat that as "cannot resolve", never as "empty".
        """
        node: RTreeNode | None = self.root
        entry: Entry | None = None
        for position in path:
            if node is None:
                return None
            slot = position - 1
            if not 0 <= slot < len(node.entries):
                return None
            entry = node.entries[slot]
            if entry is None:
                return None
            node = entry.child
        return entry

    def nodes(self) -> Iterator[RTreeNode]:
        """All nodes, pre-order from the root."""
        return subtree_nodes(self.root)

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def range_search(self, rect: Rect) -> list[int]:
        """Tids of points inside ``rect`` (inclusive)."""
        result: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for _, entry in node.live_entries():
                if not rect.intersects(entry.mbr):
                    continue
                if node.is_leaf:
                    assert entry.tid is not None
                    if rect.contains_point(self._points[entry.tid]):
                        result.append(entry.tid)
                else:
                    assert entry.child is not None
                    stack.append(entry.child)
        return result

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #

    def insert(self, tid: int, point: Sequence[float]) -> list[PathChange]:
        """Insert a tuple; return every path change the insert caused.

        The first element always describes the new tuple; further elements
        appear only when node splits or forced re-insertions moved existing
        tuples (the situation Section IV-B.3 of the paper handles by
        collecting old and new paths).
        """
        if tid in self._points:
            raise KeyError(f"tid {tid} is already indexed")
        if len(point) != self.dims:
            raise ValueError(f"point has {len(point)} dims, tree has {self.dims}")
        point = tuple(float(v) for v in point)
        self._points[tid] = point
        self._dirty_tids = set()
        self._reinserted_levels = set()

        entry = Entry(Rect.from_point(point), tid=tid)
        self._insert_entry(entry, target_level=0)

        return self._collect_changes(inserted=(tid,), removed=())

    def _insert_entry(self, entry: Entry, target_level: int) -> None:
        node = self._choose_node(entry.mbr, target_level)
        if node.is_full():
            self._handle_overflow(node, entry)
        else:
            node.add_entry(entry)
            if entry.tid is not None:
                self._tid_leaf[entry.tid] = node
            self._sync_page(node)
            self._adjust_upward(node)

    def _choose_node(self, mbr: Rect, target_level: int) -> RTreeNode:
        node = self.root
        while node.level > target_level:
            best: tuple[float, float, RTreeNode] | None = None
            for _, entry in node.live_entries():
                assert entry.child is not None
                enlargement = entry.mbr.enlargement(mbr)
                key = (enlargement, entry.mbr.area(), entry.child)
                if best is None or key[:2] < best[:2]:
                    best = key
            assert best is not None, "internal node with no live entries"
            node = best[2]
        return node

    def _handle_overflow(self, node: RTreeNode, entry: Entry) -> None:
        if (
            self.forced_reinsert
            and node.parent is not None
            and node.level not in self._reinserted_levels
        ):
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(node, entry)
        else:
            self._split(node, entry)

    def _forced_reinsert(self, node: RTreeNode, entry: Entry) -> None:
        """R*-tree overflow treatment: evict and re-insert the outliers."""
        self._mark_dirty_subtree(node)
        entries = [e for _, e in node.live_entries()] + [entry]
        center = Rect.union_all([e.mbr for e in entries]).center()
        entries.sort(
            key=lambda e: -sum(
                (c - p) ** 2 for c, p in zip(e.mbr.center(), center)
            )
        )
        p = max(1, round(0.3 * len(entries)))
        evicted, kept = entries[:p], entries[p:]
        node.entries = []
        for kept_entry in kept:
            node.add_entry(kept_entry)
            if kept_entry.tid is not None:
                self._tid_leaf[kept_entry.tid] = node
        self._sync_page(node)
        self._adjust_upward(node)
        for evicted_entry in evicted:
            self._mark_dirty_entry(evicted_entry)
            self._insert_entry(evicted_entry, target_level=node.level)

    def _split(self, node: RTreeNode, entry: Entry) -> None:
        """Split ``node`` to absorb ``entry``; cascade upward as needed."""
        self._mark_dirty_subtree(node)
        all_entries = [e for _, e in node.live_entries()] + [entry]
        group_a, group_b = self._partition(all_entries)
        sibling = self._new_node(node.level)
        node.entries = []
        for moved in group_a:
            node.add_entry(moved)
            if moved.tid is not None:
                self._tid_leaf[moved.tid] = node
        for moved in group_b:
            sibling.add_entry(moved)
            if moved.tid is not None:
                self._tid_leaf[moved.tid] = sibling
        self._sync_page(node)
        self._sync_page(sibling)

        parent = node.parent
        if parent is None:
            new_root = self._new_node(node.level + 1)
            new_root.add_entry(Entry(node.mbr(), child=node))
            new_root.add_entry(Entry(sibling.mbr(), child=sibling))
            self.root = new_root
            self._sync_page(new_root)
            return
        # Refresh the split node's MBR in its parent, then place the sibling.
        slot = parent.slot_of_child(node)
        parent.entries[slot] = Entry(node.mbr(), child=node)
        sibling_entry = Entry(sibling.mbr(), child=sibling)
        if parent.is_full():
            self._handle_overflow(parent, sibling_entry)
        else:
            parent.add_entry(sibling_entry)
            self._sync_page(parent)
            self._adjust_upward(parent)

    def _adjust_upward(self, node: RTreeNode) -> None:
        """Recompute ancestor MBRs after a change inside ``node``."""
        child = node
        while child.parent is not None:
            parent = child.parent
            slot = parent.slot_of_child(child)
            existing = parent.entries[slot]
            assert existing is not None
            updated = child.mbr()
            if updated == existing.mbr:
                break
            parent.entries[slot] = Entry(updated, child=child)
            self._sync_page(parent)
            child = parent

    # ------------------------------------------------------------------ #
    # split partitioning policies
    # ------------------------------------------------------------------ #

    def _partition(self, entries: list[Entry]) -> tuple[list[Entry], list[Entry]]:
        if self.split_policy == "linear":
            return self._partition_linear(entries)
        if self.split_policy == "rstar":
            return self._partition_rstar(entries)
        return self._partition_quadratic(entries)

    def _partition_quadratic(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        """Guttman's quadratic split: worst pair as seeds, greedy assignment."""
        worst = -math.inf
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].mbr.union(entries[j].mbr).area()
                    - entries[i].mbr.area()
                    - entries[j].mbr.area()
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        mbr_a = group_a[0].mbr
        mbr_b = group_b[0].mbr
        remaining = [e for k, e in enumerate(entries) if k not in seeds]
        while remaining:
            # Honour the minimum fill requirement first.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                break
            # Pick the entry with the strongest preference.
            best_index = 0
            best_diff = -1.0
            for k, candidate in enumerate(remaining):
                d_a = mbr_a.enlargement(candidate.mbr)
                d_b = mbr_b.enlargement(candidate.mbr)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_index = k
            candidate = remaining.pop(best_index)
            d_a = mbr_a.enlargement(candidate.mbr)
            d_b = mbr_b.enlargement(candidate.mbr)
            if d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b)):
                group_a.append(candidate)
                mbr_a = mbr_a.union(candidate.mbr)
            else:
                group_b.append(candidate)
                mbr_b = mbr_b.union(candidate.mbr)
        return group_a, group_b

    def _partition_linear(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        """Guttman's linear split: seeds by greatest normalised separation."""
        best_dim = 0
        best_separation = -math.inf
        best_pair = (0, 1)
        for d in range(self.dims):
            lows = [e.mbr.lows[d] for e in entries]
            highs = [e.mbr.highs[d] for e in entries]
            highest_low = max(range(len(entries)), key=lambda k: lows[k])
            lowest_high = min(range(len(entries)), key=lambda k: highs[k])
            if highest_low == lowest_high:
                continue
            width = max(highs) - min(lows)
            separation = (
                (lows[highest_low] - highs[lowest_high]) / width if width else 0.0
            )
            if separation > best_separation:
                best_separation = separation
                best_dim = d
                best_pair = (lowest_high, highest_low)
        del best_dim
        i, j = best_pair
        group_a = [entries[i]]
        group_b = [entries[j]]
        mbr_a = group_a[0].mbr
        mbr_b = group_b[0].mbr
        for k, candidate in enumerate(entries):
            if k in (i, j):
                continue
            if len(group_a) + 1 >= len(entries) - self.min_entries + 1:
                group_b.append(candidate)
                mbr_b = mbr_b.union(candidate.mbr)
                continue
            if len(group_b) + 1 >= len(entries) - self.min_entries + 1:
                group_a.append(candidate)
                mbr_a = mbr_a.union(candidate.mbr)
                continue
            if mbr_a.enlargement(candidate.mbr) <= mbr_b.enlargement(candidate.mbr):
                group_a.append(candidate)
                mbr_a = mbr_a.union(candidate.mbr)
            else:
                group_b.append(candidate)
                mbr_b = mbr_b.union(candidate.mbr)
        return group_a, group_b

    def _partition_rstar(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        """R* split: margin-minimal axis, overlap-minimal distribution."""
        best: tuple[float, float, list[Entry], list[Entry]] | None = None
        n = len(entries)
        for d in range(self.dims):
            for key_name in ("lows", "highs"):
                ordered = sorted(
                    entries, key=lambda e: getattr(e.mbr, key_name)[d]
                )
                for split_at in range(self.min_entries, n - self.min_entries + 1):
                    left = ordered[:split_at]
                    right = ordered[split_at:]
                    mbr_l = Rect.union_all([e.mbr for e in left])
                    mbr_r = Rect.union_all([e.mbr for e in right])
                    overlap = mbr_l.overlap_area(mbr_r)
                    area = mbr_l.area() + mbr_r.area()
                    if best is None or (overlap, area) < (best[0], best[1]):
                        best = (overlap, area, left, right)
        assert best is not None
        return best[2], best[3]

    # ------------------------------------------------------------------ #
    # deletion / update
    # ------------------------------------------------------------------ #

    def delete(self, tid: int) -> list[PathChange]:
        """Remove a tuple; return all path changes (condensation included)."""
        if tid not in self._points:
            raise KeyError(f"tid {tid} is not indexed")
        self._dirty_tids = set()
        self._reinserted_levels = set()

        leaf = self._tid_leaf.pop(tid)
        del self._points[tid]
        slot = leaf.slot_of_tid(tid)
        leaf.remove_slot(slot)
        self._sync_page(leaf)
        self._dirty_tids.add(tid)

        orphans: list[Entry] = []
        node = leaf
        while node.parent is not None:
            parent = node.parent
            if node.live_count() < self.min_entries:
                self._mark_dirty_subtree(node)
                parent.remove_slot(parent.slot_of_child(node))
                orphans.extend(e for _, e in node.live_entries())
                self._free_node(node)
                self._sync_page(parent)
            else:
                self._adjust_upward(node)
            node = parent
        # Re-insert orphaned entries at their original levels (Guttman's
        # CondenseTree), leaf tuples first so subtree re-insertions see a
        # well-formed tree.
        orphans.sort(key=lambda e: 0 if e.tid is not None else 1)
        for orphan in orphans:
            if self.root.live_count() == 0 and orphan.child is not None:
                # Degenerate case: the tree emptied out; adopt the subtree.
                self._free_node(self.root)
                self.root = orphan.child
                self.root.parent = None
                continue
            level = 0 if orphan.tid is not None else orphan.child.level + 1
            self._insert_entry(orphan, target_level=min(level, self.root.level))
        # Shrink the root if it has a single child.
        while not self.root.is_leaf and self.root.live_count() == 1:
            (_, only) = next(self.root.live_entries())
            assert only.child is not None
            self._mark_dirty_subtree(self.root)
            self._free_node(self.root)
            self.root = only.child
            self.root.parent = None

        return self._collect_changes(inserted=(), removed=(tid,))

    def update(self, tid: int, new_point: Sequence[float]) -> list[PathChange]:
        """Move a tuple: delete + insert, with merged change records."""
        changes = self.delete(tid)
        changes_in = self.insert(tid, new_point)
        merged: dict[int, PathChange] = {}
        for change in changes + changes_in:
            if change.tid in merged:
                previous = merged[change.tid]
                merged[change.tid] = PathChange(
                    change.tid, previous.old_path, change.new_path
                )
            else:
                merged[change.tid] = change
        return [c for c in merged.values() if c.old_path != c.new_path]

    # ------------------------------------------------------------------ #
    # change tracking
    # ------------------------------------------------------------------ #

    def _mark_dirty_subtree(self, node: RTreeNode) -> None:
        self._dirty_tids.update(subtree_tids(node))

    def _mark_dirty_entry(self, entry: Entry) -> None:
        if entry.tid is not None:
            self._dirty_tids.add(entry.tid)
        else:
            assert entry.child is not None
            self._dirty_tids.update(subtree_tids(entry.child))

    def _collect_changes(
        self,
        inserted: Iterable[int],
        removed: Iterable[int],
    ) -> list[PathChange]:
        # ``self._paths`` still holds pre-mutation paths for every dirty
        # tuple; reading them lazily here keeps inserts O(dirty), not O(T).
        changes: list[PathChange] = []
        inserted = set(inserted)
        removed = set(removed)
        for tid in inserted:
            self._dirty_tids.add(tid)
        for tid in sorted(self._dirty_tids):
            if tid in removed:
                changes.append(PathChange(tid, self._paths.pop(tid), None))
                continue
            new_path = tuple_path(self._tid_leaf[tid], tid)
            old = self._paths.get(tid)
            self._paths[tid] = new_path
            if old != new_path:
                changes.append(PathChange(tid, old, new_path))
        # A split can shuffle slots inside one node while leaving some
        # tuples' full paths intact; those produce no change records, but
        # their stored paths were refreshed above either way.
        return changes

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #

    def reset(self, points: Iterable[tuple[int, Sequence[float]]]) -> None:
        """Discard the whole tree and rebuild it from ``points``.

        Crash recovery's reconstruction path: an interrupted mutation can
        leave nodes mid-split, so the tree is not repaired in place — every
        page under the tree's tag is freed (orphans included) and the
        points are re-inserted in ascending tid order.  The split policies
        are deterministic, so the resulting shape — hence every tuple
        path — is a pure function of the point set, and a recovery that is
        itself interrupted converges when re-run.
        """
        for page in list(self.disk.pages(self.tag)):
            self._free_page(page.page_id)
        self._points = {}
        self._tid_leaf = {}
        self._paths = {}
        self._dirty_tids = set()
        self._reinserted_levels = set()
        self._next_node_id = 0
        self.generation += 1
        self._touched_nodes = set()
        self.root = self._new_node(level=0)
        for tid, point in sorted(points):
            self.insert(tid, point)

    # ------------------------------------------------------------------ #
    # internal wiring for the bulk loader
    # ------------------------------------------------------------------ #

    def _adopt_bulk(
        self,
        root: RTreeNode,
        points: dict[int, Point],
        tid_leaf: dict[int, RTreeNode],
    ) -> None:
        """Install a pre-built tree (used by :func:`repro.rtree.bulk.bulk_load`)."""
        self._free_node(self.root)
        self.generation += 1
        self.root = root
        self._points = points
        self._tid_leaf = tid_leaf
        self._paths = {
            tid: tuple_path(leaf, tid) for tid, leaf in tid_leaf.items()
        }
