"""R-tree over the preference dimensions — the partition template of P-Cube.

The paper partitions data once over the preference dimensions using an
R-tree [15] (any hierarchical partition works; the signature only needs
*paths*).  This package provides:

* :mod:`repro.rtree.geometry` — rectangles, mindist, dominance corners;
* :mod:`repro.rtree.node` — nodes with **stable 1-based slots** (deletions
  leave free slots, insertions reuse the first free slot, exactly as the
  paper's maintenance section assumes), so tuple *paths* only change on node
  splits / re-insertions;
* :mod:`repro.rtree.rtree` — Guttman insertion with quadratic or linear
  splits, R*-style forced re-insertion, deletion with tree condensation,
  and precise *path-change tracking* feeding incremental signature
  maintenance;
* :mod:`repro.rtree.bulk` — Sort-Tile-Recursive bulk loading for fast
  construction at benchmark scale.
"""

from repro.rtree.geometry import Rect, mindist, sum_lower_bound
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.rtree import PathChange, RTree, fanout_for_page
from repro.rtree.bulk import bulk_load

__all__ = [
    "Entry",
    "PathChange",
    "RTree",
    "Rect",
    "RTreeNode",
    "bulk_load",
    "fanout_for_page",
    "mindist",
    "sum_lower_bound",
]
