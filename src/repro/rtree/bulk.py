"""Sort-Tile-Recursive bulk loading.

Benchmarks build R-trees over up to ~10^5 points; loading them by repeated
insertion is the paper-faithful *construction cost* (Figure 5 measures it),
but every other experiment only needs a good tree fast.  STR packs leaves by
recursive sort-and-tile and then packs each upper level the same way.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.rtree.geometry import Point, Rect
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.rtree import RTree


def _tile(
    items: list,
    key_point,
    dims: int,
    capacity: int,
    dim: int = 0,
) -> list[list]:
    """Recursively tile ``items`` into groups of at most ``capacity``.

    Final-dimension chunking distributes items *evenly* across the chunk
    count rather than greedily: greedy chunking can strand a near-empty
    last group (91 items at capacity 45 → 45, 45, 1), which would violate
    the R-tree's minimum-fill invariant and break later deletions.
    """
    if len(items) <= capacity:
        return [items]
    if dim >= dims - 1:
        items = sorted(items, key=lambda it: key_point(it)[dims - 1])
        n_chunks = math.ceil(len(items) / capacity)
        base, extra = divmod(len(items), n_chunks)
        groups = []
        start = 0
        for i in range(n_chunks):
            size = base + 1 if i < extra else base
            groups.append(items[start : start + size])
            start += size
        return groups
    n_groups = math.ceil(len(items) / capacity)
    remaining = dims - dim
    n_slabs = max(1, math.ceil(n_groups ** (1.0 / remaining)))
    slab_size = math.ceil(len(items) / n_slabs)
    items = sorted(items, key=lambda it: key_point(it)[dim])
    groups: list[list] = []
    for start in range(0, len(items), slab_size):
        slab = items[start : start + slab_size]
        groups.extend(_tile(slab, key_point, dims, capacity, dim + 1))
    return groups


def bulk_load(
    points: Sequence[tuple[int, Sequence[float]]],
    dims: int,
    max_entries: int = 50,
    fill_factor: float = 0.9,
    disk=None,
    tag: str = "rtree",
    **tree_kwargs,
) -> RTree:
    """Build an :class:`RTree` over ``(tid, point)`` pairs with STR packing.

    Args:
        points: The tuples to index; tids must be unique.
        dims: Point dimensionality.
        max_entries: Node capacity ``M``.
        fill_factor: Target fraction of ``M`` used per packed node.
        disk, tag, **tree_kwargs: Forwarded to :class:`RTree`.

    Returns:
        A fully wired tree (pages allocated, tuple paths computed).
    """
    tree = RTree(
        dims=dims, max_entries=max_entries, disk=disk, tag=tag, **tree_kwargs
    )
    if not points:
        return tree
    # Packed nodes must stay splittable into two legal halves (even
    # chunking yields groups of at least capacity/2 entries).
    capacity = min(
        max_entries,
        max(2 * tree.min_entries, round(max_entries * fill_factor)),
    )
    point_map: dict[int, Point] = {}
    for tid, coords in points:
        if tid in point_map:
            raise ValueError(f"duplicate tid {tid}")
        if len(coords) != dims:
            raise ValueError(f"point for tid {tid} has {len(coords)} dims, expected {dims}")
        point_map[tid] = tuple(float(v) for v in coords)

    # --- leaves ---------------------------------------------------------- #
    tid_leaf: dict[int, RTreeNode] = {}
    leaf_groups = _tile(
        list(point_map.items()),
        key_point=lambda item: item[1],
        dims=dims,
        capacity=capacity,
    )
    level_nodes: list[RTreeNode] = []
    for group in leaf_groups:
        leaf = tree._new_node(level=0)
        for tid, point in group:
            leaf.add_entry(Entry(Rect.from_point(point), tid=tid))
            tid_leaf[tid] = leaf
        tree._sync_page(leaf)
        level_nodes.append(leaf)

    # --- upper levels ----------------------------------------------------- #
    level = 0
    while len(level_nodes) > 1:
        level += 1
        parent_groups = _tile(
            level_nodes,
            key_point=lambda node: node.mbr().center(),
            dims=dims,
            capacity=capacity,
        )
        parents: list[RTreeNode] = []
        for group in parent_groups:
            parent = tree._new_node(level=level)
            for child in group:
                parent.add_entry(Entry(child.mbr(), child=child))
            tree._sync_page(parent)
            parents.append(parent)
        level_nodes = parents

    tree._adopt_bulk(level_nodes[0], point_map, tid_leaf)
    return tree
