"""R-tree nodes with stable 1-based entry slots.

The paper's incremental-maintenance section assumes slot stability:

    "Every node (including leaf) in R-tree can hold up to M entries.  We
    assume each node keeps track of its free entries.  When a new tuple is
    added, the first free entry is assigned."

So ``entries`` is a fixed-order list in which deletions leave ``None`` holes
and insertions fill the first hole.  A tuple's *path* — the sequence of slot
positions from the root down to its leaf slot — therefore only changes when
a node is split or its entries are re-inserted, which is exactly when
signatures must be patched.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.rtree.geometry import Point, Rect


class Entry:
    """One slot payload: either a child node (internal) or a tuple (leaf)."""

    __slots__ = ("mbr", "child", "tid")

    def __init__(
        self,
        mbr: Rect,
        child: Optional["RTreeNode"] = None,
        tid: int | None = None,
    ) -> None:
        if (child is None) == (tid is None):
            raise ValueError("an entry holds exactly one of: child node, tuple id")
        self.mbr = mbr
        self.child = child
        self.tid = tid

    @property
    def is_leaf_entry(self) -> bool:
        return self.tid is not None

    def __repr__(self) -> str:
        if self.is_leaf_entry:
            return f"Entry(tid={self.tid}, mbr={self.mbr})"
        return f"Entry(child=node#{self.child.node_id}, mbr={self.mbr})"


class RTreeNode:
    """A node holding up to ``capacity`` slots, some of which may be free.

    Attributes:
        node_id: Stable identifier (unique within a tree).
        level: 0 for leaves, increasing towards the root.
        entries: Slot list; ``None`` marks a free slot.  Slot ``i`` (0-based)
            corresponds to the paper's 1-based path component ``i + 1``.
        parent: The parent node, or ``None`` for the root.
        page_id: The simulated-disk page this node lives on.
    """

    __slots__ = ("node_id", "level", "entries", "parent", "page_id", "_capacity")

    def __init__(self, node_id: int, level: int, capacity: int) -> None:
        if capacity < 2:
            raise ValueError("node capacity must be at least 2")
        self.node_id = node_id
        self.level = level
        self.entries: list[Entry | None] = []
        self.parent: RTreeNode | None = None
        self.page_id: int | None = None
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # slot management
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def live_count(self) -> int:
        """Number of occupied slots."""
        return sum(1 for e in self.entries if e is not None)

    def is_full(self) -> bool:
        """No free slot and no room to append."""
        return self.live_count() >= self._capacity

    def live_entries(self) -> Iterator[tuple[int, Entry]]:
        """Yield ``(slot_index, entry)`` for occupied slots (0-based slots)."""
        for index, entry in enumerate(self.entries):
            if entry is not None:
                yield index, entry

    def add_entry(self, entry: Entry) -> int:
        """Place ``entry`` in the first free slot; return the 0-based slot.

        Raises:
            OverflowError: if the node is full — callers split first.
        """
        for index, existing in enumerate(self.entries):
            if existing is None:
                self.entries[index] = entry
                self._adopt(entry)
                return index
        if len(self.entries) >= self._capacity:
            raise OverflowError(f"node #{self.node_id} is full")
        self.entries.append(entry)
        self._adopt(entry)
        return len(self.entries) - 1

    def remove_slot(self, slot: int) -> Entry:
        """Free a slot and return the entry that occupied it."""
        entry = self.entries[slot]
        if entry is None:
            raise ValueError(f"slot {slot} of node #{self.node_id} is already free")
        self.entries[slot] = None
        # Trim trailing holes so widths stay tight for freshly built nodes.
        while self.entries and self.entries[-1] is None:
            self.entries.pop()
        return entry

    def slot_of_child(self, child: "RTreeNode") -> int:
        """The 0-based slot holding ``child``."""
        for index, entry in self.live_entries():
            if entry.child is child:
                return index
        raise ValueError(f"node #{child.node_id} is not a child of #{self.node_id}")

    def slot_of_tid(self, tid: int) -> int:
        """The 0-based slot holding tuple ``tid`` (leaf nodes only)."""
        for index, entry in self.live_entries():
            if entry.tid == tid:
                return index
        raise ValueError(f"tid {tid} not found in leaf #{self.node_id}")

    def _adopt(self, entry: Entry) -> None:
        if entry.child is not None:
            entry.child.parent = self

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    def mbr(self) -> Rect:
        """The MBR of all live entries."""
        live = [entry.mbr for _, entry in self.live_entries()]
        if not live:
            raise ValueError(f"node #{self.node_id} has no live entries")
        return Rect.union_all(live)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def path(self) -> tuple[int, ...]:
        """1-based slot positions from the root down to this node.

        The root's path is the empty tuple, matching the paper's SID of 0
        for the root.
        """
        components: list[int] = []
        node: RTreeNode = self
        while node.parent is not None:
            components.append(node.parent.slot_of_child(node) + 1)
            node = node.parent
        components.reverse()
        return tuple(components)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return (
            f"RTreeNode(#{self.node_id}, {kind}, "
            f"{self.live_count()}/{self._capacity} entries)"
        )


def tuple_path(leaf: RTreeNode, tid: int) -> tuple[int, ...]:
    """The full path of a tuple: its leaf's path plus its 1-based leaf slot."""
    return leaf.path() + (leaf.slot_of_tid(tid) + 1,)


def subtree_tids(node: RTreeNode) -> Iterator[int]:
    """All tuple ids stored under ``node`` (inclusive)."""
    if node.is_leaf:
        for _, entry in node.live_entries():
            assert entry.tid is not None
            yield entry.tid
        return
    for _, entry in node.live_entries():
        assert entry.child is not None
        yield from subtree_tids(entry.child)


def subtree_nodes(node: RTreeNode) -> Iterator[RTreeNode]:
    """All nodes under ``node`` (inclusive), pre-order."""
    yield node
    if node.is_leaf:
        return
    for _, entry in node.live_entries():
        assert entry.child is not None
        yield from subtree_nodes(entry.child)


Pointlike = Point  # re-export convenience for annotations
