"""Immutable R-tree snapshots with structural sharing across epochs.

A pinned reader must be able to traverse the partition tree while the
single maintenance writer splits and condenses nodes in place.  Rather than
locking the live tree, each published epoch carries a *frozen* copy:
plain-data nodes (:class:`FrozenRNode` / :class:`FrozenEntry`) that
duck-type exactly the read surface Algorithm 1 and the boolean fallback
use — ``root``, ``disk``, ``live_entries()``, ``live_count()``, ``mbr()``,
``entry_at()`` — and nothing mutable.

Freezing is cheap because it is copy-on-write at node granularity: the live
tree records which node pages were rewritten since the last freeze
(:attr:`RTree._touched_nodes`), and :func:`freeze` reuses any previous
frozen subtree whose node is untouched *and* whose frozen children were
themselves reused (a descendant can change without its ancestors being
rewritten — MBR-preserving leaf updates stop the upward adjustment early —
so reuse is decided bottom-up by child identity, not by the touched set
alone).  After ``reset`` or bulk adoption node ids are re-minted, so the
tree's ``generation`` is bumped and sharing across the boundary is refused.

Frozen nodes keep the live tree's page ids.  Pages are never reused by the
simulated disk and the epoch manager defers frees until no older reader
remains, so the access-counting reads issued during traversal stay valid
for the snapshot's whole lifetime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.rtree.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover
    from repro.rtree.rtree import RTree


class FrozenEntry:
    """An immutable slot payload: a child subtree or a tuple id."""

    __slots__ = ("mbr", "child", "tid")

    def __init__(
        self,
        mbr: Rect,
        child: "FrozenRNode | None" = None,
        tid: int | None = None,
    ) -> None:
        self.mbr = mbr
        self.child = child
        self.tid = tid

    @property
    def is_leaf_entry(self) -> bool:
        return self.tid is not None


class FrozenRNode:
    """An immutable R-tree node sharing its page id with the live node."""

    __slots__ = ("node_id", "page_id", "level", "_slots", "_mbr")

    def __init__(
        self,
        node_id: int,
        page_id: int,
        level: int,
        slots: list[tuple[int, FrozenEntry]],
    ) -> None:
        self.node_id = node_id
        self.page_id = page_id
        self.level = level
        self._slots = slots
        self._mbr = (
            Rect.union_all([entry.mbr for _, entry in slots]) if slots else None
        )

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def live_entries(self) -> Iterator[tuple[int, FrozenEntry]]:
        return iter(self._slots)

    def live_count(self) -> int:
        return len(self._slots)

    def mbr(self) -> Rect:
        if self._mbr is None:
            raise ValueError("empty node has no MBR")
        return self._mbr


class FrozenRTree:
    """The read surface of an R-tree at one epoch.

    Satisfies the duck-type contract of :class:`~repro.rtree.rtree.RTree`
    that query execution relies on; mutators simply do not exist.
    """

    def __init__(
        self,
        root: FrozenRNode,
        dims: int,
        disk,
        generation: int,
        size: int,
    ) -> None:
        self.root = root
        self.dims = dims
        self.disk = disk
        self.generation = generation
        self._size = size
        self._by_node_id: dict[int, FrozenRNode] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            self._by_node_id[node.node_id] = node
            for _, entry in node.live_entries():
                if entry.child is not None:
                    stack.append(entry.child)

    def __len__(self) -> int:
        return self._size

    def height(self) -> int:
        return self.root.level + 1

    def node_count(self) -> int:
        return len(self._by_node_id)

    def all_paths(self) -> dict[int, tuple[int, ...]]:
        """Every tuple's root-based path of 1-based slots at this epoch
        (the same convention as :meth:`RTree.all_paths` — what signature
        audits compare stored bits against)."""
        paths: dict[int, tuple[int, ...]] = {}
        stack: list[tuple[FrozenRNode, tuple[int, ...]]] = [(self.root, ())]
        while stack:
            node, prefix = stack.pop()
            for slot, entry in node.live_entries():
                path = prefix + (slot + 1,)
                if entry.is_leaf_entry:
                    paths[entry.tid] = path
                else:
                    stack.append((entry.child, path))
        return paths

    def entry_at(self, path: Sequence[int]) -> FrozenEntry | None:
        """Resolve a root-based path of 1-based slots (see
        :meth:`RTree.entry_at`); ``None`` when the path cannot be resolved
        in this snapshot."""
        node: FrozenRNode | None = self.root
        entry: FrozenEntry | None = None
        for position in path:
            if node is None:
                return None
            slot = position - 1
            entry = next(
                (e for s, e in node.live_entries() if s == slot), None
            )
            if entry is None:
                return None
            node = entry.child
        return entry


def freeze(tree: "RTree", previous: FrozenRTree | None = None) -> FrozenRTree:
    """Produce an immutable snapshot of ``tree``, sharing unchanged
    subtrees with ``previous`` when both come from the same generation.

    Consumes the tree's touched-node set: after freezing, the tree starts
    accumulating touches for the *next* snapshot.
    """
    reuse: dict[int, FrozenRNode] = {}
    if previous is not None and previous.generation == tree.generation:
        reuse = previous._by_node_id
    touched = tree._touched_nodes

    def _freeze(node) -> FrozenRNode:
        if node.is_leaf:
            prior = reuse.get(node.node_id)
            if prior is not None and node.node_id not in touched:
                return prior
            slots = [
                (slot, FrozenEntry(entry.mbr, tid=entry.tid))
                for slot, entry in node.live_entries()
            ]
            return FrozenRNode(node.node_id, node.page_id, node.level, slots)
        frozen_children = [
            (slot, entry, _freeze(entry.child))
            for slot, entry in node.live_entries()
        ]
        prior = reuse.get(node.node_id)
        if prior is not None and node.node_id not in touched:
            prior_children = {
                entry.child.node_id: entry.child
                for _, entry in prior.live_entries()
            }
            if len(prior_children) == len(frozen_children) and all(
                child is prior_children.get(child.node_id)
                for _, _, child in frozen_children
            ):
                return prior
        slots = [
            (slot, FrozenEntry(entry.mbr, child=child))
            for slot, entry, child in frozen_children
        ]
        return FrozenRNode(node.node_id, node.page_id, node.level, slots)

    root = _freeze(tree.root)
    tree._touched_nodes = set()
    return FrozenRTree(
        root=root,
        dims=tree.dims,
        disk=tree.disk,
        generation=tree.generation,
        size=len(tree),
    )
