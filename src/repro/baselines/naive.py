"""Ground-truth reference implementations (for tests and sanity checks).

These trade every optimisation for obviousness: the skyline is computed by
literal pairwise domination, top-k by sorting all scores.  Integration tests
compare every other method against these.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.query.ranking import RankingFunction
from repro.rtree.geometry import dominates


def naive_skyline(
    points: Iterable[tuple[int, Sequence[float]]]
) -> list[int]:
    """Tids of points not dominated by any other point (O(n²), exact)."""
    materialised = [(tid, tuple(point)) for tid, point in points]
    result: list[int] = []
    for tid, point in materialised:
        if not any(
            dominates(other, point)
            for other_tid, other in materialised
            if other_tid != tid
        ):
            result.append(tid)
    return result


def naive_topk(
    points: Iterable[tuple[int, Sequence[float]]],
    fn: RankingFunction,
    k: int,
) -> list[tuple[int, float]]:
    """The k smallest ``(tid, score)`` pairs, score-ascending (ties by tid)."""
    scored = [(fn.score(point), tid) for tid, point in points]
    best = heapq.nsmallest(k, scored)
    return [(tid, score) for score, tid in best]
