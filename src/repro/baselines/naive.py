"""Ground-truth reference implementations (for tests and sanity checks).

These trade every optimisation for obviousness: the skyline is computed by
literal pairwise domination, top-k by sorting all scores.  Integration tests
compare every other method against these.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.kernels.dominate import dominated_mask
from repro.query.ranking import RankingFunction


def naive_skyline(
    points: Iterable[tuple[int, Sequence[float]]]
) -> list[int]:
    """Tids of points not dominated by any other point (O(n²), exact).

    The pairwise test runs through :func:`dominated_mask`, which keeps the
    reference semantics exactly — self-pairs and same-tid duplicates never
    dominate — while doing the comparisons block-wise.
    """
    materialised = [(tid, tuple(point)) for tid, point in points]
    dominated = dominated_mask(materialised)
    return [
        tid
        for (tid, _), is_dominated in zip(materialised, dominated)
        if not is_dominated
    ]


def naive_topk(
    points: Iterable[tuple[int, Sequence[float]]],
    fn: RankingFunction,
    k: int,
) -> list[tuple[int, float]]:
    """The k smallest ``(tid, score)`` pairs, score-ascending (ties by tid)."""
    pairs = [(tid, tuple(point)) for tid, point in points]
    scores = fn.score_block([point for _, point in pairs])
    best = heapq.nsmallest(k, zip(scores, (tid for tid, _ in pairs)))
    return [(tid, score) for score, tid in best]
