"""Classic main-memory skyline algorithms.

Implemented from the literature the paper builds on: block-nested-loops and
divide-and-conquer from Borzsonyi et al. [2] and sort-first-skyline from
Chomicki et al. [7].  SFS is what the Boolean-first baseline uses for its
in-memory preference step (it is reliably the fastest of the three on the
selected subsets); all three are cross-checked against each other and the
naive reference in tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.rtree.geometry import dominates

Points = list[tuple[int, tuple[float, ...]]]


def sfs_skyline(points: Points) -> list[int]:
    """Sort-first skyline: presort by a monotone score, filter once.

    After sorting by ``sum(point)`` no later point can dominate an earlier
    one, so a single pass comparing against the accumulated skyline is
    complete.
    """
    ordered = sorted(points, key=lambda item: (sum(item[1]), item[0]))
    skyline: list[tuple[int, tuple[float, ...]]] = []
    for tid, point in ordered:
        if not any(dominates(s, point) for _, s in skyline):
            skyline.append((tid, point))
    return [tid for tid, _ in skyline]


def bnl_skyline(points: Points, window: int = 1024) -> list[int]:
    """Block-nested-loops skyline with a bounded comparison window.

    The original algorithm's timestamp rule, made explicit: a window member
    is final after a pass only if it entered the window *before* the first
    tuple overflowed — otherwise some overflow tuple was never compared
    against it, and the member must go around again with the overflow.
    """
    remaining = list(points)
    skyline: list[tuple[int, tuple[float, ...]]] = []
    while remaining:
        # (tid, point, entered_at_input_index)
        window_items: list[tuple[int, tuple[float, ...], int]] = []
        overflow: list[tuple[int, tuple[float, ...]]] = []
        first_overflow_at: int | None = None
        for position, (tid, point) in enumerate(remaining):
            dominated = False
            survivors: list[tuple[int, tuple[float, ...], int]] = []
            for w_tid, w_point, w_at in window_items:
                if dominates(w_point, point):
                    dominated = True
                    break
                if not dominates(point, w_point):
                    survivors.append((w_tid, w_point, w_at))
            if dominated:
                continue
            window_items = survivors
            if len(window_items) < window:
                window_items.append((tid, point, position))
            else:
                if first_overflow_at is None:
                    first_overflow_at = position
                overflow.append((tid, point))
        cutoff = first_overflow_at if first_overflow_at is not None else len(
            remaining
        )
        deferred: list[tuple[int, tuple[float, ...]]] = []
        for tid, point, entered_at in window_items:
            if entered_at < cutoff:
                skyline.append((tid, point))
            else:
                deferred.append((tid, point))
        remaining = deferred + overflow
    return [tid for tid, _ in skyline]


def dnc_skyline(points: Points, threshold: int = 64) -> list[int]:
    """Divide-and-conquer skyline: split on a median, merge by filtering."""
    if not points:
        return []
    tids = set(_dnc([(tid, tuple(p)) for tid, p in points], 0, threshold))
    return [tid for tid, _ in points if tid in tids]


def _dnc(points: Points, depth: int, threshold: int) -> list[int]:
    if len(points) <= threshold:
        return sfs_skyline(points)
    dims = len(points[0][1])
    dim = depth % dims
    ordered = sorted(points, key=lambda item: item[1][dim])
    mid = len(ordered) // 2
    left, right = ordered[:mid], ordered[mid:]
    left_sky = set(_dnc(left, depth + 1, threshold))
    right_sky = set(_dnc(right, depth + 1, threshold))
    left_points = {tid: point for tid, point in left if tid in left_sky}
    right_points = {tid: point for tid, point in right if tid in right_sky}
    # Cross-filter both halves.  The classic merge only filters the right
    # half, which is sound for a strict value split; a median split can put
    # equal split-dimension values on both sides, where a right point may
    # dominate a left one, so the symmetric check is required for
    # exactness.  (Transitivity makes filtering against the half-skylines,
    # rather than the full halves, sufficient.)
    survivors = [
        tid
        for tid, point in left_points.items()
        if not any(dominates(rp, point) for rp in right_points.values())
    ]
    survivors.extend(
        tid
        for tid, point in right_points.items()
        if not any(dominates(lp, point) for lp in left_points.values())
    )
    return survivors
