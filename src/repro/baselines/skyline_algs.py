"""Classic main-memory skyline algorithms.

Implemented from the literature the paper builds on: block-nested-loops and
divide-and-conquer from Borzsonyi et al. [2] and sort-first-skyline from
Chomicki et al. [7].  SFS is what the Boolean-first baseline uses for its
in-memory preference step (it is reliably the fastest of the three on the
selected subsets); all three are cross-checked against each other and the
naive reference in tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.backend import np, using_numpy
from repro.kernels.dominate import DominationBuffer, prefix_dominated_mask
from repro.kernels.mindist import sum_block
from repro.rtree.geometry import dominates

Points = list[tuple[int, tuple[float, ...]]]

#: SFS filter block size on the numpy backend: each chunk is tested
#: against the accumulated skyline in one ``dominates_block`` call.
_SFS_CHUNK = 1024


def sfs_skyline(points: Points, matrix=None) -> list[int]:
    """Sort-first skyline: presort by a monotone score, filter once.

    After sorting by ``sum(point)`` no later point can dominate an earlier
    one, so a single pass comparing against the accumulated skyline is
    complete.  The sort key and the domination filter both run through the
    batch kernels; the ``(Σ point, tid)`` order is backend-invariant
    because ``sum_block`` reproduces ``sum()`` bit-for-bit.

    ``matrix`` optionally carries the same coordinates as a float64
    ``(n, d)`` ndarray aligned with ``points`` (a columnar gather), so the
    numpy path never rebuilds it from per-row tuples.

    The numpy filter works in chunks rather than per point: a whole chunk
    is tested against the skyline-so-far in one block call, and only its
    survivors are checked (scalar, in order) against the few points the
    same chunk has already admitted — equivalent to the sequential pass,
    because after the sort a point can only be dominated by points that
    come before it.
    """
    if not points:
        return []
    if using_numpy():
        x = (
            matrix
            if matrix is not None
            else np.asarray(
                [point for _, point in points], dtype=np.float64
            )
        )
        tids = np.asarray([tid for tid, _ in points], dtype=np.int64)
        keys = np.asarray(sum_block(x), dtype=np.float64)
        order = np.lexsort((tids, keys))
        sorted_x = x[order]
        sorted_tids = tids[order].tolist()
        buffer = DominationBuffer(x.shape[1])
        result: list[int] = []
        for start in range(0, len(sorted_tids), _SFS_CHUNK):
            block = sorted_x[start : start + _SFS_CHUNK]
            dead = buffer.dominates_block(block)
            survivors = [
                offset for offset, is_dead in enumerate(dead) if not is_dead
            ]
            if not survivors:
                continue
            # Survivors of the buffer test can still be dominated by a
            # point admitted earlier in this same chunk; by transitivity
            # that equals "dominated by any earlier survivor", one
            # pairwise upper-triangle kernel call.
            in_chunk = prefix_dominated_mask(block[survivors])
            for offset, is_dead in zip(survivors, in_chunk):
                if is_dead:
                    continue
                buffer.add(tuple(block[offset].tolist()))
                result.append(sorted_tids[start + offset])
        return result
    keys = sum_block([point for _, point in points])
    ordered = [
        item
        for _, item in sorted(
            zip(keys, points), key=lambda kv: (kv[0], kv[1][0])
        )
    ]
    buffer = DominationBuffer(len(ordered[0][1]))
    result = []
    for tid, point in ordered:
        if not buffer.dominates_point(point):
            buffer.add(point)
            result.append(tid)
    return result


def bnl_skyline(points: Points, window: int = 1024) -> list[int]:
    """Block-nested-loops skyline with a bounded comparison window.

    The original algorithm's timestamp rule, made explicit: a window member
    is final after a pass only if it entered the window *before* the first
    tuple overflowed — otherwise some overflow tuple was never compared
    against it, and the member must go around again with the overflow.
    """
    remaining = list(points)
    skyline: list[tuple[int, tuple[float, ...]]] = []
    while remaining:
        # (tid, point, entered_at_input_index)
        window_items: list[tuple[int, tuple[float, ...], int]] = []
        overflow: list[tuple[int, tuple[float, ...]]] = []
        first_overflow_at: int | None = None
        for position, (tid, point) in enumerate(remaining):
            dominated = False
            survivors: list[tuple[int, tuple[float, ...], int]] = []
            for w_tid, w_point, w_at in window_items:
                if dominates(w_point, point):
                    dominated = True
                    break
                if not dominates(point, w_point):
                    survivors.append((w_tid, w_point, w_at))
            if dominated:
                continue
            window_items = survivors
            if len(window_items) < window:
                window_items.append((tid, point, position))
            else:
                if first_overflow_at is None:
                    first_overflow_at = position
                overflow.append((tid, point))
        cutoff = first_overflow_at if first_overflow_at is not None else len(
            remaining
        )
        deferred: list[tuple[int, tuple[float, ...]]] = []
        for tid, point, entered_at in window_items:
            if entered_at < cutoff:
                skyline.append((tid, point))
            else:
                deferred.append((tid, point))
        remaining = deferred + overflow
    return [tid for tid, _ in skyline]


def dnc_skyline(points: Points, threshold: int = 64) -> list[int]:
    """Divide-and-conquer skyline: split on a median, merge by filtering."""
    if not points:
        return []
    tids = set(_dnc([(tid, tuple(p)) for tid, p in points], 0, threshold))
    return [tid for tid, _ in points if tid in tids]


def _dnc(points: Points, depth: int, threshold: int) -> list[int]:
    if len(points) <= threshold:
        return sfs_skyline(points)
    dims = len(points[0][1])
    dim = depth % dims
    ordered = sorted(points, key=lambda item: item[1][dim])
    mid = len(ordered) // 2
    left, right = ordered[:mid], ordered[mid:]
    left_sky = set(_dnc(left, depth + 1, threshold))
    right_sky = set(_dnc(right, depth + 1, threshold))
    left_points = {tid: point for tid, point in left if tid in left_sky}
    right_points = {tid: point for tid, point in right if tid in right_sky}
    # Cross-filter both halves.  The classic merge only filters the right
    # half, which is sound for a strict value split; a median split can put
    # equal split-dimension values on both sides, where a right point may
    # dominate a left one, so the symmetric check is required for
    # exactness.  (Transitivity makes filtering against the half-skylines,
    # rather than the full halves, sufficient.)
    left_buffer = DominationBuffer(dims, points=list(left_points.values()))
    right_buffer = DominationBuffer(dims, points=list(right_points.values()))
    left_dominated = right_buffer.dominates_block(
        list(left_points.values())
    )
    right_dominated = left_buffer.dominates_block(
        list(right_points.values())
    )
    survivors = [
        tid
        for tid, dominated in zip(left_points, left_dominated)
        if not dominated
    ]
    survivors.extend(
        tid
        for tid, dominated in zip(right_points, right_dominated)
        if not dominated
    )
    return survivors
