"""The Boolean-first baseline.

Section VI-A: "We use B+-tree to index each boolean dimension.  Given the
boolean predicates, we first select tuples satisfying the boolean
conditions.  This may be conducted by index scan or table scan, and we
report the best performance of the two alternatives.  We then [compute] the
skylines or top-k results."

The access-path choice is made by a textbook cost comparison:

* *index scan* — descend the most selective conjunct's B+-tree, read its
  posting leaves (``BINDEX``), then fetch the distinct heap pages of the
  candidate tids (``BTABLE``) and verify the remaining conjuncts in memory;
* *table scan* — read every heap page once (``BTABLE``), filter in memory.

The preference step runs in memory over the selected subset (SFS for
skylines, a bounded heap for top-k); the baseline's "candidate heap" metric
(Figure 10) is the size of that selected subset — the memory this approach
has to hold regardless of how few answers come out.
"""

from __future__ import annotations

import heapq
import time
from typing import Sequence

from repro.baselines.skyline_algs import sfs_skyline
from repro.btree.btree import BPlusTree
from repro.cube.relation import Relation
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.storage.counters import BINDEX, BTABLE
from repro.storage.disk import SimulatedDisk


def build_boolean_indexes(
    relation: Relation,
    disk: SimulatedDisk | None = None,
    tag: str = "btree",
    order: int = 128,
) -> dict[str, BPlusTree]:
    """One B+-tree per boolean dimension, mapping value → tid."""
    disk = disk if disk is not None else relation.disk
    indexes: dict[str, BPlusTree] = {}
    for dim in relation.schema.boolean_dims:
        tree = BPlusTree(order=order, disk=disk, tag=f"{tag}:{dim}")
        position = relation.schema.boolean_position(dim)
        for tid in relation.tids():
            tree.insert(relation.bool_row(tid)[position], tid)
        indexes[dim] = tree
    return indexes


def _posting_length_estimate(
    relation: Relation, index: BPlusTree
) -> float:
    """Expected tuples per value under a uniform assumption (optimizer
    statistics: table size / distinct keys)."""
    distinct = sum(1 for _ in index.distinct_keys())
    return len(relation) / max(1, distinct)


def select_tuples(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    predicate: BooleanPredicate,
    stats: QueryStats,
    ticker=None,
) -> list[int]:
    """Boolean selection via the cheaper of index scan and table scan.

    ``ticker`` (the serving executor's deadline/cancel probe) fires once
    per tuple considered, so routed deadlines apply inside the scan.
    """
    if predicate.is_empty():
        selected_all: list[int] = []
        for tid in relation.scan(stats.counters, BTABLE):
            if ticker is not None:
                ticker()
            selected_all.append(tid)
        return selected_all

    # --- cost the two plans with optimizer-style estimates -------------- #
    best_dim: str | None = None
    best_estimate = float("inf")
    for dim, _ in predicate:
        estimate = _posting_length_estimate(relation, indexes[dim])
        if estimate < best_estimate:
            best_estimate = estimate
            best_dim = dim
    assert best_dim is not None
    index = indexes[best_dim]
    index_pages = best_estimate / max(1, index.order // 2) + index.height()
    # Cardenas' formula: expected distinct pages hit by k uniform tids.
    n_pages = relation.heap_page_count()
    heap_pages_touched = n_pages * (
        1.0 - (1.0 - 1.0 / n_pages) ** best_estimate
    )
    index_plan_cost = index_pages + heap_pages_touched
    scan_plan_cost = float(n_pages)

    conjuncts = predicate.conjuncts
    if index_plan_cost < scan_plan_cost:
        # Index scan on the most selective dimension, verify the rest.
        value = conjuncts[best_dim]
        candidate_tids = index.search(
            value, counters=stats.counters, category=BINDEX
        )
        selected: list[int] = []
        seen_pages: set[int] = set()
        for tid in sorted(candidate_tids):
            if ticker is not None:
                ticker()
            page = tid // relation.rows_per_page
            if page not in seen_pages:
                seen_pages.add(page)
                stats.counters.record(BTABLE)
            # B+-tree postings keep deleted tids (no index maintenance on
            # delete), so tombstones are filtered here, after paying for
            # the page that proves the row is dead.
            if relation.is_live(tid) and all(
                relation.bool_value(tid, dim) == val
                for dim, val in conjuncts.items()
            ):
                selected.append(tid)
        return selected
    # Table scan.
    selected = []
    for tid in relation.scan(stats.counters, BTABLE):
        if ticker is not None:
            ticker()
        if all(
            relation.bool_value(tid, dim) == val
            for dim, val in conjuncts.items()
        ):
            selected.append(tid)
    return selected


def boolean_first_skyline(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    predicate: BooleanPredicate,
    ticker=None,
) -> tuple[list[int], QueryStats]:
    """Boolean-then-preference skyline."""
    stats = QueryStats()
    started = time.perf_counter()
    candidates = select_tuples(relation, indexes, predicate, stats, ticker)
    stats.note_heap(len(candidates))
    points = [(tid, relation.pref_point(tid)) for tid in candidates]
    tids = sfs_skyline(points)
    stats.results = len(tids)
    stats.elapsed_seconds = time.perf_counter() - started
    return tids, stats


def boolean_first_topk(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    fn: RankingFunction,
    k: int,
    predicate: BooleanPredicate,
    ticker=None,
) -> tuple[list[tuple[int, float]], QueryStats]:
    """Boolean-then-preference top-k."""
    stats = QueryStats()
    started = time.perf_counter()
    candidates = select_tuples(relation, indexes, predicate, stats, ticker)
    stats.note_heap(len(candidates))
    scored = (
        (fn.score(relation.pref_point(tid)), tid) for tid in candidates
    )
    best = heapq.nsmallest(k, scored)
    ranked = [(tid, score) for score, tid in best]
    stats.results = len(ranked)
    stats.elapsed_seconds = time.perf_counter() - started
    return ranked, stats
