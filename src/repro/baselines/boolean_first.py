"""The Boolean-first baseline.

Section VI-A: "We use B+-tree to index each boolean dimension.  Given the
boolean predicates, we first select tuples satisfying the boolean
conditions.  This may be conducted by index scan or table scan, and we
report the best performance of the two alternatives.  We then [compute] the
skylines or top-k results."

The access-path choice is made by a textbook cost comparison:

* *index scan* — descend the most selective conjunct's B+-tree, read its
  posting leaves (``BINDEX``), then fetch the distinct heap pages of the
  candidate tids (``BTABLE``) and verify the remaining conjuncts in memory;
* *table scan* — read every heap page once (``BTABLE``), filter in memory.

The preference step runs in memory over the selected subset (SFS for
skylines, a bounded heap for top-k); the baseline's "candidate heap" metric
(Figure 10) is the size of that selected subset — the memory this approach
has to hold regardless of how few answers come out.
"""

from __future__ import annotations

import heapq
import time
from typing import Sequence

from repro.baselines.skyline_algs import sfs_skyline
from repro.btree.btree import BPlusTree
from repro.cube.relation import Relation
from repro.kernels import backend as kernel_backend
from repro.kernels.backend import np, using_numpy
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.storage.counters import BINDEX, BTABLE
from repro.storage.disk import SimulatedDisk


def build_boolean_indexes(
    relation: Relation,
    disk: SimulatedDisk | None = None,
    tag: str = "btree",
    order: int = 128,
) -> dict[str, BPlusTree]:
    """One B+-tree per boolean dimension, mapping value → tid."""
    disk = disk if disk is not None else relation.disk
    indexes: dict[str, BPlusTree] = {}
    for dim in relation.schema.boolean_dims:
        tree = BPlusTree(order=order, disk=disk, tag=f"{tag}:{dim}")
        position = relation.schema.boolean_position(dim)
        for tid in relation.tids():
            tree.insert(relation.bool_row(tid)[position], tid)
        indexes[dim] = tree
    return indexes


def _posting_length_estimate(
    relation: Relation, index: BPlusTree
) -> float:
    """Expected tuples per value under a uniform assumption (optimizer
    statistics: table size / distinct keys)."""
    distinct = sum(1 for _ in index.distinct_keys())
    return len(relation) / max(1, distinct)


def select_tuples(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    predicate: BooleanPredicate,
    stats: QueryStats,
    ticker=None,
) -> list[int]:
    """Boolean selection via the cheaper of index scan and table scan.

    ``ticker`` (the serving executor's deadline/cancel probe) fires once
    per tuple considered, so routed deadlines apply inside the scan.  When
    no ticker is installed, scans run page-at-a-time against the columnar
    projection — identical counted ``BTABLE``/``BINDEX`` reads (each heap
    page is read through :meth:`Relation.scan_pages` exactly where
    :meth:`Relation.scan` would read it), with the per-tuple predicate
    work vectorized.
    """
    use_vector = ticker is None and using_numpy()
    if predicate.is_empty():
        if use_vector:
            projection = relation.columnar()
            pages = [
                np.asarray(page, dtype=np.int64)
                for page in relation.scan_pages(stats.counters, BTABLE)
            ]
            if not pages:
                return []
            tids = np.concatenate(pages)
            return tids[projection.live[tids]].tolist()
        selected_all: list[int] = []
        for tid in relation.scan(stats.counters, BTABLE):
            if ticker is not None:
                ticker()
            selected_all.append(tid)
        return selected_all

    # --- cost the two plans with optimizer-style estimates -------------- #
    best_dim: str | None = None
    best_estimate = float("inf")
    for dim, _ in predicate:
        estimate = _posting_length_estimate(relation, indexes[dim])
        if estimate < best_estimate:
            best_estimate = estimate
            best_dim = dim
    assert best_dim is not None
    index = indexes[best_dim]
    index_pages = best_estimate / max(1, index.order // 2) + index.height()
    # Cardenas' formula: expected distinct pages hit by k uniform tids.
    n_pages = relation.heap_page_count()
    heap_pages_touched = n_pages * (
        1.0 - (1.0 - 1.0 / n_pages) ** best_estimate
    )
    index_plan_cost = index_pages + heap_pages_touched
    scan_plan_cost = float(n_pages)

    conjuncts = predicate.conjuncts
    if index_plan_cost < scan_plan_cost:
        # Index scan on the most selective dimension, verify the rest.
        value = conjuncts[best_dim]
        candidate_tids = index.search(
            value, counters=stats.counters, category=BINDEX
        )
        ordered = sorted(candidate_tids)
        keep: list[bool] | None = None
        if use_vector and ordered:
            projection = relation.columnar()
            match = projection.match_mask(conjuncts)
            tids = np.asarray(ordered, dtype=np.int64)
            # Postings outlive rows (no index maintenance on delete), so a
            # tid may point past the projection; those verify False.
            in_range = tids < projection.n
            ok = np.zeros(len(ordered), dtype=bool)
            if bool(in_range.any()):
                valid = tids[in_range]
                ok[in_range] = projection.live[valid] & match[valid]
            keep = ok.tolist()
        selected: list[int] = []
        seen_pages: set[int] = set()
        for index_pos, tid in enumerate(ordered):
            if ticker is not None:
                ticker()
            page = tid // relation.rows_per_page
            if page not in seen_pages:
                seen_pages.add(page)
                stats.counters.record(BTABLE)
            # B+-tree postings keep deleted tids (no index maintenance on
            # delete), so tombstones are filtered here, after paying for
            # the page that proves the row is dead.
            if keep is not None:
                if keep[index_pos]:
                    selected.append(tid)
            elif relation.is_live(tid) and all(
                relation.bool_value(tid, dim) == val
                for dim, val in conjuncts.items()
            ):
                selected.append(tid)
        return selected
    # Table scan.
    if use_vector:
        projection = relation.columnar()
        match = projection.match_mask(conjuncts)
        pages = [
            np.asarray(page, dtype=np.int64)
            for page in relation.scan_pages(stats.counters, BTABLE)
        ]
        if not pages:
            return []
        tids = np.concatenate(pages)
        hits = projection.live[tids] & match[tids]
        return tids[hits].tolist()
    selected = []
    for tid in relation.scan(stats.counters, BTABLE):
        if ticker is not None:
            ticker()
        if all(
            relation.bool_value(tid, dim) == val
            for dim, val in conjuncts.items()
        ):
            selected.append(tid)
    return selected


def _gather_points(relation: Relation, tids: Sequence[int]):
    """Preference points for the selected tids.

    On the numpy backend this is a columnar gather returning the float64
    matrix itself — downstream kernels (``score_block``, SFS) take it
    without per-row tuple copies.  Scalar backend: exact-float tuples.
    """
    if using_numpy() and tids:
        return relation.columnar().pref_block(tids)
    return [relation.pref_point(tid) for tid in tids]


def boolean_first_skyline(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    predicate: BooleanPredicate,
    ticker=None,
) -> tuple[list[int], QueryStats]:
    """Boolean-then-preference skyline."""
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    started = time.perf_counter()
    candidates = select_tuples(relation, indexes, predicate, stats, ticker)
    stats.note_heap(len(candidates))
    gathered = _gather_points(relation, candidates)
    if using_numpy() and candidates:
        # ``gathered`` is the columnar matrix; hand it to SFS directly.
        tids = sfs_skyline(
            list(zip(candidates, gathered)), matrix=gathered
        )
    else:
        tids = sfs_skyline(list(zip(candidates, gathered)))
    stats.results = len(tids)
    stats.elapsed_seconds = time.perf_counter() - started
    return tids, stats


def boolean_first_topk(
    relation: Relation,
    indexes: dict[str, BPlusTree],
    fn: RankingFunction,
    k: int,
    predicate: BooleanPredicate,
    ticker=None,
) -> tuple[list[tuple[int, float]], QueryStats]:
    """Boolean-then-preference top-k."""
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    started = time.perf_counter()
    candidates = select_tuples(relation, indexes, predicate, stats, ticker)
    stats.note_heap(len(candidates))
    scores = fn.score_block(_gather_points(relation, candidates))
    best = heapq.nsmallest(k, zip(scores, candidates))
    ranked = [(tid, score) for score, tid in best]
    stats.results = len(ranked)
    stats.elapsed_seconds = time.perf_counter() - started
    return ranked, stats
