"""The Domination-first baseline (called *Ranking* for top-k queries).

Section VI-A: "We combine the BBS algorithm [9] and minimal probing method
[3].  ...  The BBS algorithm is similar to Algorithm 1, except that there is
no boolean checking in the prune procedure.  For each candidate result, we
conduct a boolean verification guided by the minimal probing principle:
boolean verification involves randomly accessing data by tid stored in the
R-tree, and we only issue a boolean checking for a tuple in between lines 7
and 8."

So: disk accesses split into R-tree block reads (``DBLOCK``) and random
tuple accesses for verification (``DBOOL``) — the two series of Figure 9 —
and the lazy verification keeps extra candidates in the heap, which is what
inflates this baseline's peak heap size in Figure 10.
"""

from __future__ import annotations

import time

from repro.cube.relation import Relation
from repro.kernels import backend as kernel_backend
from repro.query.algorithm1 import (
    SearchState,
    SkylineStrategy,
    TopKStrategy,
    run_algorithm1,
)
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import DBLOCK, DBOOL


def bbs_skyline(
    rtree: RTree,
    pool: BufferPool | None = None,
    stats: QueryStats | None = None,
) -> tuple[list[int], QueryStats]:
    """Plain BBS [9]: progressive skyline with no boolean predicate.

    I/O-optimal in R-tree block reads, as the paper recalls; the base the
    Domination method builds on, and the ``BP = φ`` case of every method.
    """
    stats = stats if stats is not None else QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    strategy = SkylineStrategy(dims=rtree.dims)
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=None,
        pool=pool,
        block_category=DBLOCK,
        keep_lists=False,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    return [e.tid for e in state.results if e.tid is not None], stats


def _minimal_probe_verifier(
    relation: Relation,
    predicate: BooleanPredicate,
    stats: QueryStats,
):
    """Boolean verification by random tuple access (one ``DBOOL`` read).

    Probes bypass the buffer pool deliberately: minimal probing's cost
    model — and the paper's ``DBool`` series in Figure 9 — counts every
    verification as one random access.
    """
    requirements = [
        (relation.schema.boolean_position(dim), value)
        for dim, value in predicate
    ]

    def verify(tid: int) -> bool:
        bool_row, _ = relation.fetch(
            tid, counters=stats.counters, category=DBOOL
        )
        return all(bool_row[pos] == value for pos, value in requirements)

    return verify


def domination_first_skyline(
    relation: Relation,
    rtree: RTree,
    predicate: BooleanPredicate,
    pool: BufferPool | None = None,
    ticker=None,
) -> tuple[list[int], QueryStats, SearchState]:
    """BBS + minimal probing for skyline queries with boolean predicates.

    Note the correctness subtlety the implementation honours: a tuple that
    fails verification is *discarded entirely* — it must not prune others,
    because domination only counts within the predicate's subset.  That is
    precisely why this baseline surfaces (and verifies) so many candidates.
    """
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    strategy = SkylineStrategy(dims=rtree.dims)
    verifier = None
    if not predicate.is_empty():
        verifier = _minimal_probe_verifier(relation, predicate, stats)
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=None,
        verifier=verifier,
        pool=pool,
        block_category=DBLOCK,
        keep_lists=False,
        ticker=ticker,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    tids = [e.tid for e in state.results if e.tid is not None]
    return tids, stats, state


def ranking_topk(
    relation: Relation,
    rtree: RTree,
    fn: RankingFunction,
    k: int,
    predicate: BooleanPredicate,
    pool: BufferPool | None = None,
    ticker=None,
) -> tuple[list[tuple[int, float]], QueryStats, SearchState]:
    """BBS-style best-first top-k + minimal probing (the *Ranking* method)."""
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    strategy = TopKStrategy(fn, k)
    verifier = None
    if not predicate.is_empty():
        verifier = _minimal_probe_verifier(relation, predicate, stats)
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=None,
        verifier=verifier,
        pool=pool,
        block_category=DBLOCK,
        keep_lists=False,
        ticker=ticker,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    ranked = [
        (e.tid, e.key) for e in state.results if e.tid is not None
    ]
    return ranked, stats, state
