"""The paper's comparison methods (Section VI-A).

* **Boolean** (:mod:`repro.baselines.boolean_first`) — select the target
  subset first (B+-tree index scan or table scan, whichever is cheaper),
  then run the preference analysis in memory;
* **Domination / Ranking** (:mod:`repro.baselines.domination_first`) — BBS
  [9] over the R-tree with *minimal probing* [3]: boolean predicates are
  verified by random tuple accesses only for objects about to be reported;
* **IndexMerge** (:mod:`repro.baselines.index_merge`) — progressive and
  selective index merging after [14], top-k only;
* ground truth (:mod:`repro.baselines.naive`) and the classic skyline
  algorithms (:mod:`repro.baselines.skyline_algs`) used for verification
  and for Boolean-first's in-memory step.
"""

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
    build_boolean_indexes,
)
from repro.baselines.domination_first import (
    bbs_skyline,
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk

__all__ = [
    "bbs_skyline",
    "boolean_first_skyline",
    "boolean_first_topk",
    "build_boolean_indexes",
    "domination_first_skyline",
    "index_merge_topk",
    "naive_skyline",
    "naive_topk",
]
