"""The Index-merge baseline for top-k queries (after Xin et al. [14]).

Section VI-A: "We build B+-tree indices on boolean dimensions, and R-tree
index on preference dimensions.  Given a query with boolean predicates, we
join all corresponding indices.  The ranking function is re-formulated as
follows: if a data satisfies boolean predicates, the function value on
preference dimensions is returned.  Otherwise, it returns MAX value."

Concretely this joins the boolean⋈preference search *online*: candidates
stream out of the R-tree in score order, and boolean membership is decided
from the B+-tree indexes.  The "progressive and selective" merging of [14]
appears as the per-query choice between two merge plans:

* **merge** — read the full posting list of every conjunct (``BINDEX``
  pages), intersect them into a membership set, then filter candidates for
  free;
* **probe** — verify each streamed candidate by descending each conjunct's
  B+-tree (``BINDEX`` pages per probe).

The planner picks whichever is estimated cheaper — long posting lists with
small k favour probing, short ones favour merging.  Either way the join is
paid per query; P-Cube's point (Figure 13) is that the signature
*materialises the joint space offline*, so it never pays it.
"""

from __future__ import annotations

import time

from repro.btree.btree import BPlusTree
from repro.cube.relation import Relation
from repro.kernels import backend as kernel_backend
from repro.kernels.backend import np, using_numpy
from repro.query.algorithm1 import TopKStrategy, run_algorithm1
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import BINDEX, DBLOCK


def _estimate_posting_pages(
    relation: Relation, index: BPlusTree
) -> float:
    distinct = sum(1 for _ in index.distinct_keys())
    expected_posting = len(relation) / max(1, distinct)
    return expected_posting / max(1, index.order // 2)


def index_merge_topk(
    relation: Relation,
    rtree: RTree,
    indexes: dict[str, BPlusTree],
    fn: RankingFunction,
    k: int,
    predicate: BooleanPredicate,
    pool: BufferPool | None = None,
    ticker=None,
) -> tuple[list[tuple[int, float]], QueryStats]:
    """Progressive + selective index-merge top-k."""
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()

    conjuncts = list(predicate)
    verifier = None
    if conjuncts:
        # --- selective step: pick the merge plan ----------------------- #
        merge_cost = sum(
            _estimate_posting_pages(relation, indexes[dim])
            for dim, _ in conjuncts
        )
        expected_selectivity = 1.0
        for dim, _ in conjuncts:
            distinct = sum(1 for _ in indexes[dim].distinct_keys())
            expected_selectivity /= max(1, distinct)
        expected_candidates = (
            k / expected_selectivity if expected_selectivity > 0 else len(relation)
        )
        probe_cost = (
            expected_candidates
            * sum(indexes[dim].height() for dim, _ in conjuncts)
        )

        if merge_cost <= probe_cost:
            # --- merge: intersect full posting lists ------------------- #
            # The early break on an empty intersection skips the remaining
            # posting reads; both backends must break at the same point or
            # counted BINDEX I/O would diverge.
            vectorized = using_numpy()
            membership: set[int] | None = None
            merged = None
            for dim, value in conjuncts:
                posting = indexes[dim].search(
                    value, pool, stats.counters, category=BINDEX
                )
                if vectorized:
                    arr = np.asarray(posting, dtype=np.int64)
                    merged = (
                        np.unique(arr)
                        if merged is None
                        else np.intersect1d(merged, arr)
                    )
                    if merged.size == 0:
                        break
                else:
                    posting_set = set(posting)
                    membership = (
                        posting_set
                        if membership is None
                        else membership & posting_set
                    )
                    if not membership:
                        break
            if vectorized:
                qualifying = (
                    set(merged.tolist()) if merged is not None else set()
                )
            else:
                qualifying = membership or set()

            def verifier(tid: int) -> bool:
                return tid in qualifying

        else:
            # --- probe: per-candidate index descents ------------------- #
            def verifier(tid: int) -> bool:
                for dim, value in conjuncts:
                    found = indexes[dim].search(
                        value, pool, stats.counters, category=BINDEX
                    )
                    if tid not in found:
                        return False
                return True

    # --- progressive step: stream candidates in score order ------------ #
    strategy = TopKStrategy(fn, k)
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=None,
        verifier=verifier,
        pool=pool,
        block_category=DBLOCK,
        keep_lists=False,
        ticker=ticker,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    ranked = [(e.tid, e.key) for e in state.results if e.tid is not None]
    return ranked, stats
