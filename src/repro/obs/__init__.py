"""Observability: structured query-execution tracing.

See :mod:`repro.obs.trace` for the span/event model and
``tests/obs/test_trace.py`` for the contract (span per BBS phase, prune
events summing to :class:`~repro.query.stats.QueryStats`, <5% overhead
with tracing disabled).
"""

from repro.obs.trace import (
    COVER,
    DEGRADED,
    EXPAND,
    PRUNE,
    PRUNE_ARMS,
    REPORT,
    SIG_LOAD,
    Span,
    TraceEvent,
    Tracer,
)

__all__ = [
    "COVER",
    "DEGRADED",
    "EXPAND",
    "PRUNE",
    "PRUNE_ARMS",
    "REPORT",
    "SIG_LOAD",
    "Span",
    "TraceEvent",
    "Tracer",
]
