"""Structured query-execution tracing (the ``repro.obs`` layer).

The paper's claims are *measured* claims — execution time, disk accesses,
heap size — and every later optimisation needs to see *why* a query was
fast or slow: which prune arm fired on which entry, which partial
signatures were loaded for which cell, which phase spent the I/O.  This
module provides that visibility as a span tree:

* a :class:`Span` covers one phase (reader setup, heap init, the BBS
  search loop, ...) and records wall *and* CPU time plus the per-category
  :class:`~repro.storage.counters.IOCounters` delta observed while it was
  open;
* a :class:`TraceEvent` is a point record attached to the innermost open
  span — prune events tagged ``pref`` / ``bool`` / ``both``, partial-
  signature load events keyed ``(cell_id, ref_sid)``, node expansions,
  reader-assembly decisions;
* a :class:`Tracer` owns the stack and the finished roots and offers the
  aggregate views the tests and the bench runner consume
  (:meth:`Tracer.prune_counts`, :meth:`Tracer.sig_loads`,
  :meth:`Tracer.find_spans`, :meth:`Tracer.to_dict`).

Tracing is strictly opt-in: every instrumented call site in
``query/algorithm1.py``, ``query/engine.py``, ``core/store.py`` and
``core/pcube.py`` takes ``tracer=None`` and guards each hook with a single
``is not None`` test, so the disabled path costs one pointer comparison
per hook (<5% end-to-end, enforced by ``tests/obs/test_trace.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.storage.counters import IOCounters

#: The three prune-arm tags.  ``pref`` and ``bool`` mirror Algorithm 1's
#: two prune procedures (and sum to ``QueryStats.dominance_pruned`` /
#: ``boolean_pruned``); ``both`` marks entries known to fail both arms —
#: currently emitted by the engine's Lemma 2 prefilter when a previously
#: dominated entry also fails the new predicate's signature.
PRUNE_ARMS = ("pref", "bool", "both")

#: Canonical event kinds (arbitrary kinds are accepted).
PRUNE = "prune"
SIG_LOAD = "sig_load"
EXPAND = "expand"
REPORT = "report"
COVER = "cover"
DEGRADED = "degraded"


@dataclass
class TraceEvent:
    """One point record inside a span."""

    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, **self.fields}


class Span:
    """One timed phase of a query: wall/CPU clocks, I/O delta, children."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "events",
        "wall_seconds",
        "cpu_seconds",
        "io_delta",
        "_wall_started",
        "_cpu_started",
        "_io_before",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.children: list[Span] = []
        self.events: list[TraceEvent] = []
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.io_delta: dict[str, int] = {}
        self._wall_started = 0.0
        self._cpu_started = 0.0
        self._io_before: dict[str, int] = {}

    # -- lifecycle (driven by Tracer.span) ------------------------------ #

    def _open(self, counters: IOCounters | None) -> None:
        self._io_before = counters.snapshot() if counters is not None else {}
        self._cpu_started = time.process_time()
        self._wall_started = time.perf_counter()

    def _close(self, counters: IOCounters | None) -> None:
        self.wall_seconds = time.perf_counter() - self._wall_started
        self.cpu_seconds = time.process_time() - self._cpu_started
        if counters is not None:
            after = counters.snapshot()
            self.io_delta = {
                category: count - self._io_before.get(category, 0)
                for category, count in sorted(after.items())
                if count - self._io_before.get(category, 0)
            }

    # -- aggregate views ------------------------------------------------ #

    def io_total(self) -> int:
        return sum(self.io_delta.values())

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def iter_events(self) -> Iterator[TraceEvent]:
        """Every event in this subtree, span pre-order."""
        for span in self.iter_spans():
            yield from span.events

    def prune_counts(self) -> dict[str, int]:
        """Prune events in this subtree, tallied by arm."""
        counts = dict.fromkeys(PRUNE_ARMS, 0)
        for event in self.iter_events():
            if event.kind == PRUNE:
                counts[event.fields["arm"]] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view of the subtree (events summarised by kind)."""
        event_kinds: dict[str, int] = {}
        for event in self.events:
            event_kinds[event.kind] = event_kinds.get(event.kind, 0) + 1
        out: dict[str, Any] = {
            "name": self.name,
            "wall_ms": self.wall_seconds * 1e3,
            "cpu_ms": self.cpu_seconds * 1e3,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.io_delta:
            out["io"] = dict(self.io_delta)
        if event_kinds:
            out["events"] = dict(sorted(event_kinds.items()))
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_seconds * 1e3:.2f}ms, "
            f"events={len(self.events)}, children={len(self.children)})"
        )


class Tracer:
    """Collects the span tree and point events of one (or more) queries.

    Args:
        counters: The :class:`IOCounters` instance spans snapshot to
            compute per-span I/O deltas.  The query layer sets this to the
            running query's ``stats.counters`` (see
            :meth:`PreferenceEngine._run`); it can also be attached late
            via :attr:`counters` before the first span opens.
    """

    def __init__(self, counters: IOCounters | None = None) -> None:
        self.counters = counters
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle ------------------------------------------------- #

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root)."""
        span = Span(name, attrs or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span._open(self.counters)
        try:
            yield span
        finally:
            span._close(self.counters)
            self._stack.pop()

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- events --------------------------------------------------------- #

    def event(self, kind: str, **fields: Any) -> None:
        """Attach a point event to the innermost open span.

        Events emitted outside any span (e.g. a reader built ahead of the
        query span) land on a synthetic ``orphans`` root so they are never
        silently dropped.
        """
        if not self._stack:
            if not self.roots or self.roots[-1].name != "orphans":
                self.roots.append(Span("orphans"))
            self.roots[-1].events.append(TraceEvent(kind, fields))
            return
        self._stack[-1].events.append(TraceEvent(kind, fields))

    def prune(self, arm: str, **fields: Any) -> None:
        """Record one pruned candidate (``arm`` in :data:`PRUNE_ARMS`)."""
        if arm not in PRUNE_ARMS:
            raise ValueError(f"unknown prune arm {arm!r}; use {PRUNE_ARMS}")
        self.event(PRUNE, arm=arm, **fields)

    def sig_load(
        self, cell_id: str, ref_sid: int, outcome: str, seconds: float, **fields: Any
    ) -> None:
        """Record one partial-signature load attempt, keyed (cell, SID)."""
        self.event(
            SIG_LOAD,
            cell_id=cell_id,
            ref_sid=ref_sid,
            outcome=outcome,
            seconds=seconds,
            **fields,
        )

    # -- aggregate views ------------------------------------------------ #

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter_spans()

    def iter_events(self) -> Iterator[TraceEvent]:
        for root in self.roots:
            yield from root.iter_events()

    def find_spans(self, name: str) -> list[Span]:
        return [span for span in self.iter_spans() if span.name == name]

    def prune_counts(self) -> dict[str, int]:
        """All prune events across every root, tallied by arm."""
        counts = dict.fromkeys(PRUNE_ARMS, 0)
        for event in self.iter_events():
            if event.kind == PRUNE:
                counts[event.fields["arm"]] += 1
        return counts

    def sig_loads(self) -> list[tuple[str, int]]:
        """The ``(cell_id, ref_sid)`` keys of every load event, in order."""
        return [
            (event.fields["cell_id"], event.fields["ref_sid"])
            for event in self.iter_events()
            if event.kind == SIG_LOAD
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spans": [root.to_dict() for root in self.roots],
            "prune_counts": self.prune_counts(),
        }

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, open={len(self._stack)})"
