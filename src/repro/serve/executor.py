"""A multi-threaded query executor over pinned snapshots.

The serving pipeline, front to back:

* :meth:`QueryExecutor.submit` (or the per-kind conveniences) places a
  :class:`Ticket` on a **bounded admission queue**; a full queue rejects
  the submission immediately (:class:`AdmissionFull`) instead of building
  unbounded backlog — the caller sheds load or retries.
* A fixed pool of worker threads drains the queue.  Each worker **pins the
  current epoch snapshot**, binds a
  :class:`~repro.query.session.QuerySession` to it (sharing the executor's
  :class:`~repro.storage.buffer.BufferPool`), runs the query, and unpins —
  so maintenance can publish new epochs concurrently and old epochs are
  reclaimed exactly when their last in-flight query drains.
* A per-query **deadline** (measured from submission) and cooperative
  **cancellation** are enforced through the session's ticker, which the
  search loop polls on every heap pop; an expired or cancelled query
  aborts with :class:`QueryTimeout` / :class:`QueryCancelled` without
  poisoning the worker.
* The executor is **resilient by default** (see
  :mod:`repro.serve.resilience`): sessions run with deadline-budgeted
  storage retries, partial loads consult a shared per-(cell, SID)
  :class:`~repro.serve.resilience.BreakerBoard`, skyline/top-k queries may
  fall back to the exact boolean-first tier when even the search
  structures fault, and queued tickets whose deadline already lapsed are
  **shed** (:class:`QueryShed`) instead of wasting a worker.

Results carry their epoch and queue wait in ``stats`` (and on the query
span when a tracer is attached), and the executor aggregates fleet-level
tallies in :class:`~repro.serve.stats.ServingStats`; :meth:`health`
bundles those with fault, breaker and quarantine state for operators.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs.trace import Tracer
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.session import QueryResult, QuerySession
from repro.serve.resilience import Resilience
from repro.serve.stats import ServingStats
from repro.storage.buffer import BufferPool

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import PCubeSystem


class QueryTimeout(Exception):
    """The query exceeded its deadline (queue wait included)."""


class QueryShed(QueryTimeout):
    """The executor evicted a queued query that could not meet its deadline.

    Raised *instead of running the query at all* — a :class:`QueryTimeout`
    subclass (a shed is a deadline failure, just detected before any work
    was wasted on it).  Carries what a client-side backoff needs:

    Attributes:
        queue_depth: Tickets still queued when this one was shed.
        deadline_remaining: Seconds left on the deadline at shed time
            (negative: the deadline had already passed).
        retry_after: Suggested client wait before resubmitting, derived
            from the executor's observed mean service time and backlog.
    """

    def __init__(
        self,
        kind: str,
        queue_depth: int,
        deadline_remaining: float,
        retry_after: float,
    ) -> None:
        super().__init__(
            f"{kind} query shed: deadline_remaining="
            f"{deadline_remaining:.3f}s with {queue_depth} queued; "
            f"retry after {retry_after:.3f}s"
        )
        self.kind = kind
        self.queue_depth = queue_depth
        self.deadline_remaining = deadline_remaining
        self.retry_after = retry_after


class QueryCancelled(Exception):
    """The query was cancelled before it produced an answer."""


class AdmissionFull(RuntimeError):
    """The bounded admission queue is at capacity; shed or retry.

    Attributes:
        queue_depth: The queue's capacity (tickets pending at rejection).
        deadline_remaining: Seconds the rejected submission had left on its
            deadline (``None`` when it carried no deadline).
        retry_after: Suggested client wait before resubmitting.
    """

    def __init__(
        self,
        queue_depth: int,
        deadline_remaining: float | None = None,
        retry_after: float = 0.0,
    ) -> None:
        super().__init__(
            f"admission queue full ({queue_depth} pending); "
            f"retry after {retry_after:.3f}s"
        )
        self.queue_depth = queue_depth
        self.deadline_remaining = deadline_remaining
        self.retry_after = retry_after


class Ticket:
    """A submitted query: a future for its :class:`QueryResult`.

    Returned by :meth:`QueryExecutor.submit`; thread-safe.  ``result()``
    blocks until a worker finishes the query, then returns the
    :class:`~repro.query.session.QueryResult` or raises whatever the query
    raised (:class:`QueryTimeout` / :class:`QueryCancelled` included).
    """

    def __init__(
        self,
        kind: str,
        run: Callable[[QuerySession], QueryResult],
        deadline_at: float | None,
        tracer: Tracer | None = None,
    ) -> None:
        self.kind = kind
        self._run = run
        self.deadline_at = deadline_at
        self.tracer = tracer
        self.submitted_at = time.perf_counter()
        self.queue_wait_seconds = 0.0
        self.epoch: int | None = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    def cancel(self) -> bool:
        """Request cancellation; returns False if already finished.

        Cooperative: a running query aborts at its next ticker poll, a
        queued one aborts when a worker picks it up.
        """
        if self._done.is_set():
            return False
        self._cancel.set()
        return True

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.kind} ticket still pending")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.kind} ticket still pending")
        return self._error

    def _finish(
        self,
        result: QueryResult | None,
        error: BaseException | None,
    ) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def _ticker(self) -> None:
        """The cooperative abort probe (polled on every heap pop)."""
        if self._cancel.is_set():
            raise QueryCancelled(f"{self.kind} query cancelled")
        if (
            self.deadline_at is not None
            and time.perf_counter() > self.deadline_at
        ):
            raise QueryTimeout(f"{self.kind} query exceeded its deadline")


#: Queue sentinel that tells a worker to exit.
_STOP = object()


class QueryExecutor:
    """A thread pool serving snapshot-isolated preference queries.

    Args:
        system: The built system; epochs are enabled on it if they are not
            already (maintenance keeps working concurrently through the
            system's WAL-protected methods).
        threads: Worker count.
        queue_depth: Bounded admission-queue capacity; 0 disables the
            bound (unbounded backlog, not recommended for serving).
        pool: The shared buffer pool; by default one warm
            :class:`BufferPool` of ``pool_capacity`` pages over the
            system's disk, shared by all workers.
        default_deadline: Seconds from submission after which queries time
            out unless a per-submit deadline overrides it (``None`` — no
            deadline).
        eager_assembly: Forwarded to every query session.
        resilience: The :class:`~repro.serve.resilience.Resilience` knobs
            (breaker threshold, degradation chain, shedding).  ``None``
            (the default) uses the default-on configuration; pass e.g.
            ``Resilience(breaker_threshold=0, shed=False)`` to strip the
            machinery back to PR-4 behaviour.
        routing: Opt-in adaptive routing.  ``True`` attaches a
            :class:`~repro.route.QueryRouter` with the default
            :class:`~repro.route.RoutingPolicy`; pass a policy to
            configure it; ``None``/``False`` (the default) serves every
            skyline/top-k through the signature path exactly as before.
            Routed answers are canonicalised (skyline tids ascending,
            top-k sorted by ``(score, tid)``) and byte-identical to the
            unrouted engine's answer *sets*.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        system: "PCubeSystem",
        threads: int = 4,
        queue_depth: int = 64,
        pool: BufferPool | None = None,
        pool_capacity: int = 4096,
        default_deadline: float | None = None,
        eager_assembly: bool = False,
        resilience: Resilience | None = None,
        routing=None,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be positive")
        self.system = system
        self.epochs = system.enable_epochs()
        self.pool = (
            pool
            if pool is not None
            else BufferPool(system.rtree.disk, capacity=pool_capacity)
        )
        self.default_deadline = default_deadline
        self.eager_assembly = eager_assembly
        self.resilience = resilience if resilience is not None else Resilience()
        self.breakers = self.resilience.build_board()
        if self.breakers is not None:
            # Live-session healing: a rebuilt cell (quarantine lifted)
            # closes its breakers immediately — snapshot sessions also heal
            # via epoch comparison, but only once a newer epoch publishes.
            system.pcube.store.on_cell_rebuilt = self.breakers.reset
        self.router = None
        if routing:
            from repro.route import QueryRouter, RoutingPolicy

            policy = routing if isinstance(routing, RoutingPolicy) else None
            self.router = QueryRouter.for_system(
                system, policy=policy, breakers=self.breakers
            )
        self.stats = ServingStats()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._closed = False
        # In-flight registry: ticket id -> (ticket, started_at).  The
        # supervisor reads it to spot queries running past any reasonable
        # horizon (hung) — deadlines alone cannot, since a query wedged
        # below the ticker's poll points never observes its deadline.
        self._inflight: dict[int, tuple[Ticket, float]] = {}
        self._inflight_lock = threading.Lock()
        self.scrubber = None
        self.supervisor = None
        # Serialises the closed-check + enqueue in submit() against
        # shutdown(), so no ticket can slip in behind the stop sentinels
        # and block its waiter forever.
        self._admission_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(threads)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        kind: str,
        run: Callable[[QuerySession], QueryResult],
        deadline: float | None = None,
        tracer: Tracer | None = None,
    ) -> Ticket:
        """Admit one query; raises :class:`AdmissionFull` when saturated.

        ``run`` receives the snapshot-bound session and returns the query
        result; the per-kind conveniences below build it for you.  When
        shedding is enabled, a full queue first evicts queued tickets whose
        deadline already lapsed (failing them with :class:`QueryShed`)
        before rejecting the new submission.
        """
        if deadline is None:
            deadline = self.default_deadline
        ticket = Ticket(
            kind,
            run,
            deadline_at=(
                time.perf_counter() + deadline if deadline is not None else None
            ),
            tracer=tracer,
        )
        with self._admission_lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                if not (self.resilience.shed and self._evict_expired_locked()):
                    self._reject(ticket)
                try:
                    self._queue.put_nowait(ticket)
                except queue.Full:
                    self._reject(ticket)
        self.stats.note_submitted()
        return ticket

    def _retry_after(self) -> float:
        """A backoff hint: the backlog's expected drain time per worker."""
        snapshot = self.stats.snapshot()
        drained = snapshot["completed"] + snapshot["failed"]
        mean_run = snapshot["run_seconds"] / drained if drained else 0.01
        backlog = self._queue.qsize() + 1
        return mean_run * backlog / max(1, len(self._workers))

    def _reject(self, ticket: Ticket) -> None:
        self.stats.note_rejected()
        remaining = (
            ticket.deadline_at - time.perf_counter()
            if ticket.deadline_at is not None
            else None
        )
        raise AdmissionFull(
            self._queue.maxsize, remaining, self._retry_after()
        ) from None

    def _evict_expired_locked(self) -> int:
        """Shed queued tickets that can no longer meet their deadline.

        Called with the admission lock held when the queue is full.  Each
        evicted ticket resolves immediately with :class:`QueryShed`, so its
        waiters unblock without a worker ever picking it up.  Returns the
        number of tickets evicted.
        """
        now = time.perf_counter()
        survivors: list = []
        evicted: list[Ticket] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            # Balance the queue's unfinished-task count for this get —
            # survivors are re-registered by the put below, so join()
            # keeps waiting for exactly the tickets a worker will serve.
            self._queue.task_done()
            if (
                item is not _STOP
                and item.deadline_at is not None
                and now > item.deadline_at
            ):
                evicted.append(item)
            else:
                survivors.append(item)
        for item in survivors:
            self._queue.put_nowait(item)
        for ticket in evicted:
            error = QueryShed(
                ticket.kind,
                self._queue.qsize(),
                ticket.deadline_at - now,
                self._retry_after(),
            )
            self.stats.note_finished(
                "shed",
                queue_wait=now - ticket.submitted_at,
                run_seconds=0.0,
            )
            ticket._finish(None, error)
        return len(evicted)

    def skyline(
        self,
        predicate: BooleanPredicate | None = None,
        preference_by: tuple[str, ...] | None = None,
        deadline: float | None = None,
        tracer: Tracer | None = None,
    ) -> Ticket:
        if self.router is not None:
            router = self.router
            return self.submit(
                "skyline",
                lambda session: router.route(
                    session,
                    "skyline",
                    predicate=predicate,
                    preference_by=preference_by,
                    tracer=tracer,
                ),
                deadline=deadline,
                tracer=tracer,
            )
        return self.submit(
            "skyline",
            lambda session: session.skyline(
                predicate, preference_by=preference_by, tracer=tracer
            ),
            deadline=deadline,
            tracer=tracer,
        )

    def topk(
        self,
        fn: RankingFunction,
        k: int,
        predicate: BooleanPredicate | None = None,
        deadline: float | None = None,
        tracer: Tracer | None = None,
    ) -> Ticket:
        if self.router is not None:
            router = self.router
            return self.submit(
                "topk",
                lambda session: router.route(
                    session,
                    "topk",
                    predicate=predicate,
                    fn=fn,
                    k=k,
                    tracer=tracer,
                ),
                deadline=deadline,
                tracer=tracer,
            )
        return self.submit(
            "topk",
            lambda session: session.topk(fn, k, predicate, tracer=tracer),
            deadline=deadline,
            tracer=tracer,
        )

    def dynamic_skyline(
        self,
        query_point: Sequence[float],
        predicate: BooleanPredicate | None = None,
        deadline: float | None = None,
    ) -> Ticket:
        return self.submit(
            "dynamic_skyline",
            lambda session: session.dynamic_skyline(query_point, predicate),
            deadline=deadline,
        )

    def lower_hull(
        self,
        predicate: BooleanPredicate | None = None,
        deadline: float | None = None,
    ) -> Ticket:
        return self.submit(
            "lower_hull",
            lambda session: session.lower_hull(predicate),
            deadline=deadline,
        )

    # ------------------------------------------------------------------ #
    # the worker loop
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._serve(item)
            finally:
                self._queue.task_done()

    def _preflight(self, ticket: Ticket) -> None:
        """Abort queued-but-doomed tickets before paying for a pin.

        A lapsed deadline at pickup time is a *shed* when shedding is on
        (the query never ran; the typed error carries backoff hints) and a
        plain timeout otherwise; cancellation wins over both.
        """
        if ticket.cancelled:
            raise QueryCancelled(f"{ticket.kind} query cancelled")
        if ticket.deadline_at is None:
            return
        remaining = ticket.deadline_at - time.perf_counter()
        if remaining > 0:
            return
        if self.resilience.shed:
            raise QueryShed(
                ticket.kind,
                self._queue.qsize(),
                remaining,
                self._retry_after(),
            )
        raise QueryTimeout(f"{ticket.kind} query exceeded its deadline")

    def _serve(self, ticket: Ticket) -> None:
        queue_wait = time.perf_counter() - ticket.submitted_at
        ticket.queue_wait_seconds = queue_wait
        started = time.perf_counter()
        with self._inflight_lock:
            self._inflight[id(ticket)] = (ticket, started)
        outcome = "completed"
        result: QueryResult | None = None
        error: BaseException | None = None
        try:
            try:
                self._preflight(ticket)
                snapshot = self.epochs.pin()
                try:
                    ticket.epoch = snapshot.epoch
                    session = QuerySession.for_snapshot(
                        snapshot,
                        pool=self.pool,
                        eager_assembly=self.eager_assembly,
                        ticker=ticket._ticker,
                        deadline_at=ticket.deadline_at,
                        breakers=self.breakers,
                        degradation=self.resilience.degradation,
                    )
                    if ticket.tracer is not None:
                        with ticket.tracer.span(
                            "serve:query",
                            kind=ticket.kind,
                            epoch=snapshot.epoch,
                            queue_wait_seconds=queue_wait,
                        ):
                            result = ticket._run(session)
                    else:
                        result = ticket._run(session)
                    result.stats.queue_wait_seconds = queue_wait
                finally:
                    self.epochs.unpin(snapshot)
            except QueryShed as exc:
                outcome, error = "shed", exc
            except QueryTimeout as exc:
                outcome, error = "timed_out", exc
            except QueryCancelled as exc:
                outcome, error = "cancelled", exc
            except BaseException as exc:  # noqa: BLE001 - surfaced via Ticket
                outcome, error = "failed", exc
            try:
                self.stats.note_finished(
                    outcome,
                    queue_wait=queue_wait,
                    run_seconds=time.perf_counter() - started,
                    epoch=ticket.epoch,
                    stats=result.stats if result is not None else None,
                )
            except BaseException as exc:  # noqa: BLE001 - must not hang waiters
                # Aggregation is bookkeeping: a bug here must fail the
                # ticket, never leave its waiters blocked forever.
                if error is None:
                    result, error = None, exc
        finally:
            with self._inflight_lock:
                self._inflight.pop(id(ticket), None)
            ticket._finish(result if error is None else None, error)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def inflight(self) -> list[dict]:
        """Currently running queries (kind, seconds running, epoch)."""
        now = time.perf_counter()
        with self._inflight_lock:
            entries = list(self._inflight.values())
        return [
            {
                "kind": ticket.kind,
                "running_seconds": now - started,
                "epoch": ticket.epoch,
            }
            for ticket, started in entries
        ]

    def enable_scrubbing(
        self,
        pages_per_tick: int = 256,
        cells_per_tick: int = 16,
        interval: float = 0.005,
        repair: bool = True,
        hung_after: float = 5.0,
        stalled_after: float = 5.0,
        start: bool = True,
    ):
        """Attach a background scrubber and supervisor (idempotent).

        The scrubber thread continuously re-verifies page checksums and
        cross-structure invariants under pinned epochs, quarantining and
        rebuilding damaged signature cells; the supervisor folds its
        findings into :meth:`health` together with hung-query and
        stalled-maintenance watches.  Returns the supervisor.
        """
        from repro.serve.scrub import Scrubber, Supervisor

        if self.scrubber is None:
            self.scrubber = Scrubber(
                self.system,
                pages_per_tick=pages_per_tick,
                cells_per_tick=cells_per_tick,
                interval=interval,
                repair=repair,
            )
            self.supervisor = Supervisor(
                system=self.system,
                executor=self,
                scrubber=self.scrubber,
                hung_after=hung_after,
                stalled_after=stalled_after,
            )
        if start:
            self.scrubber.start()
        return self.supervisor

    def health(self) -> dict:
        """One operator-facing report of the deployment's resilience state.

        Bundles the serving tallies, the store's fault/recovery counters,
        the breaker board (``None`` when breakers are disabled) and the
        current quarantine backlog — what ``python -m repro.serve
        --health`` prints.
        """
        store = self.system.pcube.store
        quarantined = store.quarantined_cells()
        return {
            "epoch": self.epochs.current_epoch,
            "queue_depth": self._queue.qsize(),
            "workers": len(self._workers),
            "serving": self.stats.snapshot(),
            "faults": store.fault_stats.snapshot(),
            "breakers": (
                self.breakers.snapshot() if self.breakers is not None else None
            ),
            "quarantined_cells": [cell.cell_id for cell in quarantined],
            "router": (
                self.router.snapshot() if self.router is not None else None
            ),
            "inflight": self.inflight(),
            "scrubber": (
                self.scrubber.report() if self.scrubber is not None else None
            ),
            "supervisor": (
                self.supervisor.report()
                if self.supervisor is not None
                else None
            ),
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def drain(self) -> None:
        """Block until every admitted ticket has been served."""
        self._queue.join()

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting, then stop the workers.

        With ``wait`` the already-admitted backlog is served first;
        without it the still-queued backlog is failed immediately — every
        abandoned ticket finishes with an "executor shut down" error so
        ``result()`` waiters unblock instead of hanging forever.
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        if self.scrubber is not None:
            self.scrubber.stop()
        if wait:
            self.drain()
        else:
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._queue.task_done()
                ticket._finish(
                    None, RuntimeError("executor shut down before serving")
                )
        for _ in self._workers:
            self._queue.put(_STOP)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=exc_info[0] is None)
