"""The background scrubber and the serving supervisor.

Durability is not just surviving crashes — it is *noticing* latent damage
before a query does.  The scrubber walks the disk and the cross-structure
invariants continuously while the system serves traffic:

* **Checksum sweep** — every page's stored checksum is re-verified via
  :meth:`SimulatedDisk.peek`-level access: zero counted I/O, no fault-plan
  consultation, so scrubbing never perturbs benchmark counters or trips
  injected read faults meant for queries.  A failure is double-checked
  once (the simulator's writers re-seal in place; a read racing a write is
  not damage) before it becomes a finding.
* **Invariant sweep** — the shared audit core
  (:mod:`repro.core.integrity`) re-derives every cell's signature from a
  *pinned epoch snapshot* and compares counted signatures, exactly like
  ``verify_consistency()`` but incremental, throttled and concurrent with
  both readers and the maintenance writer.
* **Self-healing** — damage to a signature page (or a failed cell
  invariant) quarantines the owning cell through the PR-5 hooks and — when
  ``repair`` is on — rebuilds it via
  :meth:`~repro.system.PCubeSystem.repair_quarantined`, which publishes a
  fresh epoch so concurrent readers flip to the healed pages atomically.
  Damage outside the signature store (heap, R-tree, B+-tree pages) has no
  online rebuild hook yet; it is reported for the operator.

The :class:`Supervisor` aggregates the scrubber's findings with the two
liveness hazards a serving deployment must watch: queries running past
their expected horizon (hung) and a WAL operation pending longer than any
healthy maintenance step should take (stalled).  ``python -m repro.serve
--health`` surfaces its report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core import integrity
from repro.storage.errors import CorruptPageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.executor import QueryExecutor
    from repro.system import PCubeSystem


@dataclass
class ScrubStats:
    """Lifetime tallies of one scrubber instance."""

    passes: int = 0
    pages_scanned: int = 0
    cells_verified: int = 0
    checksum_faults: int = 0
    invariant_faults: int = 0
    cells_repaired: int = 0
    last_pass_seconds: float = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "passes": self.passes,
            "pages_scanned": self.pages_scanned,
            "cells_verified": self.cells_verified,
            "checksum_faults": self.checksum_faults,
            "invariant_faults": self.invariant_faults,
            "cells_repaired": self.cells_repaired,
            "last_pass_seconds": self.last_pass_seconds,
        }


@dataclass(frozen=True)
class Finding:
    """One piece of damage a scrub pass surfaced."""

    kind: str  # "checksum" | "invariant"
    subject: str  # page tag or cell id
    detail: str
    repaired: bool


class Scrubber:
    """A throttled, epoch-pinned damage detector with self-healing.

    Args:
        system: The live system (epochs are used when enabled — required
            for scrubbing concurrently with maintenance).
        pages_per_tick / cells_per_tick: Work quantum between throttle
            sleeps; the rate knob that keeps scrub overhead low.
        interval: Seconds slept between work quanta (and between passes).
        repair: Quarantine + rebuild damaged signature cells (on by
            default); off, the scrubber only reports.
    """

    def __init__(
        self,
        system: "PCubeSystem",
        pages_per_tick: int = 256,
        cells_per_tick: int = 16,
        interval: float = 0.005,
        repair: bool = True,
    ) -> None:
        self.system = system
        self.pages_per_tick = max(1, pages_per_tick)
        self.cells_per_tick = max(1, cells_per_tick)
        self.interval = interval
        self.repair = repair
        self.stats = ScrubStats()
        self.findings: list[Finding] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # one pass
    # ------------------------------------------------------------------ #

    def run_pass(self, throttle: bool = False) -> list[Finding]:
        """One full scrub pass; returns its findings.

        Synchronous (tests and the health CLI call it directly); the
        background thread runs it with ``throttle=True``.
        """
        started = time.perf_counter()
        findings: list[Finding] = []
        damaged_cells = self._sweep_checksums(findings, throttle)
        damaged_cells |= self._sweep_invariants(findings, throttle)
        repaired = self._heal(damaged_cells, findings)
        with self._lock:
            self.stats.passes += 1
            self.stats.cells_repaired += repaired
            self.stats.last_pass_seconds = time.perf_counter() - started
            self.findings.extend(findings)
            del self.findings[:-200]  # keep a bounded tail for health()
        return findings

    def _sweep_checksums(
        self, findings: list[Finding], throttle: bool
    ) -> set[str]:
        """Verify every page checksum; returns damaged cell ids (pages
        owned by the signature store), recording findings for the rest."""
        disk = self.system.disk
        sig_owner = self._sig_page_owners()
        damaged_cells: set[str] = set()
        scanned = 0
        for page in disk.pages(""):
            scanned += 1
            if throttle and scanned % self.pages_per_tick == 0:
                self._nap()
            try:
                page.verify()
                continue
            except CorruptPageError:
                pass
            # Double-check: in-place writers re-seal after mutating, so one
            # racy read can see a half-updated seal.  Damage is damage only
            # if it verifies bad twice.
            try:
                page.verify()
                continue
            except CorruptPageError as exc:
                owner = sig_owner.get(page.page_id)
                if owner is not None:
                    damaged_cells.add(owner)
                findings.append(
                    Finding(
                        kind="checksum",
                        subject=page.tag,
                        detail=f"page {page.page_id}: {exc}",
                        repaired=owner is not None and self.repair,
                    )
                )
        with self._lock:
            self.stats.pages_scanned += scanned
            self.stats.checksum_faults += sum(
                1 for f in findings if f.kind == "checksum"
            )
        return damaged_cells

    def _sweep_invariants(
        self, findings: list[Finding], throttle: bool
    ) -> set[str]:
        """Re-derive per-cell signatures under a pinned epoch snapshot."""
        system = self.system
        damaged: set[str] = set()
        if system.epochs is not None:
            snapshot = system.epochs.pin()
            try:
                damaged = self._check_cells(
                    snapshot.relation,
                    snapshot.rtree.all_paths(),
                    snapshot.store.load_full_signature,
                    (
                        snapshot.counted.get
                        if snapshot.counted is not None
                        and self.system.pcube.maintainable
                        else None
                    ),
                    findings,
                    throttle,
                )
            finally:
                system.epochs.unpin(snapshot)
        else:
            damaged = self._check_cells(
                system.relation,
                system.rtree.all_paths(),
                system.pcube.signature_of,
                (
                    system.pcube.counted_of
                    if system.pcube.maintainable
                    else None
                ),
                findings,
                throttle,
            )
        return damaged

    def _check_cells(
        self,
        relation,
        paths,
        load_signature,
        load_counted,
        findings: list[Finding],
        throttle: bool,
    ) -> set[str]:
        damaged: set[str] = set()
        verified = 0
        for cell, problems in integrity.iter_cell_checks(
            relation,
            paths,
            self.system.pcube.cuboids,
            self.system.pcube.fanout,
            load_signature,
            load_counted,
        ):
            verified += 1
            if throttle and verified % self.cells_per_tick == 0:
                self._nap()
            if not problems:
                continue
            damaged.add(cell.cell_id)
            for problem in problems:
                findings.append(
                    Finding(
                        kind="invariant",
                        subject=cell.cell_id,
                        detail=problem,
                        repaired=self.repair,
                    )
                )
        with self._lock:
            self.stats.cells_verified += verified
            self.stats.invariant_faults += sum(
                1 for f in findings if f.kind == "invariant"
            )
        return damaged

    def _heal(self, damaged_cells: set[str], findings: list[Finding]) -> int:
        """Quarantine + rebuild the damaged cells (single-writer path)."""
        if not damaged_cells or not self.repair:
            return 0
        system = self.system
        by_id = {
            cell.cell_id: cell
            for cuboid in system.pcube.cuboids
            for cell in cuboid.group(system.relation, include_tombstoned=True)
        }
        for cell_id in sorted(damaged_cells):
            cell = by_id.get(cell_id)
            if cell is None:  # a store-side ghost; nothing to rebuild from
                findings.append(
                    Finding(
                        kind="invariant",
                        subject=cell_id,
                        detail="damaged cell not derivable from the relation",
                        repaired=False,
                    )
                )
                continue
            system.pcube.store.quarantine(cell, "scrubber finding")
        return len(system.repair_quarantined())

    def _sig_page_owners(self) -> dict[int, str]:
        """page_id → owning cell id for every directory-referenced page."""
        return {
            page_id: cell_id
            for (cell_id, _sid), page_id in (
                self.system.pcube.store.directory_entries()
            )
        }

    def _nap(self) -> None:
        if self.interval > 0:
            self._stop.wait(self.interval)

    # ------------------------------------------------------------------ #
    # the background thread
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.run_pass(throttle=True)
            self._stop.wait(self.interval)

    def report(self) -> dict[str, Any]:
        with self._lock:
            return {
                "running": self.running,
                **self.stats.snapshot(),
                "recent_findings": [
                    {
                        "kind": f.kind,
                        "subject": f.subject,
                        "detail": f.detail,
                        "repaired": f.repaired,
                    }
                    for f in self.findings[-10:]
                ],
            }


@dataclass
class Supervisor:
    """Watches the serving deployment's three liveness hazards.

    * **Hung queries** — in-flight longer than ``hung_after`` seconds
      (deadlines bound *admitted* time; a query wedged inside storage
      retries still holds a worker and its epoch pin).
    * **Stalled maintenance** — a WAL operation pending longer than
      ``stalled_after`` seconds: the single writer died mid-operation, and
      no new maintenance can start until recovery runs.
    * **Scrubber damage** — unrepaired findings from the scrub passes.
    """

    system: "PCubeSystem"
    executor: "QueryExecutor | None" = None
    scrubber: Scrubber | None = None
    hung_after: float = 5.0
    stalled_after: float = 5.0

    def report(self) -> dict[str, Any]:
        now = time.monotonic()
        hung: list[dict[str, Any]] = []
        if self.executor is not None:
            for entry in self.executor.inflight():
                if entry["running_seconds"] > self.hung_after:
                    hung.append(entry)
        pending_since = (
            self.system.wal.pending_since
            if self.system.wal is not None
            else None
        )
        pending_age = (
            now - pending_since if pending_since is not None else None
        )
        stalled = pending_age is not None and pending_age > self.stalled_after
        scrub = self.scrubber.report() if self.scrubber is not None else None
        unrepaired = (
            sum(1 for f in scrub["recent_findings"] if not f["repaired"])
            if scrub is not None
            else 0
        )
        quarantined = [
            cell.cell_id
            for cell in self.system.pcube.store.quarantined_cells()
        ]
        return {
            "ok": not hung and not stalled and not unrepaired
            and not quarantined,
            "hung_queries": hung,
            "maintenance": {
                "wal_pending": pending_since is not None,
                "pending_age_seconds": pending_age,
                "stalled": stalled,
            },
            "scrubber": scrub,
            "unrepaired_findings": unrepaired,
            "quarantined_cells": quarantined,
        }


__all__ = ["Finding", "ScrubStats", "Scrubber", "Supervisor"]
