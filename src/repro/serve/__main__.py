"""Self-checking serving entry points.

``python -m repro.serve --smoke`` builds the small seeded system, serves a
mixed seeded workload (skyline, top-k, dynamic skyline, lower hull)
through a multi-threaded :class:`~repro.serve.executor.QueryExecutor`, and
verifies:

* every concurrent answer is identical to the serial engine's answer for
  the same query (same epoch, so bit-equality is required, not hoped for);
* a snapshot pinned *before* a maintenance batch still answers with the
  old data afterwards, while the executor serves the new epoch;
* the run is clean — no failed queries, no consistency-audit findings.

``python -m repro.serve --health`` builds the same system over a
fault-injecting disk, serves a seeded skyline/top-k workload *through the
faults* (so retries, breakers and degraded tiers actually fire), checks
that every degraded answer is still byte-identical to the serial engine,
runs one scrubber pass (which must find and heal the permanently
corrupted signature page the fault plan left behind), and prints the
executor's :meth:`~repro.serve.executor.QueryExecutor.health` report —
the operator view of serving, fault, breaker, quarantine, scrubber and
supervisor state.

Exit status 0 on success, 1 on any mismatch; a JSON summary goes to
stdout either way.  CI runs both as serving gates.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.data.fixtures import small_config
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.session import QuerySession
from repro.serve.executor import QueryExecutor
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultPlan, FaultRule, FaultyDisk
from repro.system import build_system


def _build_workload(system, rng: random.Random, n_queries: int):
    """(kind, submit-args) pairs, seeded and engine-replayable."""
    relation = system.relation
    dims = relation.schema.n_preference
    workload = []
    for index in range(n_queries):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        kind = ("skyline", "topk", "dynamic_skyline", "lower_hull")[index % 4]
        if kind == "skyline":
            workload.append(("skyline", {"predicate": predicate}))
        elif kind == "topk":
            workload.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 10,
                        "predicate": predicate,
                    },
                )
            )
        elif kind == "dynamic_skyline":
            workload.append(
                (
                    "dynamic_skyline",
                    {
                        "query_point": [rng.random() for _ in range(dims)],
                        "predicate": predicate,
                    },
                )
            )
        else:
            workload.append(("lower_hull", {"predicate": predicate}))
    return workload


def _run_serial(system, workload):
    """The reference answers, via the paper-comparable engine."""
    return [
        getattr(system.engine, kind)(**kwargs) for kind, kwargs in workload
    ]


def _answers_match(serial, concurrent) -> bool:
    return (
        serial.tids == concurrent.tids and serial.scores == concurrent.scores
    )


def run_smoke(threads: int, n_queries: int, seed: int) -> int:
    problems: list[str] = []
    system = build_system(generate_relation(small_config()))
    rng = random.Random(seed)
    workload = _build_workload(system, rng, n_queries)
    serial = _run_serial(system, workload)

    with QueryExecutor(system, threads=threads, queue_depth=2 * n_queries) as executor:
        # Phase 1: the whole workload concurrently, answers must be
        # identical to the serial run (same published epoch).
        tickets = [
            getattr(executor, kind)(**kwargs) for kind, kwargs in workload
        ]
        for index, ticket in enumerate(tickets):
            result = ticket.result(timeout=60.0)
            if not _answers_match(serial[index], result):
                problems.append(
                    f"query {index} ({workload[index][0]}): concurrent answer "
                    f"diverges from the serial engine"
                )

        # Phase 2: pin the current epoch, mutate, and check isolation.
        pinned = system.pin_snapshot()
        before = QuerySession.for_snapshot(pinned).skyline()
        schema = system.relation.schema
        bool_row = tuple(0 for _ in range(schema.n_boolean))
        system.insert(bool_row, tuple(0.0 for _ in range(schema.n_preference)))
        after_pinned = QuerySession.for_snapshot(pinned).skyline()
        if before.tids != after_pinned.tids:
            problems.append("pinned snapshot changed across maintenance")
        fresh = executor.skyline().result(timeout=60.0)
        if 0.0 not in [
            system.relation.pref_point(tid)[0] for tid in fresh.tids
        ]:
            problems.append(
                "post-maintenance epoch does not see the inserted origin "
                "tuple in its skyline"
            )
        if fresh.stats.epoch != pinned.epoch + 1:
            problems.append(
                f"expected the executor to serve epoch {pinned.epoch + 1}, "
                f"got {fresh.stats.epoch}"
            )
        system.unpin_snapshot(pinned)

    audit = system.verify_consistency()
    problems.extend(audit.problems)
    summary = executor.stats.snapshot()
    if summary["failed"]:
        problems.append(f"{summary['failed']} serving failures")

    print(
        json.dumps(
            {
                "ok": not problems,
                "threads": threads,
                "queries": summary["submitted"],
                "problems": problems,
                "serving": summary,
                "faults": system.pcube.store.fault_stats.snapshot(),
                "epochs": {
                    "published": system.epochs.stats.published,
                    "current": system.epochs.current_epoch,
                },
            },
            indent=2,
        )
    )
    return 0 if not problems else 1


def run_health(threads: int, n_queries: int, seed: int) -> int:
    """Serve a seeded workload through injected faults, report health.

    The fault plan fires transient read errors and one permanent
    corruption against the signature pages, so the report shows retries,
    degraded loads, breaker activity and the quarantine backlog — while
    the degradation chain must keep every skyline/top-k answer
    byte-identical to the serial engine's.
    """
    problems: list[str] = []
    disk = FaultyDisk(SimulatedDisk())
    system = build_system(generate_relation(small_config(), disk=disk))
    rng = random.Random(seed)
    relation = system.relation
    dims = relation.schema.n_preference
    workload = []
    for index in range(n_queries):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        if index % 2 == 0:
            workload.append(("skyline", {"predicate": predicate}))
        else:
            workload.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 10,
                        "predicate": predicate,
                    },
                )
            )
    serial = [
        getattr(system.engine, kind)(**kwargs) for kind, kwargs in workload
    ]

    # Arm the faults only after the clean serial reference run.
    disk.plan = FaultPlan(
        [
            FaultRule(
                kind="transient",
                tag=f"{system.pcube.tag}:sig",
                probability=0.3,
                count=8,
            ),
            FaultRule(
                kind="corrupt", tag=f"{system.pcube.tag}:sig", after=4
            ),
        ],
        seed=seed,
    )

    with QueryExecutor(
        system, threads=threads, queue_depth=2 * n_queries
    ) as executor:
        supervisor = executor.enable_scrubbing(start=False)
        tickets = [
            getattr(executor, kind)(**kwargs) for kind, kwargs in workload
        ]
        for index, ticket in enumerate(tickets):
            result = ticket.result(timeout=60.0)
            if not _answers_match(serial[index], result):
                problems.append(
                    f"query {index} ({workload[index][0]}): degraded answer "
                    f"diverges from the serial engine"
                )
        # A full synchronous scrub pass with the fault plan disarmed: the
        # permanent corruption rule damaged a signature page, so the pass
        # must find it, heal the owning cell and leave the audit clean.
        disk.plan = FaultPlan()
        scrub_findings = executor.scrubber.run_pass()
        if system.verify_consistency().problems:
            problems.append("consistency audit dirty after the scrub pass")
        health = executor.health()
        health["supervisor"] = supervisor.report()
        health["scrub_findings"] = [
            {"kind": f.kind, "subject": f.subject, "repaired": f.repaired}
            for f in scrub_findings
        ]

    health["ok"] = not problems
    health["problems"] = problems
    print(json.dumps(health, indent=2))
    return 0 if not problems else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent serving smoke test for the P-Cube system.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="build the small seeded system and self-check a concurrent "
        "workload against the serial engine",
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="serve a seeded workload through injected storage faults and "
        "print the executor's health report (serving, fault, breaker and "
        "quarantine state)",
    )
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if args.health:
        return run_health(args.threads, args.queries, args.seed)
    if not args.smoke:
        parser.print_help()
        return 2
    return run_smoke(args.threads, args.queries, args.seed)


if __name__ == "__main__":
    sys.exit(main())
