"""Aggregated serving statistics (thread-safe).

Per-query numbers stay in each result's
:class:`~repro.query.stats.QueryStats`; this module owns the *fleet* view a
serving deployment watches: admission outcomes, queue-wait distribution
summary, per-epoch query counts and the shared buffer pool's aggregate
traffic.  Every mutation happens under one lock, and :meth:`snapshot`
returns a plain dict so callers never read half-updated tallies.
"""

from __future__ import annotations

import threading

from repro.query.stats import QueryStats


class ServingStats:
    """What the :class:`~repro.serve.executor.QueryExecutor` aggregates.

    Outcome tallies:

    * ``submitted`` — tickets accepted into the admission queue;
    * ``rejected`` — submissions refused because the queue was full;
    * ``completed`` / ``failed`` — queries that returned / raised;
    * ``timed_out`` / ``cancelled`` — aborted via the ticker (both also
      count toward ``failed``);
    * ``shed`` — queued tickets evicted before running because their
      deadline had already passed (a deadline failure detected early, so
      also counted in both ``failed`` and ``timed_out``).

    Resilience tallies (aggregated from each query's
    :class:`~repro.query.stats.QueryStats` and reported by ``--health``):
    ``fault_retries``, ``failed_loads``, ``degraded_checks``,
    ``breaker_skips``, ``degraded_queries`` and the per-tier counts in
    ``tiers``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.cancelled = 0
        self.shed = 0
        self.queue_wait_seconds = 0.0
        self.queue_wait_max = 0.0
        self.run_seconds = 0.0
        self.pool_hits = 0
        self.pool_misses = 0
        self.total_io = 0
        self.epochs_served: dict[int, int] = {}
        self.fault_retries = 0
        self.failed_loads = 0
        self.degraded_checks = 0
        self.breaker_skips = 0
        self.degraded_queries = 0
        self.tiers: dict[str, int] = {}
        self.routed = 0
        self.fell_back = 0
        self.routes: dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bypassed = 0

    def note_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_finished(
        self,
        outcome: str,
        queue_wait: float,
        run_seconds: float,
        epoch: int | None = None,
        stats: QueryStats | None = None,
    ) -> None:
        """Record one drained ticket.

        ``outcome`` is ``"completed"``, ``"failed"``, ``"timed_out"``,
        ``"cancelled"`` or ``"shed"``; everything but ``"completed"`` also
        increments ``failed`` because no answer was produced.
        """
        with self._lock:
            if outcome == "completed":
                self.completed += 1
            else:
                self.failed += 1
                if outcome == "timed_out":
                    self.timed_out += 1
                elif outcome == "cancelled":
                    self.cancelled += 1
                elif outcome == "shed":
                    self.shed += 1
                    self.timed_out += 1
            self.queue_wait_seconds += queue_wait
            if queue_wait > self.queue_wait_max:
                self.queue_wait_max = queue_wait
            self.run_seconds += run_seconds
            if epoch is not None:
                self.epochs_served[epoch] = (
                    self.epochs_served.get(epoch, 0) + 1
                )
            if stats is not None:
                self.pool_hits += stats.pool_hits
                self.pool_misses += stats.pool_misses
                self.total_io += stats.total_io()
                self.fault_retries += stats.fault_retries
                self.failed_loads += stats.failed_loads
                self.degraded_checks += stats.degraded_checks
                self.breaker_skips += stats.breaker_skips
                if stats.degraded:
                    self.degraded_queries += 1
                if stats.tier is not None:
                    self.tiers[stats.tier] = (
                        self.tiers.get(stats.tier, 0) + 1
                    )
                if stats.route is not None:
                    self.routed += 1
                    self.routes[stats.route] = (
                        self.routes.get(stats.route, 0) + 1
                    )
                    if stats.fallbacks:
                        self.fell_back += 1
                if stats.cache_outcome == "hit":
                    self.cache_hits += 1
                elif stats.cache_outcome == "miss":
                    self.cache_misses += 1
                elif stats.cache_outcome == "bypass":
                    self.cache_bypassed += 1

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every tally."""
        with self._lock:
            drained = self.completed + self.failed
            return {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "timed_out": self.timed_out,
                "cancelled": self.cancelled,
                "shed": self.shed,
                "queue_wait_seconds": self.queue_wait_seconds,
                "queue_wait_max": self.queue_wait_max,
                "queue_wait_mean": (
                    self.queue_wait_seconds / drained if drained else 0.0
                ),
                "run_seconds": self.run_seconds,
                "pool_hits": self.pool_hits,
                "pool_misses": self.pool_misses,
                "total_io": self.total_io,
                "epochs_served": dict(self.epochs_served),
                "fault_retries": self.fault_retries,
                "failed_loads": self.failed_loads,
                "degraded_checks": self.degraded_checks,
                "breaker_skips": self.breaker_skips,
                "degraded_queries": self.degraded_queries,
                "tiers": dict(self.tiers),
                "routed": self.routed,
                "fell_back": self.fell_back,
                "routes": dict(self.routes),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_bypassed": self.cache_bypassed,
            }
