"""Serving resilience: retry budgets, circuit breakers, degradation tiers.

The PR-1 fault machinery (retries, quarantine, conservative readers) and
the PR-4 concurrent executor compose here into a serving layer that
degrades instead of falling over:

* :class:`RetryBudget` converts a ticket's wall-clock deadline into a
  deadline on the :class:`~repro.storage.faults.RetryPolicy`'s
  deterministic clock, so storage retries spend from the query's remaining
  time and never back off past it;
* :class:`CircuitBreaker` / :class:`BreakerBoard` stop every arriving
  query from re-probing a (cell, ref-SID) partial that keeps failing:
  after ``threshold`` consecutive fault or corrupt loads the breaker
  opens and readers jump straight to the degraded path with zero I/O on
  the bad pages; the next published epoch moves it to *half-open*, one
  probe tests the (possibly rebuilt) cell, and success closes it again;
* :class:`DegradationPolicy` names the ordered chain of *exact* answer
  paths — shared-pool signature engine → conservative degraded readers →
  a signature-free boolean-first scan — and each query's result is
  stamped with the tier that actually produced it;
* overload control lives in the executor itself: a queued ticket that can
  no longer meet its deadline is evicted instead of wasting a worker,
  failing fast with :class:`~repro.serve.executor.QueryShed` (queue depth
  and retry-after hint attached for client-side backoff).

Everything here is exactness-preserving: a lower tier answers the same
bytes at higher I/O cost, and a breaker or shed never silently drops a
query — it fails it with a typed error the caller can react to.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.storage.faults import DeterministicClock

#: Tier names, in degradation order.  Every tier returns exact answers.
TIER_SIGNATURE = "signature"
TIER_CONSERVATIVE = "conservative"
TIER_BOOLEAN_FIRST = "boolean-first"
TIERS = (TIER_SIGNATURE, TIER_CONSERVATIVE, TIER_BOOLEAN_FIRST)


class RetryBudget:
    """A ticket deadline, translated per call into a retry-clock deadline.

    The :class:`~repro.storage.faults.RetryPolicy` backs off on a
    :class:`~repro.storage.faults.DeterministicClock` (no real sleeps), so
    "never sleep past the ticket's deadline" means: the *charged* backoff
    must fit into the wall-clock time the ticket still has.  Each storage
    load asks :meth:`clock_deadline` for the policy-clock instant beyond
    which no further backoff may be charged.
    """

    def __init__(self, deadline_at: float | None) -> None:
        #: ``time.perf_counter()`` instant the ticket expires, or ``None``.
        self.deadline_at = deadline_at

    def remaining(self) -> float | None:
        """Wall-clock seconds left, or ``None`` for no deadline."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.perf_counter()

    def clock_deadline(self, clock: DeterministicClock) -> float | None:
        """The retry clock's deadline for a load starting *now*."""
        remaining = self.remaining()
        if remaining is None:
            return None
        return clock.now + max(remaining, 0.0)


# ---------------------------------------------------------------------- #
# circuit breakers
# ---------------------------------------------------------------------- #

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """The per-(cell, ref-SID) failure state machine.

    closed --K consecutive failures--> open --next epoch--> half-open
    half-open --probe succeeds--> closed; --probe fails--> open (again).

    Not thread-safe on its own; the :class:`BreakerBoard` serialises all
    transitions under one lock.
    """

    __slots__ = ("state", "failures", "opened_epoch", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_epoch: int | None = None
        self.probing = False


class BreakerBoard:
    """Every breaker of one serving deployment, plus their tallies.

    Keyed by ``(cell_id, ref_sid)`` — exactly the unit
    :meth:`~repro.core.store.SignatureStore.load_partial` loads, so one bad
    page never poisons the whole cell's other partials.

    Epoch healing needs no hook into the epoch manager: a breaker records
    the epoch it opened in, and :meth:`allow` compares it with the epoch of
    the *querying snapshot* — the first query of a newer epoch finds the
    breaker half-open and probes the (by then possibly rebuilt) pages.
    Live sessions (``epoch=None``) heal through :meth:`reset` instead,
    which the store calls when a quarantined cell is rebuilt.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        # Tallies (reported through ServingStats / --health):
        self.opened = 0  # closed/half-open -> open transitions
        self.short_circuits = 0  # loads skipped because a breaker was open
        self.half_open_probes = 0  # trial loads allowed in half-open
        self.healed = 0  # half-open -> closed transitions

    def _get(self, cell_id: str, ref_sid: int) -> CircuitBreaker:
        key = (cell_id, ref_sid)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker()
        return breaker

    def allow(self, cell_id: str, ref_sid: int, epoch: int | None) -> bool:
        """May this query attempt the load?  ``False`` = degrade, zero I/O.

        In half-open state exactly one in-flight probe is allowed; every
        concurrent query degrades until the probe's outcome is recorded.
        """
        with self._lock:
            breaker = self._breakers.get((cell_id, ref_sid))
            if breaker is None or breaker.state == CLOSED:
                return True
            if (
                breaker.state == OPEN
                and epoch is not None
                and breaker.opened_epoch is not None
                and epoch > breaker.opened_epoch
            ):
                # A newer epoch was published since the breaker opened —
                # maintenance may have rebuilt the cell.  Probe it.
                breaker.state = HALF_OPEN
                breaker.probing = False
            if breaker.state == HALF_OPEN and not breaker.probing:
                breaker.probing = True
                self.half_open_probes += 1
                return True
            self.short_circuits += 1
            return False

    def record_success(self, cell_id: str, ref_sid: int) -> None:
        with self._lock:
            breaker = self._breakers.get((cell_id, ref_sid))
            if breaker is None:
                return
            if breaker.state == HALF_OPEN:
                self.healed += 1
            breaker.state = CLOSED
            breaker.failures = 0
            breaker.opened_epoch = None
            breaker.probing = False

    def record_failure(
        self, cell_id: str, ref_sid: int, epoch: int | None
    ) -> None:
        """One fault/corrupt load; may trip the breaker open."""
        with self._lock:
            breaker = self._get(cell_id, ref_sid)
            if breaker.state == HALF_OPEN:
                # The trial probe failed: straight back to open, stamped
                # with the probing epoch so only a *newer* one re-probes.
                breaker.state = OPEN
                breaker.opened_epoch = epoch
                breaker.probing = False
                breaker.failures = 0
                self.opened += 1
                return
            if breaker.state == OPEN:
                return
            breaker.failures += 1
            if breaker.failures >= self.threshold:
                breaker.state = OPEN
                breaker.opened_epoch = epoch
                breaker.failures = 0
                self.opened += 1

    def reset(self, cell_id: str) -> None:
        """Close every breaker of a cell (called after a rebuild)."""
        with self._lock:
            for (owner, _), breaker in self._breakers.items():
                if owner == cell_id:
                    breaker.state = CLOSED
                    breaker.failures = 0
                    breaker.opened_epoch = None
                    breaker.probing = False

    def state_of(self, cell_id: str, ref_sid: int) -> str:
        with self._lock:
            breaker = self._breakers.get((cell_id, ref_sid))
            return breaker.state if breaker is not None else CLOSED

    def cell_open(self, cell_id: str) -> bool:
        """Any non-closed breaker on this cell (any partial)?

        The router's cache-bypass probe: while a cell's storage is suspect
        the result cache must not mask the real path.
        """
        with self._lock:
            return any(
                breaker.state != CLOSED
                for (owner, _), breaker in self._breakers.items()
                if owner == cell_id
            )

    def open_count(self) -> int:
        with self._lock:
            return sum(
                1
                for breaker in self._breakers.values()
                if breaker.state != CLOSED
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "threshold": self.threshold,
                "tracked": len(self._breakers),
                "open": sum(
                    1
                    for breaker in self._breakers.values()
                    if breaker.state != CLOSED
                ),
                "opened": self.opened,
                "short_circuits": self.short_circuits,
                "half_open_probes": self.half_open_probes,
                "healed": self.healed,
            }


# ---------------------------------------------------------------------- #
# the degradation chain
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class DegradationPolicy:
    """Which exact-answer fallbacks a session may take, in order.

    The chain (every tier returns byte-identical answers, only the I/O
    profile changes):

    1. ``signature`` — the shared-pool signature engine, Algorithm 1 with
       full boolean pruning (the fault-free fast path);
    2. ``conservative`` — the same search with degraded readers: partials
       that stay unreadable (or are short-circuited by an open breaker)
       answer conservatively, leaf checks resolve exactly against the base
       relation — lost pruning, never lost correctness;
    3. ``boolean-first`` — the signature-free last resort for skyline and
       top-k when even the search structures fault (e.g. unreadable R-tree
       pages): scan the (snapshot's) relation, filter by the predicate,
       and run the preference step in memory, reporting in Algorithm 1's
       best-first order so results stay comparable bit for bit.

    ``allow_boolean_first=False`` stops the chain after tier 2: storage
    faults that escape the conservative readers then propagate as typed
    errors (dynamic-skyline and hull queries always behave this way — no
    scan fallback reproduces their search order).
    """

    allow_boolean_first: bool = True


@dataclass(frozen=True)
class Resilience:
    """One knob object for everything this module adds to the executor.

    Attributes:
        breaker_threshold: Consecutive (cell, ref-SID) load failures before
            the circuit opens.  ``0`` disables breakers entirely.
        degradation: The fallback chain policy (``None`` disables the
            boolean-first tier; conservative readers are built into the
            store and cannot be disabled).
        shed: Evict queued tickets whose deadline already passed, failing
            them with :class:`QueryShed` instead of running them.
    """

    breaker_threshold: int = 3
    degradation: DegradationPolicy | None = None
    shed: bool = True

    def __post_init__(self) -> None:
        if self.degradation is None:
            object.__setattr__(self, "degradation", DegradationPolicy())

    def build_board(self) -> BreakerBoard | None:
        if self.breaker_threshold < 1:
            return None
        return BreakerBoard(threshold=self.breaker_threshold)


__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "CLOSED",
    "DegradationPolicy",
    "HALF_OPEN",
    "OPEN",
    "Resilience",
    "RetryBudget",
    "TIER_BOOLEAN_FIRST",
    "TIER_CONSERVATIVE",
    "TIER_SIGNATURE",
    "TIERS",
]
