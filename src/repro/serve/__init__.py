"""Snapshot-isolated concurrent query serving (see DESIGN.md §9).

``repro.serve`` turns a built :class:`~repro.system.PCubeSystem` into a
multi-threaded query server: a :class:`QueryExecutor` drains a bounded
admission queue with a fixed worker pool, every query runs against a
pinned epoch snapshot (so concurrent maintenance never changes an answer
mid-flight), and a shared buffer pool keeps hot pages warm across queries.

Quick start::

    from repro.serve import QueryExecutor

    with QueryExecutor(system, threads=4) as executor:
        ticket = executor.skyline(predicate)
        result = ticket.result(timeout=5.0)

``python -m repro.serve --smoke`` runs a self-checking smoke workload and
``python -m repro.serve --health`` a resilience/fault health report.
"""

from repro.serve.executor import (
    AdmissionFull,
    QueryCancelled,
    QueryExecutor,
    QueryShed,
    QueryTimeout,
    Ticket,
)
from repro.serve.resilience import (
    BreakerBoard,
    CircuitBreaker,
    DegradationPolicy,
    Resilience,
    RetryBudget,
)
from repro.serve.scrub import Finding, Scrubber, ScrubStats, Supervisor
from repro.serve.stats import ServingStats

__all__ = [
    "AdmissionFull",
    "BreakerBoard",
    "CircuitBreaker",
    "DegradationPolicy",
    "Finding",
    "QueryCancelled",
    "QueryExecutor",
    "QueryShed",
    "QueryTimeout",
    "Resilience",
    "RetryBudget",
    "ScrubStats",
    "Scrubber",
    "ServingStats",
    "Supervisor",
    "Ticket",
]
