"""A paged B+-tree with duplicate keys and counted page accesses.

Entries are ``(key, value)`` pairs kept sorted by key; duplicate keys are
stored as separate slots (so a long posting list spans multiple leaves and
its retrieval honestly costs multiple page reads, which is what the
Boolean-first baseline pays).  Keys may be ints, floats, strings or tuples —
anything totally ordered and of a homogeneous type per tree.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from repro.storage.buffer import BufferPool
from repro.storage.counters import BTREE, IOCounters
from repro.storage.disk import SimulatedDisk

_NODE_HEADER_BYTES = 24
_KEY_BYTES = 8
_POINTER_BYTES = 8

#: Sentinel: :meth:`BPlusTree.delete` removes every value under the key.
_DELETE_ANY = object()


class _Leaf:
    __slots__ = ("keys", "values", "next", "page_id")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None
        self.page_id: int | None = None


class _Internal:
    __slots__ = ("keys", "children", "page_id")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: list[Any] = []
        self.children: list[Any] = []
        self.page_id: int | None = None


class BPlusTree:
    """A B+-tree multimap on a simulated disk.

    Args:
        order: Maximum number of slots per node (split threshold).
        disk: Page store; a private one is created when omitted.
        tag: Page tag prefix for space accounting.
    """

    def __init__(
        self,
        order: int = 128,
        disk: SimulatedDisk | None = None,
        tag: str = "btree",
    ) -> None:
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self.disk = disk if disk is not None else SimulatedDisk()
        self.tag = tag
        self.root: _Leaf | _Internal = _Leaf()
        self._register(self.root)
        self._n_entries = 0

    # ------------------------------------------------------------------ #
    # page plumbing
    # ------------------------------------------------------------------ #

    def _register(self, node: _Leaf | _Internal) -> None:
        node.page_id = self.disk.allocate(self.tag, size=_NODE_HEADER_BYTES)
        self._sync(node)

    def _sync(self, node: _Leaf | _Internal) -> None:
        per_slot = _KEY_BYTES + _POINTER_BYTES
        size = _NODE_HEADER_BYTES + len(node.keys) * per_slot
        assert node.page_id is not None
        self.disk.write(node.page_id, node, size=size)

    def _read(
        self,
        node: _Leaf | _Internal,
        pool: BufferPool | None,
        counters: IOCounters | None,
        category: str,
    ) -> None:
        """Account one page access for visiting ``node``."""
        assert node.page_id is not None
        if pool is not None:
            pool.get(node.page_id, category, counters)
        else:
            self.disk.read(node.page_id, category, counters)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: Any, value: Any) -> None:
        """Insert one ``(key, value)`` pair (duplicates allowed)."""
        split = self._insert(self.root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self.root, right]
            self.root = new_root
            self._register(new_root)
        self._n_entries += 1

    def _insert(self, node, key, value):
        if isinstance(node, _Leaf):
            index = bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            self._sync(node)
            return None
        index = bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        sep, right = split
        insert_at = bisect_right(node.keys, sep)
        node.keys.insert(insert_at, sep)
        node.children.insert(insert_at + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        self._sync(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._register(right)
        self._sync(leaf)
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._register(right)
        self._sync(node)
        return sep, right

    def bulk_insert(self, pairs) -> None:
        """Insert many ``(key, value)`` pairs."""
        for key, value in pairs:
            self.insert(key, value)

    def delete(self, key: Any, value: Any = _DELETE_ANY) -> int:
        """Remove slots matching ``key`` (and ``value``, when given).

        Returns the number of slots removed.  Leaves are not rebalanced —
        this tree is a multimap whose separators stay valid upper bounds
        after deletions, so search and range scans are unaffected; space is
        reclaimed on the next split of the shrunken leaf.
        """
        node = self.root
        while isinstance(node, _Internal):
            node = node.children[bisect_left(node.keys, key)]
        leaf: _Leaf | None = node
        removed = 0
        while leaf is not None:
            changed = False
            index = bisect_left(leaf.keys, key)
            while index < len(leaf.keys) and leaf.keys[index] == key:
                if value is _DELETE_ANY or leaf.values[index] == value:
                    del leaf.keys[index]
                    del leaf.values[index]
                    removed += 1
                    changed = True
                else:
                    index += 1
            if changed:
                self._sync(leaf)
            if leaf.keys and leaf.keys[-1] > key:
                break
            leaf = leaf.next
        self._n_entries -= removed
        return removed

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n_entries

    def height(self) -> int:
        height = 1
        node = self.root
        while isinstance(node, _Internal):
            node = node.children[0]
            height += 1
        return height

    def _descend_left(
        self, key, pool, counters, category
    ) -> _Leaf:
        """The leftmost leaf that may contain ``key``, counting page reads."""
        node = self.root
        self._read(node, pool, counters, category)
        while isinstance(node, _Internal):
            node = node.children[bisect_left(node.keys, key)]
            self._read(node, pool, counters, category)
        return node

    def search(
        self,
        key: Any,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        category: str = BTREE,
    ) -> list[Any]:
        """All values stored under ``key`` (page accesses are counted)."""
        return [v for _, v in self.range_scan(key, key, pool, counters, category)]

    def range_scan(
        self,
        lo: Any,
        hi: Any,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        category: str = BTREE,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi``, in key order."""
        leaf: _Leaf | None = self._descend_left(lo, pool, counters, category)
        while leaf is not None:
            started = False
            for key, value in zip(leaf.keys, leaf.values):
                if key < lo:
                    continue
                if key > hi:
                    return
                started = True
                yield key, value
            # Keep following the leaf chain while it may still hold matches.
            if leaf.keys and leaf.keys[-1] > hi and not started:
                return
            leaf = leaf.next
            if leaf is not None:
                self._read(leaf, pool, counters, category)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All pairs in key order, without access accounting (for tests)."""
        node = self.root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def distinct_keys(self) -> Iterator[Any]:
        """Distinct keys in order (no access accounting)."""
        previous = object()
        for key, _ in self.items():
            if key != previous:
                previous = key
                yield key


# re-export for callers that only need sorted insertion helpers
__all__ = ["BPlusTree"]
del insort
