"""Paged B+-trees.

Used three ways in the reproduction, mirroring the paper's setup:

* one B+-tree per boolean dimension for the *Boolean-first* baseline
  (Section VI-A: "We use B+-tree to index each boolean dimension");
* posting-list access for the *Index-merge* baseline [14];
* the P-Cube signature store, "indexed (using B+-tree) by cell IDs and
  SID's" (Section VI-A).
"""

from repro.btree.btree import BPlusTree

__all__ = ["BPlusTree"]
