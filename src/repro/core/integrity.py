"""Cross-structure invariant checks, shared by the offline audit and the
online scrubber.

:meth:`repro.system.PCubeSystem.verify_consistency` and the serving-side
scrubber (:mod:`repro.serve.scrub`) verify the same contract — the stored
per-cell signatures, the counted signatures, the R-tree partition and the
store's B+-tree index all describe the *same* base relation — but against
different surfaces: the audit walks the live structures with the writer
quiescent, the scrubber walks a pinned epoch snapshot while maintenance and
queries keep running.  This module factors the invariants themselves out of
both callers, duck-typed against whichever surface provides them:

* a relation-like (``Relation`` or ``RelationView``): ``schema``,
  ``tids()``, ``live_tids()``, ``bool_row()``;
* an R-tree path map (``RTree.all_paths()`` or
  ``FrozenRTree.all_paths()``): tid → root-based path;
* a signature loader (``PCube.signature_of`` live, or
  ``StoreView.load_full_signature`` under a snapshot);
* a counted lookup (``PCube.counted_of`` live, or the snapshot's shared
  counted dict).

Checks are exposed per cell (:func:`iter_cell_checks`) precisely so the
scrubber can spread a full pass over many throttled ticks instead of
stalling a worker for one long audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.counted import CountedSignature
from repro.core.signature import Signature
from repro.cube.cuboid import Cell, Cuboid


@dataclass
class ConsistencyReport:
    """What a consistency audit found.

    ``problems`` is empty exactly when every invariant holds; each entry is
    a human-readable description of one violation.
    """

    problems: list[str] = field(default_factory=list)
    cells_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok


def rtree_partition_problems(
    paths: dict[int, tuple[int, ...]], live: set[int]
) -> list[str]:
    """The R-tree must index exactly the live tids."""
    if set(paths) == live:
        return []
    missing = sorted(live - set(paths))[:5]
    extra = sorted(set(paths) - live)[:5]
    return [
        f"R-tree tids diverge from live tids "
        f"(missing={missing}, extra={extra})"
    ]


def check_cell(
    cell: Cell,
    member_tids: Sequence[int],
    paths: dict[int, tuple[int, ...]],
    live: set[int],
    fanout: int,
    load_signature: Callable[[Cell], Signature],
    load_counted: Callable[[Cell], CountedSignature | None] | None,
) -> list[str]:
    """One cell's invariants: stored signature (and, when a counted lookup
    is supplied, the counted signature) must equal a fresh rebuild from the
    live members' R-tree paths."""
    problems: list[str] = []
    member_paths = [
        paths[tid] for tid in member_tids if tid in live and tid in paths
    ]
    expected = Signature.from_paths(member_paths, fanout)
    try:
        stored = load_signature(cell)
    except Exception as exc:
        problems.append(f"cell {cell}: unreadable ({exc!r})")
        return problems
    if stored != expected:
        problems.append(
            f"cell {cell}: stored signature diverges from the R-tree "
            f"partition"
        )
    if load_counted is not None:
        counted = load_counted(cell)
        recounted = CountedSignature.from_paths(member_paths, fanout)
        if counted is None:
            if member_paths:
                problems.append(f"cell {cell}: no counted signature")
        elif counted != recounted:
            problems.append(
                f"cell {cell}: counted signature diverges from a fresh "
                f"re-count"
            )
    return problems


def iter_cell_checks(
    relation: Any,
    paths: dict[int, tuple[int, ...]],
    cuboids: Iterable[Cuboid],
    fanout: int,
    load_signature: Callable[[Cell], Signature],
    load_counted: Callable[[Cell], CountedSignature | None] | None,
) -> Iterator[tuple[Cell, list[str]]]:
    """Yield ``(cell, problems)`` for every cell of every cuboid, in
    deterministic order — the scrubber's throttle-friendly audit surface.

    Grouping includes tombstoned rows (``include_tombstoned=True``): the
    audit must see cells whose last live member was deleted, because their
    stored signature must have gone empty, not stale.
    """
    live = {tid for tid in relation.live_tids()}
    for cuboid in cuboids:
        groups = cuboid.group(relation, include_tombstoned=True)
        for cell in sorted(groups, key=lambda c: c.cell_id):
            yield cell, check_cell(
                cell,
                groups[cell],
                paths,
                live,
                fanout,
                load_signature,
                load_counted,
            )


def expected_cell_ids(
    relation: Any, cuboids: Iterable[Cuboid]
) -> set[str]:
    """Every cell id the cuboids' group-bys can produce (tombstones
    included) — the universe the store may legitimately hold."""
    ids: set[str] = set()
    for cuboid in cuboids:
        ids.update(
            cell.cell_id
            for cell in cuboid.group(relation, include_tombstoned=True)
        )
    return ids


def store_directory_problems(
    store_cells: Iterable[str],
    expected_ids: set[str],
    quarantined: Iterable[Cell],
    directory: Sequence,
    index: Iterable,
) -> list[str]:
    """Store-side invariants: no unknown cells, no quarantine residue, and
    the B+-tree index mirrors the directory exactly."""
    problems = [
        f"store holds unknown cell {cell_id!r}"
        for cell_id in store_cells
        if cell_id not in expected_ids
    ]
    problems.extend(f"cell {cell} is quarantined" for cell in quarantined)
    if sorted(directory) != sorted(index):
        problems.append(
            "the store's B+-tree index diverges from its directory"
        )
    return problems


__all__ = [
    "ConsistencyReport",
    "check_cell",
    "expected_cell_ids",
    "iter_cell_checks",
    "rtree_partition_problems",
    "store_directory_problems",
]
