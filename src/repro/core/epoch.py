"""Epoch-based snapshot isolation for the P-Cube system.

The concurrency model is single-writer / many-readers:

* Maintenance (already serialised by the WAL's one-in-flight rule) runs
  inside :meth:`EpochManager.write`.  While the block is open, every
  mutation — relation appends/tombstones/overwrites, R-tree page rewrites,
  signature-store rewrites — is stamped with the *building* epoch ``E+1``
  via the clocks and hooks the manager installs on the three structures.
* At WAL commit the driver calls :meth:`EpochManager.publish`: the manager
  freezes the R-tree (copy-on-write, structurally shared with the previous
  snapshot), snapshots the store directory (cheap outer-dict copy), takes
  the counted-signature COW handshake, and atomically installs a new
  immutable :class:`Snapshot`.  Readers that pinned epoch ``E`` keep seeing
  exactly epoch ``E``; new readers see ``E+1``.
* If the op dies before publishing (a fault, or an injected crash), the
  building epoch is abandoned: its half-applied mutations are stamped
  ``E+1`` and therefore *invisible* to every reader still pinned at ``E`` —
  the in-memory analogue of an uncommitted WAL record.  Recovery re-runs
  under a fresh ``write()`` and publishes when it completes.

Reclamation: pages logically freed during the build of epoch ``W`` may
still be traversed by readers pinned at epochs ``< W``, so their physical
``disk.free`` is deferred with barrier ``W`` and executed only when neither
the current snapshot nor any pinned reader sits below the barrier.  Page
frees run from whichever thread drops the last pin (the disk is
thread-safe); :meth:`Relation.prune_versions` mutates the relation's
version maps, which the maintenance writer updates without a lock, so it
runs only on the writer path — at :meth:`publish`, under ``_writer_lock``
— against the same horizon.  Double-free attempts (possible when recovery
rebuilds structures wholesale) are tolerated.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.rtree.frozen import FrozenRTree, freeze
from repro.storage.disk import PageFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.counted import CountedSignature
    from repro.core.pcube import PCube, PCubeView
    from repro.core.store import StoreView
    from repro.cube.cuboid import Cell
    from repro.cube.relation import Relation, RelationView
    from repro.rtree.rtree import RTree


@dataclass(frozen=True)
class Snapshot:
    """One published epoch: immutable projections of all three structures.

    Everything a query needs hangs off this object; holding a snapshot
    (pinned) is the only requirement for running against it from any
    thread.
    """

    epoch: int
    relation: "RelationView"
    rtree: FrozenRTree
    store: "StoreView"
    pcube: "PCubeView"
    counted: "dict[Cell, CountedSignature]" = field(repr=False, default=None)


@dataclass
class EpochStats:
    """Aggregate epoch bookkeeping (surfaced by serving stats and audits)."""

    published: int = 0
    abandoned: int = 0
    deferred_frees: int = 0
    reclaimed_pages: int = 0
    pruned_versions: int = 0


class EpochManager:
    """Publishes snapshots of a (relation, R-tree, P-Cube) triple.

    Installing the manager rewires the structures' epoch clock and free
    hooks; from then on the live objects remain fully usable for
    paper-comparable single-threaded work, while pinned snapshots provide
    the isolated read surface for concurrent serving.
    """

    def __init__(
        self, relation: "Relation", rtree: "RTree", pcube: "PCube"
    ) -> None:
        self.relation = relation
        self.rtree = rtree
        self.pcube = pcube
        self.stats = EpochStats()
        self._lock = threading.Lock()
        self._writer_lock = threading.Lock()
        self._building: int | None = None
        self._pins: dict[int, int] = {}
        # (barrier_epoch, page_id): physically free once no reader — current
        # snapshot included — can sit below the barrier.
        self._deferred: list[tuple[int, int]] = []
        # Horizon the version maps were last pruned to (writer path only).
        self._pruned_horizon = 0
        relation.epoch_clock = self._clock
        rtree.free_hook = self._defer_free
        pcube.store.free_hook = self._defer_free
        self._current: Snapshot = self._build_snapshot(epoch=1)
        self.stats.published += 1

    # ------------------------------------------------------------------ #
    # clocks & hooks
    # ------------------------------------------------------------------ #

    def _clock(self) -> int:
        """The epoch mutations are stamped with *right now*."""
        building = self._building
        if building is not None:
            return building
        return self._current.epoch

    def _defer_free(self, page_id: int) -> None:
        """Logically free a page; physical free waits for the barrier."""
        with self._lock:
            barrier = (
                self._building
                if self._building is not None
                else self._current.epoch + 1
            )
            self._deferred.append((barrier, page_id))
            self.stats.deferred_frees += 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Snapshot:
        return self._current

    @property
    def current_epoch(self) -> int:
        return self._current.epoch

    def pin(self) -> Snapshot:
        """Pin the current snapshot; pair with :meth:`unpin`."""
        with self._lock:
            snapshot = self._current
            self._pins[snapshot.epoch] = self._pins.get(snapshot.epoch, 0) + 1
            return snapshot

    def unpin(self, snapshot: Snapshot) -> None:
        """Release a pin; the last release may reclaim old epochs."""
        with self._lock:
            count = self._pins.get(snapshot.epoch, 0)
            if count <= 0:
                raise ValueError(f"epoch {snapshot.epoch} is not pinned")
            if count == 1:
                del self._pins[snapshot.epoch]
            else:
                self._pins[snapshot.epoch] = count - 1
            self._reclaim_pages_locked()

    @contextmanager
    def pinned(self) -> Iterator[Snapshot]:
        snapshot = self.pin()
        try:
            yield snapshot
        finally:
            self.unpin(snapshot)

    def pinned_epochs(self) -> dict[int, int]:
        """Epoch → reader count (serving stats / tests)."""
        with self._lock:
            return dict(self._pins)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    @contextmanager
    def write(self) -> Iterator[int]:
        """Run one maintenance operation under the building epoch.

        Yields the epoch the op's mutations are stamped with.  The caller
        publishes explicitly (at WAL commit) via :meth:`publish`; leaving
        the block without publishing abandons the building epoch, keeping
        its mutations invisible to all current and future readers until a
        later op (usually recovery) publishes past it.
        """
        with self._writer_lock:
            with self._lock:
                building = self._current.epoch + 1
                self._building = building
            published_before = self.stats.published
            try:
                yield building
            finally:
                with self._lock:
                    self._building = None
                    if self.stats.published == published_before:
                        self.stats.abandoned += 1

    @contextmanager
    def exclusive(self) -> Iterator[Snapshot]:
        """Hold the writer lock without opening a building epoch.

        The checkpointer's entry point: while the block runs no maintenance
        operation can start (writes queue on the same lock
        :meth:`write` takes), yet no building epoch exists, so the live
        structures are exactly the published state — a consistent cut the
        checkpoint can copy without racing the single writer.  Readers are
        untouched throughout; they keep serving the current snapshot.

        Yields the current snapshot for convenience (its epoch is the
        checkpoint's watermark epoch).
        """
        with self._writer_lock:
            yield self._current

    def publish(self) -> Snapshot:
        """Atomically install the building epoch as the current snapshot.

        Must be called inside :meth:`write`, after the operation's WAL
        commit — the snapshot then reflects exactly the committed state.
        """
        with self._lock:
            if self._building is None:
                raise RuntimeError("publish() outside an epoch write block")
            epoch = self._building
        snapshot = self._build_snapshot(epoch)
        with self._lock:
            self._current = snapshot
            # Keep stamping any further mutations of this op past the
            # published epoch, in case the driver does trailing cleanup.
            self._building = epoch + 1
            self.stats.published += 1
            self._reclaim_pages_locked()
            horizon = self._horizon_locked()
        # Version-map pruning mutates dicts the writer's own mutators
        # (append/tombstone/overwrite_pref) update without a lock, so it
        # may only run here — on the writer thread, inside write()'s
        # _writer_lock.  Pins can only attach to the current epoch, so a
        # horizon computed moments ago can lag but never overshoot.
        if horizon > self._pruned_horizon:
            self.stats.pruned_versions += self.relation.prune_versions(
                horizon
            )
            self._pruned_horizon = horizon
        return snapshot

    def _build_snapshot(self, epoch: int) -> Snapshot:
        previous = getattr(self, "_current", None)
        frozen = freeze(
            self.rtree, previous.rtree if previous is not None else None
        )
        relation_view = self.relation.view(epoch)
        store_view = self.pcube.store.view(
            self.pcube.store.directory_snapshot()
        )
        counted = self.pcube.share_counted()
        pcube_view = self.pcube.view(relation_view, frozen, store_view)
        return Snapshot(
            epoch=epoch,
            relation=relation_view,
            rtree=frozen,
            store=store_view,
            pcube=pcube_view,
            counted=counted,
        )

    # ------------------------------------------------------------------ #
    # reclamation
    # ------------------------------------------------------------------ #

    def _horizon_locked(self) -> int:
        """The lowest epoch any present or future reader can observe:
        the minimum over pinned epochs and the current snapshot."""
        horizon = min(self._pins, default=self._current.epoch)
        return min(horizon, self._current.epoch)

    def _reclaim_pages_locked(self) -> None:
        """Free deferred pages behind the horizon (epoch lock held).

        Safe from any thread: ``_deferred`` is only touched under the
        epoch lock and ``disk.free`` is itself thread-safe.  Version-map
        pruning deliberately does *not* happen here — see :meth:`publish`.
        """
        if not self._deferred:
            return
        horizon = self._horizon_locked()
        keep: list[tuple[int, int]] = []
        freed = 0
        for barrier, page_id in self._deferred:
            if barrier > horizon:
                keep.append((barrier, page_id))
                continue
            try:
                self.rtree.disk.free(page_id)
            except PageFault:
                pass  # recovery may have rebuilt (and freed) wholesale
            freed += 1
        self._deferred = keep
        self.stats.reclaimed_pages += freed

    def deferred_free_count(self) -> int:
        with self._lock:
            return len(self._deferred)
