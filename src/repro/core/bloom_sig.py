"""Lossy Bloom-filter signatures (paper Section VII).

    "Besides the lossless compression discussed in this paper, lossy
    compression such as Bloom Filter is also applicable.  We can build a
    bloom filter on all SID's whose corresponding entries are 1 in the
    signature.  During query execution, we can load the compressed
    signature (i.e., a bloom filter), and test a SID upon that."

A set bit at position ``p`` of node ``n`` corresponds to the SID of the
child slot ``p`` under ``n`` — so the filter is built over *child SIDs* of
every set bit, uniformly for internal nodes and leaf slots.  Membership
tests can only err towards *false positives*, so boolean pruning stays
conservative: queries remain exact but may read a few extra R-tree blocks.
The ablation benchmark quantifies size saved vs. blocks wasted.
"""

from __future__ import annotations

from typing import Sequence

from repro.bitmap.bloom import BloomFilter
from repro.core.signature import Signature
from repro.core.sid import child_sid, sid_of_path


class BloomSignature:
    """A Bloom filter over the set-bit SIDs of one cell's signature.

    Exposes the same ``check_entry`` / ``check_path`` interface as the
    exact readers, so Algorithm 1 can use it as a drop-in boolean pruner.
    """

    #: Reader-interface compatibility (no lazy loading to time).
    load_seconds = 0.0
    loads = 0

    def __init__(self, bloom: BloomFilter, fanout: int, empty: bool) -> None:
        self.bloom = bloom
        self.fanout = fanout
        self._empty = empty

    @classmethod
    def from_signature(
        cls, signature: Signature, fp_rate: float = 0.01
    ) -> "BloomSignature":
        """Build the filter from every set bit of ``signature``."""
        sids = [
            child_sid(node_sid, position + 1, signature.fanout)
            for node_sid in signature.node_sids()
            for position in signature.node(node_sid).positions()  # type: ignore[union-attr]
        ]
        bloom = BloomFilter.for_items(sids, fp_rate=fp_rate)
        return cls(bloom, signature.fanout, empty=not sids)

    # ------------------------------------------------------------------ #
    # the boolean-reader interface
    # ------------------------------------------------------------------ #

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        if self._empty:
            return False
        parent_sid = sid_of_path(parent_path, self.fanout)
        return self.bloom.might_contain(
            child_sid(parent_sid, position, self.fanout)
        )

    def check_path(self, path: Sequence[int]) -> bool:
        if not path:
            return not self._empty
        return self.check_entry(tuple(path[:-1]), path[-1])

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def size_bytes(self) -> int:
        return self.bloom.size_bytes()

    def __repr__(self) -> str:
        return f"BloomSignature({self.bloom!r})"


class BloomConjunction:
    """Lazy AND over several Bloom signatures (multi-predicate queries)."""

    load_seconds = 0.0
    loads = 0

    def __init__(self, signatures: Sequence[BloomSignature]) -> None:
        if not signatures:
            raise ValueError("BloomConjunction needs at least one signature")
        self.signatures = list(signatures)

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        return all(
            signature.check_entry(parent_path, position)
            for signature in self.signatures
        )

    def check_path(self, path: Sequence[int]) -> bool:
        return all(
            signature.check_path(path) for signature in self.signatures
        )
