"""Counted signatures: O(depth) incremental maintenance.

The stored signature is a pure bitmap, so *removing* a tuple path needs to
know whether any other tuple of the cell still uses each prefix.  The paper
resolves removals by re-collecting paths under the reorganised subtree; this
module implements the natural bookkeeping alternative the DESIGN.md ablation
studies: keep, per represented node and child position, the *count* of cell
tuples below.  A bit is set iff its count is positive, so

* adding a path increments ``depth`` counters,
* removing a path decrements them and clears bits that reach zero,

with no access to other tuples' paths.  The memory overhead is one small int
per set bit — still far below a per-cell index — and the bitmap view stays
available for storage at any time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bitmap.bitarray import BitArray
from repro.core.signature import Signature


class CountedSignature:
    """A signature whose set bits carry tuple counts."""

    __slots__ = ("fanout", "_counts")

    def __init__(self, fanout: int) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        # sid -> {1-based child position -> count > 0}
        self._counts: dict[int, dict[int, int]] = {}

    @classmethod
    def from_paths(
        cls, paths: Iterable[Sequence[int]], fanout: int
    ) -> "CountedSignature":
        counted = cls(fanout)
        for path in paths:
            counted.add_path(path)
        return counted

    # ------------------------------------------------------------------ #
    # maintenance primitives
    # ------------------------------------------------------------------ #

    def add_path(self, path: Sequence[int]) -> None:
        """Count one tuple in along ``path``."""
        if not path:
            raise ValueError("a tuple path cannot be empty")
        base = self.fanout + 1
        sid = 0
        for component in path:
            if not 1 <= component <= self.fanout:
                raise ValueError(
                    f"path component {component} outside [1, {self.fanout}]"
                )
            node = self._counts.setdefault(sid, {})
            node[component] = node.get(component, 0) + 1
            sid = sid * base + component

    def remove_path(self, path: Sequence[int]) -> None:
        """Count one tuple out along ``path``.

        Raises:
            KeyError: if the path was never counted in (a maintenance bug —
                failing loudly beats silently corrupting the signature).
        """
        if not path:
            raise ValueError("a tuple path cannot be empty")
        base = self.fanout + 1
        sid = 0
        for component in path:
            node = self._counts.get(sid)
            if node is None or component not in node:
                raise KeyError(
                    f"path {tuple(path)} is not counted in this signature"
                )
            node[component] -= 1
            if node[component] == 0:
                del node[component]
                if not node:
                    del self._counts[sid]
            sid = sid * base + component

    def move_path(
        self, old_path: Sequence[int], new_path: Sequence[int]
    ) -> None:
        """Apply one R-tree :class:`PathChange` for a surviving tuple."""
        self.remove_path(old_path)
        self.add_path(new_path)

    def copy(self) -> "CountedSignature":
        """An independent deep copy (copy-on-write under epoch snapshots:
        a published snapshot keeps the original, maintenance mutates the
        copy)."""
        duplicate = CountedSignature(self.fanout)
        duplicate._counts = {
            sid: dict(node) for sid, node in self._counts.items()
        }
        return duplicate

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def check_bit(self, parent_sid: int, position: int) -> bool:
        node = self._counts.get(parent_sid)
        return bool(node) and position in node

    def count(self, parent_sid: int, position: int) -> int:
        node = self._counts.get(parent_sid)
        if not node:
            return 0
        return node.get(position, 0)

    def n_nodes(self) -> int:
        return len(self._counts)

    def to_signature(self) -> Signature:
        """The bitmap view (what gets compressed and stored)."""
        signature = Signature(self.fanout)
        for sid, node in self._counts.items():
            bits = BitArray(self.fanout)
            for position in node:
                bits.set(position - 1)
            signature.set_node(sid, bits)
        return signature

    def dirty_sids(self, path: Sequence[int]) -> list[int]:
        """The node SIDs a path touches (ancestors of the leaf slot)."""
        base = self.fanout + 1
        sids = [0]
        sid = 0
        for component in path[:-1]:
            sid = sid * base + component
            sids.append(sid)
        return sids

    def __eq__(self, other: object) -> bool:
        """Exact count-level equality (consistency audits compare a live
        counted signature against one rebuilt from the R-tree)."""
        if not isinstance(other, CountedSignature):
            return NotImplemented
        return self.fanout == other.fanout and self._counts == other._counts

    __hash__ = None  # mutable; forbid hashing, like Signature

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        return f"CountedSignature(fanout={self.fanout}, nodes={len(self._counts)})"
