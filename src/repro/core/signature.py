"""The signature tree of one cube cell.

A signature mirrors the R-tree topology: for every tree node it stores a bit
array over that node's ``M`` slots, where bit ``p`` is 1 iff the subtree (or
leaf slot) at child position ``p + 1`` contains at least one tuple of the
cell.  Nodes are addressed by SID; only nodes with at least one set bit are
represented (a missing node means "all zeroes"), which is what makes the
measure so much smaller than a per-cell index.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.bitmap.bitarray import BitArray
from repro.core.sid import child_sid, sid_of_path
from repro.kernels.sigops import popcount_masks


class Signature:
    """A sparse map from node SIDs to child bit arrays.

    Args:
        fanout: The R-tree node capacity ``M``; every bit array has width M.
    """

    __slots__ = ("fanout", "_nodes")

    def __init__(self, fanout: int) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        self._nodes: dict[int, BitArray] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_paths(
        cls, paths: Iterable[Sequence[int]], fanout: int
    ) -> "Signature":
        """Build a signature from the tuple paths of one cell.

        Equivalent to the paper's recursive-sorting generation (Fig. 2b) —
        see :func:`repro.core.generation.signature_by_recursive_sort` for the
        literal transcription; both produce identical trees (tested).
        """
        signature = cls(fanout)
        for path in paths:
            signature.add_path(path)
        return signature

    def add_path(self, path: Sequence[int]) -> None:
        """Set every bit along a tuple path (idempotent)."""
        if not path:
            raise ValueError("a tuple path cannot be empty")
        base = self.fanout + 1
        sid = 0
        for component in path:
            if not 1 <= component <= self.fanout:
                raise ValueError(
                    f"path component {component} outside [1, {self.fanout}]"
                )
            bits = self._nodes.get(sid)
            if bits is None:
                bits = BitArray(self.fanout)
                self._nodes[sid] = bits
            bits.set(component - 1)
            sid = sid * base + component

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def node(self, sid: int) -> BitArray | None:
        """The bit array of node ``sid`` (``None`` = all zeroes)."""
        return self._nodes.get(sid)

    def node_sids(self) -> Iterator[int]:
        """SIDs of all represented (non-empty) nodes."""
        return iter(self._nodes)

    def n_nodes(self) -> int:
        return len(self._nodes)

    def check_bit(self, parent_sid: int, position: int) -> bool:
        """Whether child ``position`` (1-based) of node ``parent_sid`` holds data."""
        bits = self._nodes.get(parent_sid)
        if bits is None:
            return False
        return bits.get(position - 1)

    def check_path(self, path: Sequence[int]) -> bool:
        """Whether every bit along ``path`` is set.

        For signatures built from data this equals checking the deepest bit;
        for hand-made or lazily combined signatures the full walk is the
        safe, still cheap, option.
        """
        base = self.fanout + 1
        sid = 0
        for component in path:
            bits = self._nodes.get(sid)
            if bits is None or not bits.get(component - 1):
                return False
            sid = sid * base + component
        return True

    def tuple_paths(self) -> Iterator[tuple[int, ...]]:
        """Enumerate the maximal paths encoded by this signature.

        For a signature generated from data, these are exactly the paths of
        the cell's tuples.
        """
        yield from self._walk((), 0)

    def _walk(
        self, prefix: tuple[int, ...], sid: int
    ) -> Iterator[tuple[int, ...]]:
        bits = self._nodes.get(sid)
        if bits is None:
            if prefix:
                yield prefix
            return
        for position in bits.positions():
            component = position + 1
            yield from self._walk(
                prefix + (component,), child_sid(sid, component, self.fanout)
            )

    def set_bit_count(self) -> int:
        """Total set bits across all nodes (a size diagnostic)."""
        return popcount_masks(
            (bits.mask for bits in self._nodes.values()), self.fanout
        )

    def contains_subtree(self, path: Sequence[int]) -> bool:
        """Whether the cell has any data under the node at ``path``.

        The root (empty path) asks whether the cell is non-empty.
        """
        if not path:
            return bool(self._nodes)
        parent = sid_of_path(path[:-1], self.fanout)
        return self.check_bit(parent, path[-1])

    # ------------------------------------------------------------------ #
    # mutation support used by maintenance and ops
    # ------------------------------------------------------------------ #

    def set_node(self, sid: int, bits: BitArray) -> None:
        """Install a node's bit array; an all-zero array removes the node."""
        if bits.nbits != self.fanout:
            raise ValueError(
                f"bit array has {bits.nbits} bits, fanout is {self.fanout}"
            )
        if bits.any():
            self._nodes[sid] = bits
        else:
            self._nodes.pop(sid, None)

    def drop_node(self, sid: int) -> None:
        self._nodes.pop(sid, None)

    def copy(self) -> "Signature":
        clone = Signature(self.fanout)
        clone._nodes = {sid: bits.copy() for sid, bits in self._nodes.items()}
        return clone

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self.fanout == other.fanout and self._nodes == other._nodes

    def __hash__(self) -> int:  # signatures are mutable; forbid hashing
        raise TypeError("Signature objects are unhashable")

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def __repr__(self) -> str:
        return f"Signature(fanout={self.fanout}, nodes={len(self._nodes)})"
