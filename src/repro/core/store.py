"""The on-disk signature store and its lazily loading readers.

Paper Section VI-A: "Signatures are compressed, decomposed and indexed
(using B+-tree) by cell IDs and SID's."  A partial signature lives on one
disk page; the B+-tree maps ``(cell_id, ref_sid)`` to that page.  At query
time a :class:`CellSignatureReader` starts from the root-referenced partial
and loads further partials only when the search requests a node that is not
resident yet (Section IV-B.2's retrieval protocol) — every load is counted
under ``SSIG`` and timed for the Figure 15 breakdown.

Fault tolerance (the Diamond-Dicing contract: OLAP structures are
rebuildable caches over the base relation, so a lost or corrupt signature
must never produce a wrong answer, only a slower one):

* :meth:`SignatureStore.load_partial` retries transient read faults with
  bounded, deterministic backoff;
* :meth:`SignatureStore.replace_partials` is atomic — new pages are
  allocated first, the directory swap is the commit point, and a journal
  entry guarantees a fault mid-rewrite leaves the old partials readable
  (:meth:`SignatureStore.recover` rolls incomplete rewrites back);
* when a partial stays unreadable after retries, the owning
  :class:`CellSignatureReader` enters *conservative mode*: bit tests that
  cannot be resolved answer ``True`` (losing boolean pruning, preserving
  Algorithm 1's correctness), leaf-level checks are resolved exactly
  against the base relation via a fallback, and the cell is quarantined
  until :meth:`SignatureStore.rebuild_cell` regenerates it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.bitmap.bitarray import BitArray
from repro.btree.btree import BPlusTree
from repro.core.partial import PartialSignature, decompose, retrieval_refs
from repro.obs.trace import DEGRADED, Tracer
from repro.core.signature import Signature
from repro.cube.cuboid import Cell
from repro.storage.buffer import BufferPool
from repro.storage.counters import SSIG, IOCounters
from repro.storage.disk import PageFault, SimulatedDisk
from repro.storage.errors import StorageFault
from repro.storage.faults import FaultStats, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.resilience import BreakerBoard, RetryBudget


class MissingPartialError(LookupError):
    """A directory ref points at a partial the store cannot produce.

    Replaces a load-bearing ``assert`` (which vanishes under ``python -O``)
    on the full-signature reassembly path.
    """

    def __init__(self, cell_id: str, ref_sid: int) -> None:
        super().__init__(
            f"cell {cell_id!r} has no loadable partial for ref SID {ref_sid}"
        )
        self.cell_id = cell_id
        self.ref_sid = ref_sid


@dataclass
class RewriteJournalEntry:
    """One in-flight maintenance rewrite (crash-recovery bookkeeping).

    Uncommitted entries roll back (free the new pages, keep the old ones);
    committed entries roll forward (free whatever old pages remain).
    """

    cell_id: str
    old_refs: dict[int, int]
    new_pages: list[int] = field(default_factory=list)
    committed: bool = False


class SignatureStore:
    """Partial signatures on disk, indexed by (cell id, ref SID).

    Args:
        disk, fanout, tag, codec: As before.
        retry_policy: Bounded-backoff retry for transient read faults;
            defaults to a fresh :class:`RetryPolicy` (deterministic clock,
            no real sleeps).  Pass ``RetryPolicy(max_attempts=1)`` to
            disable retrying.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        fanout: int,
        tag: str = "pcube",
        codec: str = "adaptive",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.disk = disk
        self.fanout = fanout
        self.tag = tag
        self.codec = codec
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_stats = FaultStats()
        self._index = BPlusTree(order=128, disk=disk, tag=f"{tag}:index")
        # cell_id -> {ref_sid -> page_id}; mirrors the B+-tree for O(1)
        # unaccounted access (maintenance) while queries go through the
        # counted B+-tree path.
        self._directory: dict[str, dict[int, int]] = {}
        # cell_id -> (cell, reason) for cells whose partials proved
        # unreadable; cleared by rebuild_cell().
        self._quarantined: dict[str, tuple[Cell, str]] = {}
        self._journal: list[RewriteJournalEntry] = []
        #: When set, signature-page frees are routed here instead of
        #: ``disk.free`` — the epoch manager defers them until no pinned
        #: snapshot directory can still reference the page.
        self.free_hook: Callable[[int], None] | None = None
        #: When set, called with a cell id whenever that cell's quarantine
        #: is lifted (a rebuild made its pages readable again).  The
        #: serving executor points this at its breaker board so live
        #: sessions heal immediately; epoch-bound sessions heal through
        #: epoch comparison regardless.
        self.on_cell_rebuilt: Callable[[str], None] | None = None

    def _free_sig_page(self, page_id: int) -> None:
        if self.free_hook is not None:
            self.free_hook(page_id)
            return
        try:
            self.disk.free(page_id)
        except PageFault:
            pass

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def put_signature(self, cell: Cell, signature: Signature) -> int:
        """Decompose and store a full cell signature; returns #partials."""
        partials = decompose(signature, self.disk.page_size, self.codec)
        self.replace_partials(cell, partials)
        return len(partials)

    def replace_partials(
        self, cell: Cell, partials: Sequence[PartialSignature]
    ) -> None:
        """Replace every stored partial of a cell (maintenance rewrite).

        Atomic: the new pages are allocated first, then the directory swaps
        to them in one step (the commit point), then the index is brought in
        line and the old pages freed.  A journal entry covers the whole
        rewrite, so a fault at any point leaves either the old or the new
        partials fully readable — never a mix, never nothing.
        """
        self.recover()
        cell_id = cell.cell_id
        existing = dict(self._directory.get(cell_id, {}))
        journal = RewriteJournalEntry(cell_id=cell_id, old_refs=existing)
        self._journal.append(journal)
        # Phase 1: allocate every new page.  A torn fault here propagates
        # with the directory untouched; recover() frees the orphans.
        refs: dict[int, int] = {}
        for partial in partials:
            page_id = self.disk.allocate(
                f"{self.tag}:sig", size=partial.size_bytes, payload=partial
            )
            journal.new_pages.append(page_id)
            refs[partial.ref_sid] = page_id
        # Phase 2: commit — one directory swap.
        journal.committed = True
        self._directory[cell_id] = refs
        # Phase 3: keep the B+-tree exactly in line with the directory —
        # vanished refs are deleted (not left stale), moved refs are
        # replaced rather than duplicated.
        for ref in existing:
            self._index.delete((cell_id, ref))
        for ref in sorted(refs):
            self._index.insert((cell_id, ref), refs[ref])
        # Phase 4: free the replaced pages (registered buffer pools are
        # told to evict them, so no reader can see a stale partial).  Under
        # an epoch manager the physical free is deferred instead, because a
        # pinned snapshot directory may still reference the old pages.
        for page_id in existing.values():
            self._free_sig_page(page_id)
        self._journal.remove(journal)

    def recover(self) -> int:
        """Resolve interrupted rewrites; returns how many were resolved.

        Called automatically at the start of every rewrite and rebuild; safe
        to call at any time.
        """
        resolved = 0
        for journal in list(self._journal):
            if journal.committed:
                # Roll forward: the directory already points at the new
                # pages; free whatever old pages were not freed yet.
                leftovers = journal.old_refs.values()
            else:
                # Roll back: the old pages are still current; free the
                # partially allocated new generation.
                leftovers = journal.new_pages
            current = set(self._directory.get(journal.cell_id, {}).values())
            for page_id in leftovers:
                if page_id in current:
                    continue
                self._free_sig_page(page_id)
            self._journal.remove(journal)
            resolved += 1
        return resolved

    # ------------------------------------------------------------------ #
    # quarantine & rebuild
    # ------------------------------------------------------------------ #

    def quarantine(self, cell: Cell, reason: object) -> None:
        """Mark a cell's stored signature as unreadable (degraded mode)."""
        if cell.cell_id not in self._quarantined:
            self.fault_stats.quarantines += 1
        self._quarantined[cell.cell_id] = (cell, repr(reason))

    def is_quarantined(self, cell: Cell) -> bool:
        return cell.cell_id in self._quarantined

    def quarantined_cells(self) -> list[Cell]:
        """Cells awaiting a rebuild, in deterministic (cell id) order."""
        return [
            cell for _, (cell, _) in sorted(self._quarantined.items())
        ]

    def clear_quarantine(self, cell: Cell) -> None:
        was_quarantined = self._quarantined.pop(cell.cell_id, None)
        if was_quarantined is not None and self.on_cell_rebuilt is not None:
            self.on_cell_rebuilt(cell.cell_id)

    def rebuild_cell(self, cell: Cell, signature: Signature) -> int:
        """Store a freshly regenerated signature for a quarantined cell.

        The signature comes from the base relation and the R-tree (see
        :meth:`PCube.rebuild_cell`); the old — possibly corrupt — pages are
        freed by the rewrite, and the quarantine is lifted.  Returns the
        number of partials stored.
        """
        self.recover()
        n_partials = self.put_signature(cell, signature)
        self.clear_quarantine(cell)
        self.fault_stats.rebuilds += 1
        return n_partials

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def has_cell(self, cell: Cell) -> bool:
        return cell.cell_id in self._directory

    def cells(self) -> list[str]:
        return sorted(self._directory)

    def n_partials(self, cell: Cell) -> int:
        return len(self._directory.get(cell.cell_id, {}))

    def load_partial(
        self,
        cell: Cell,
        ref_sid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        on_retry: Callable[[int, Exception], None] | None = None,
        budget: "RetryBudget | None" = None,
    ) -> PartialSignature | None:
        """Load one partial by (cell, ref) — one counted ``SSIG`` page read.

        Returns ``None`` when the cell has no partial with that reference.
        Transient faults are retried under the store's
        :attr:`retry_policy`; with a ``budget`` (the serving ticket's
        remaining deadline) retries whose backoff would outspend it are
        skipped.  A read that keeps failing (or a detected corruption)
        propagates as a typed storage fault for the caller's degraded
        path.  The index descent itself is served from the directory
        (equivalent to a pinned B+-tree root path); tests exercise the
        counted B+-tree separately.
        """
        refs = self._directory.get(cell.cell_id)
        if refs is None or ref_sid not in refs:
            return None
        page_id = refs[ref_sid]

        def read_once() -> PartialSignature:
            if pool is not None:
                return pool.get(page_id, SSIG, counters)
            return self.disk.read(page_id, SSIG, counters)

        def count_retry(attempt: int, exc: Exception) -> None:
            self.fault_stats.retries += 1
            if on_retry is not None:
                on_retry(attempt, exc)

        deadline = (
            budget.clock_deadline(self.retry_policy.clock)
            if budget is not None
            else None
        )
        try:
            return self.retry_policy.call(
                read_once, on_retry=count_retry, deadline=deadline
            )
        except StorageFault:
            self.fault_stats.transient_errors += 1
            raise

    def load_full_signature(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
    ) -> Signature:
        """Load and reassemble every partial of a cell (counted)."""
        signature = Signature(self.fanout)
        refs = self._directory.get(cell.cell_id, {})
        for ref_sid in sorted(refs):
            partial = self.load_partial(cell, ref_sid, pool, counters)
            if partial is None:
                raise MissingPartialError(cell.cell_id, ref_sid)
            for sid, bits in partial.decode().items():
                signature.set_node(sid, bits)
        return signature

    def reader(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        fallback: "BooleanFallback | None" = None,
        tracer: Tracer | None = None,
        budget: "RetryBudget | None" = None,
        breakers: "BreakerBoard | None" = None,
        epoch: int | None = None,
    ) -> "CellSignatureReader":
        return CellSignatureReader(
            self,
            cell,
            pool,
            counters,
            fallback,
            tracer,
            budget=budget,
            breakers=breakers,
            epoch=epoch,
        )

    def index_height(self) -> int:
        return self._index.height()

    def directory_snapshot(self) -> dict[str, dict[int, int]]:
        """A point-in-time copy of the (cell → refs) directory.

        Cheap: only the outer map is copied.  ``replace_partials`` installs
        a *new* inner refs map at its commit point rather than mutating the
        old one, so the shared inner dicts are immutable from the
        snapshot's perspective.
        """
        return dict(self._directory)

    def view(self, directory: dict[str, dict[int, int]]) -> "StoreView":
        """A read-only store bound to a snapshotted directory."""
        return StoreView(self, directory)

    def refs_for(self, cell: Cell) -> dict[int, int]:
        """The directory's ``ref_sid -> page_id`` map for a cell (audits)."""
        return dict(self._directory.get(cell.cell_id, {}))

    def directory_entries(self) -> list[tuple[tuple[str, int], int]]:
        """Every ``((cell_id, ref_sid), page_id)`` pair in the directory,
        in key order — the shape :meth:`index_entries` returns, so audits
        can compare the two views directly."""
        return [
            ((cell_id, ref), refs[ref])
            for cell_id in sorted(self._directory)
            for refs in (self._directory[cell_id],)
            for ref in sorted(refs)
        ]

    def index_entries(self) -> list[tuple[tuple[str, int], int]]:
        """Every ``((cell_id, ref_sid), page_id)`` pair in the B+-tree, in
        key order (consistency audits compare this against the directory)."""
        entries: list[tuple[tuple[str, int], int]] = []
        for key in self._index.distinct_keys():
            for page_id in self._index.search(key):
                entries.append((key, page_id))
        return entries

    def reset_index(self) -> int:
        """Discard and re-derive the (cell, ref) B+-tree from the directory.

        The directory is authoritative (the index mirrors it for counted
        query-time descents), and a crash between B+-tree page writes can
        leave the index structurally broken mid-split — so crash recovery
        does not repair it, it rebuilds it.  Returns the number of entries
        reinserted.  Idempotent.
        """
        for page in list(self.disk.pages(f"{self.tag}:index")):
            try:
                self.disk.free(page.page_id)
            except PageFault:
                pass
        self._index = BPlusTree(
            order=128, disk=self.disk, tag=f"{self.tag}:index"
        )
        entries = 0
        for cell_id in sorted(self._directory):
            refs = self._directory[cell_id]
            for ref in sorted(refs):
                self._index.insert((cell_id, ref), refs[ref])
                entries += 1
        return entries


class StoreView:
    """The signature store as one epoch saw it — a read-only projection.

    Serves :meth:`load_partial` / :meth:`load_full_signature` lookups from
    a snapshotted directory, so a pinned reader resolves exactly the
    partial pages that were current when its epoch was published, even
    while maintenance rewrites cells underneath (old pages stay allocated
    until the epoch drains — the manager defers their frees).  Quarantine
    and fault accounting intentionally pass through to the live store:
    discovering an unreadable page is news for the repair queue regardless
    of which epoch noticed it.
    """

    def __init__(
        self, base: SignatureStore, directory: dict[str, dict[int, int]]
    ) -> None:
        self._base = base
        self._directory = directory
        self.disk = base.disk
        self.fanout = base.fanout
        self.retry_policy = base.retry_policy
        self.fault_stats = base.fault_stats

    def quarantine(self, cell: Cell, reason: object) -> None:
        self._base.quarantine(cell, reason)

    def is_quarantined(self, cell: Cell) -> bool:
        return self._base.is_quarantined(cell)

    def has_cell(self, cell: Cell) -> bool:
        return cell.cell_id in self._directory

    def n_partials(self, cell: Cell) -> int:
        return len(self._directory.get(cell.cell_id, {}))

    def load_partial(
        self,
        cell: Cell,
        ref_sid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        on_retry: Callable[[int, Exception], None] | None = None,
        budget: "RetryBudget | None" = None,
    ) -> PartialSignature | None:
        refs = self._directory.get(cell.cell_id)
        if refs is None or ref_sid not in refs:
            return None
        page_id = refs[ref_sid]

        def read_once() -> PartialSignature:
            if pool is not None:
                return pool.get(page_id, SSIG, counters)
            return self.disk.read(page_id, SSIG, counters)

        def count_retry(attempt: int, exc: Exception) -> None:
            self.fault_stats.retries += 1
            if on_retry is not None:
                on_retry(attempt, exc)

        deadline = (
            budget.clock_deadline(self.retry_policy.clock)
            if budget is not None
            else None
        )
        try:
            return self.retry_policy.call(
                read_once, on_retry=count_retry, deadline=deadline
            )
        except StorageFault:
            self.fault_stats.transient_errors += 1
            raise

    def load_full_signature(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
    ) -> Signature:
        signature = Signature(self.fanout)
        refs = self._directory.get(cell.cell_id, {})
        for ref_sid in sorted(refs):
            partial = self.load_partial(cell, ref_sid, pool, counters)
            if partial is None:
                raise MissingPartialError(cell.cell_id, ref_sid)
            for sid, bits in partial.decode().items():
                signature.set_node(sid, bits)
        return signature

    def reader(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        fallback: "BooleanFallback | None" = None,
        tracer: Tracer | None = None,
        budget: "RetryBudget | None" = None,
        breakers: "BreakerBoard | None" = None,
        epoch: int | None = None,
    ) -> "CellSignatureReader":
        return CellSignatureReader(
            self,
            cell,
            pool,
            counters,
            fallback,
            tracer,
            budget=budget,
            breakers=breakers,
            epoch=epoch,
        )


#: Exact boolean resolver used in conservative mode: ``(cell, path,
#: counters) -> does the entry at path contain data of the cell?``  Must be
#: conservative (``True``) wherever it cannot answer exactly.
BooleanFallback = Callable[[Cell, tuple[int, ...], "IOCounters | None"], bool]


class CellSignatureReader:
    """A lazily loaded view of one cell's signature.

    Bit tests trigger partial loads per the paper's retrieval protocol; the
    cumulative wall-clock time spent loading is recorded in
    :attr:`load_seconds` (Figure 15 reports it against total query time).

    When a partial is unreadable after retries the reader degrades instead
    of failing: the unresolvable refs are remembered, the cell is
    quarantined in the store, and bit tests that depend on the lost nodes
    answer conservatively — ``True`` (no pruning) at internal nodes, and
    exactly via ``fallback`` (a base-relation probe) where one is provided.
    Algorithm 1 then still returns exactly the fault-free answer, just with
    more block reads (the robustness overhead the stats record).
    """

    def __init__(
        self,
        store: "SignatureStore | StoreView",
        cell: Cell,
        pool: BufferPool | None,
        counters: IOCounters | None,
        fallback: BooleanFallback | None = None,
        tracer: Tracer | None = None,
        budget: "RetryBudget | None" = None,
        breakers: "BreakerBoard | None" = None,
        epoch: int | None = None,
    ) -> None:
        self.store = store
        self.cell = cell
        self.pool = pool
        self.counters = counters
        self.fallback = fallback
        self.tracer = tracer
        self.budget = budget
        self.breakers = breakers
        self.epoch = epoch
        self.fanout = store.fanout
        self._nodes: dict[int, BitArray] = {}
        self._loaded_refs: set[int] = set()
        self._known_missing: set[int] = set()
        self._unreadable_refs: set[int] = set()
        self.load_seconds = 0.0
        self.loads = 0
        self.retries = 0
        self.failed_loads = 0
        self.degraded_checks = 0
        self.breaker_skips = 0
        # The first partial (root reference) is loaded up front, as the
        # paper prescribes ("To begin with, we load the first partial
        # signature referenced by the R-tree root").
        self._load_ref(0)

    @property
    def degraded(self) -> bool:
        """Whether any partial proved unreadable (conservative mode)."""
        return bool(self._unreadable_refs)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def _count_retry(self, attempt: int, exc: Exception) -> None:
        self.retries += 1

    def _load_ref(self, ref_sid: int) -> bool | None:
        """Load the partial referenced by ``ref_sid``.

        Returns ``True`` when loaded, ``False`` when the store provably has
        no such partial, and ``None`` when the partial exists but could not
        be read (transient fault that outlived the retry budget, or
        corruption) — the caller must treat the nodes it may have held as
        unknown.
        """
        if ref_sid in self._loaded_refs:
            return True
        if ref_sid in self._known_missing:
            return False
        if ref_sid in self._unreadable_refs:
            return None
        if self.breakers is not None and not self.breakers.allow(
            self.cell.cell_id, ref_sid, self.epoch
        ):
            # An open breaker: the pages behind this ref keep failing, so
            # skip straight to the degraded path — zero I/O, no re-probe.
            self._unreadable_refs.add(ref_sid)
            self.breaker_skips += 1
            if self.tracer is not None:
                self.tracer.sig_load(
                    self.cell.cell_id, ref_sid, "short-circuit", 0.0
                )
            return None
        started = time.perf_counter()
        try:
            partial = self.store.load_partial(
                self.cell,
                ref_sid,
                self.pool,
                self.counters,
                on_retry=self._count_retry,
                budget=self.budget,
            )
        except StorageFault as fault:
            if self.breakers is not None:
                self.breakers.record_failure(
                    self.cell.cell_id, ref_sid, self.epoch
                )
            self._unreadable_refs.add(ref_sid)
            self.failed_loads += 1
            self.store.fault_stats.degraded_loads += 1
            self.store.quarantine(self.cell, fault)
            elapsed = time.perf_counter() - started
            self.load_seconds += elapsed
            if self.tracer is not None:
                self.tracer.sig_load(
                    self.cell.cell_id, ref_sid, "unreadable", elapsed
                )
            return None
        if partial is None:
            self._known_missing.add(ref_sid)
            elapsed = time.perf_counter() - started
            self.load_seconds += elapsed
            if self.tracer is not None:
                self.tracer.sig_load(
                    self.cell.cell_id, ref_sid, "missing", elapsed
                )
            return False
        if self.breakers is not None:
            self.breakers.record_success(self.cell.cell_id, ref_sid)
        self._loaded_refs.add(ref_sid)
        self._nodes.update(partial.decode())
        self.loads += 1
        elapsed = time.perf_counter() - started
        self.load_seconds += elapsed
        if self.tracer is not None:
            self.tracer.sig_load(
                self.cell.cell_id, ref_sid, "loaded", elapsed
            )
        return True

    def _ensure_node(self, node_path: Sequence[int], node_sid: int) -> bool | None:
        """Make the node at ``node_path`` resident.

        Returns ``True`` when resident, ``False`` when provably absent
        (every candidate partial was readable and none held it), ``None``
        when unresolvable (some candidate partial was unreadable).

        Follows the retrieval protocol: probe the partials referenced by
        each ancestor from the root downward until the node shows up.
        """
        if node_sid in self._nodes:
            return True
        unresolved = False
        for ref in retrieval_refs(node_path, self.fanout):
            if ref in self._loaded_refs:
                continue
            outcome = self._load_ref(ref)
            if outcome is None:
                unresolved = True
                continue
            if outcome and node_sid in self._nodes:
                return True
        if node_sid in self._nodes:
            return True
        return None if unresolved else False

    # ------------------------------------------------------------------ #
    # bit tests (the query-time interface)
    # ------------------------------------------------------------------ #

    def _conservative(self, path: tuple[int, ...]) -> bool:
        """Answer an unresolvable bit test without losing correctness.

        With a fallback, leaf-level paths are answered exactly from the
        base relation (and internal paths conservatively); without one,
        every unresolvable test answers ``True`` — boolean pruning is lost
        for the affected subtree, result correctness is not.
        """
        self.degraded_checks += 1
        if self.tracer is not None:
            self.tracer.event(
                DEGRADED,
                cell_id=self.cell.cell_id,
                path=path,
                exact=self.fallback is not None,
            )
        if self.fallback is not None:
            return self.fallback(self.cell, path, self.counters)
        return True

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        """Whether the entry at 1-based ``position`` of the node at
        ``parent_path`` contains data of this cell.

        This is the single-bit check Algorithm 1's ``boolean_prune`` issues
        for each candidate entry: the parent node was necessarily checked
        before (the search descends), so one bit suffices.
        """
        from repro.core.sid import sid_of_path

        parent_sid = sid_of_path(parent_path, self.fanout)
        resident = self._ensure_node(parent_path, parent_sid)
        if resident is None:
            return self._conservative(tuple(parent_path) + (position,))
        if not resident:
            return False
        bits = self._nodes.get(parent_sid)
        return bits is not None and bits.get(position - 1)

    def check_path(self, path: Sequence[int]) -> bool:
        """Whether the entry addressed by a full path contains cell data."""
        if not path:
            resident = self._ensure_node((), 0)
            if resident is None:
                return self._conservative(())
            return bool(resident and self._nodes.get(0) and self._nodes[0].any())
        return self.check_entry(tuple(path[:-1]), path[-1])


class AssembledReader:
    """Conjunction of several cell readers (lazy AND).

    Exact at leaf slots; conservative at internal nodes (see
    :mod:`repro.core.ops`).  ``load_seconds``/``loads`` and the fault
    counters aggregate over the underlying readers; the conjunction is
    degraded as soon as any member is.
    """

    def __init__(self, readers: Sequence[CellSignatureReader]) -> None:
        if not readers:
            raise ValueError("AssembledReader needs at least one reader")
        self.readers = list(readers)

    @property
    def load_seconds(self) -> float:
        return sum(reader.load_seconds for reader in self.readers)

    @property
    def loads(self) -> int:
        return sum(reader.loads for reader in self.readers)

    @property
    def retries(self) -> int:
        return sum(reader.retries for reader in self.readers)

    @property
    def failed_loads(self) -> int:
        return sum(reader.failed_loads for reader in self.readers)

    @property
    def degraded_checks(self) -> int:
        return sum(reader.degraded_checks for reader in self.readers)

    @property
    def breaker_skips(self) -> int:
        return sum(reader.breaker_skips for reader in self.readers)

    @property
    def degraded(self) -> bool:
        return any(reader.degraded for reader in self.readers)

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        return all(
            reader.check_entry(parent_path, position) for reader in self.readers
        )

    def check_path(self, path: Sequence[int]) -> bool:
        return all(reader.check_path(path) for reader in self.readers)
