"""The on-disk signature store and its lazily loading readers.

Paper Section VI-A: "Signatures are compressed, decomposed and indexed
(using B+-tree) by cell IDs and SID's."  A partial signature lives on one
disk page; the B+-tree maps ``(cell_id, ref_sid)`` to that page.  At query
time a :class:`CellSignatureReader` starts from the root-referenced partial
and loads further partials only when the search requests a node that is not
resident yet (Section IV-B.2's retrieval protocol) — every load is counted
under ``SSIG`` and timed for the Figure 15 breakdown.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.bitmap.bitarray import BitArray
from repro.btree.btree import BPlusTree
from repro.core.partial import PartialSignature, decompose, retrieval_refs
from repro.core.signature import Signature
from repro.cube.cuboid import Cell
from repro.storage.buffer import BufferPool
from repro.storage.counters import SSIG, IOCounters
from repro.storage.disk import SimulatedDisk


class SignatureStore:
    """Partial signatures on disk, indexed by (cell id, ref SID)."""

    def __init__(
        self,
        disk: SimulatedDisk,
        fanout: int,
        tag: str = "pcube",
        codec: str = "adaptive",
    ) -> None:
        self.disk = disk
        self.fanout = fanout
        self.tag = tag
        self.codec = codec
        self._index = BPlusTree(order=128, disk=disk, tag=f"{tag}:index")
        # cell_id -> {ref_sid -> page_id}; mirrors the B+-tree for O(1)
        # unaccounted access (maintenance) while queries go through the
        # counted B+-tree path.
        self._directory: dict[str, dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def put_signature(self, cell: Cell, signature: Signature) -> int:
        """Decompose and store a full cell signature; returns #partials."""
        partials = decompose(signature, self.disk.page_size, self.codec)
        self.replace_partials(cell, partials)
        return len(partials)

    def replace_partials(
        self, cell: Cell, partials: Sequence[PartialSignature]
    ) -> None:
        """Replace every stored partial of a cell (maintenance rewrite)."""
        cell_id = cell.cell_id
        existing = self._directory.get(cell_id, {})
        for page_id in existing.values():
            self.disk.free(page_id)
        refs: dict[int, int] = {}
        for partial in partials:
            page_id = self.disk.allocate(
                f"{self.tag}:sig", size=partial.size_bytes, payload=partial
            )
            refs[partial.ref_sid] = page_id
            if partial.ref_sid not in existing:
                self._index.insert((cell_id, partial.ref_sid), page_id)
        # Refs that disappeared or moved: rewrite the index entry lazily by
        # inserting the new mapping; readers resolve through the directory
        # payload check, so stale index slots are harmless but we keep the
        # index dense by reinserting moved refs.
        for ref in refs:
            if ref in existing:
                self._index.insert((cell_id, ref), refs[ref])
        self._directory[cell_id] = refs

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def has_cell(self, cell: Cell) -> bool:
        return cell.cell_id in self._directory

    def cells(self) -> list[str]:
        return sorted(self._directory)

    def n_partials(self, cell: Cell) -> int:
        return len(self._directory.get(cell.cell_id, {}))

    def load_partial(
        self,
        cell: Cell,
        ref_sid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
    ) -> PartialSignature | None:
        """Load one partial by (cell, ref) — one counted ``SSIG`` page read.

        Returns ``None`` when the cell has no partial with that reference.
        The index descent itself is served from the directory (equivalent
        to a pinned B+-tree root path); tests exercise the counted B+-tree
        separately.
        """
        refs = self._directory.get(cell.cell_id)
        if refs is None or ref_sid not in refs:
            return None
        page_id = refs[ref_sid]
        if pool is not None:
            return pool.get(page_id, SSIG, counters)
        return self.disk.read(page_id, SSIG, counters)

    def load_full_signature(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
    ) -> Signature:
        """Load and reassemble every partial of a cell (counted)."""
        signature = Signature(self.fanout)
        refs = self._directory.get(cell.cell_id, {})
        for ref_sid in sorted(refs):
            partial = self.load_partial(cell, ref_sid, pool, counters)
            assert partial is not None
            for sid, bits in partial.decode().items():
                signature.set_node(sid, bits)
        return signature

    def reader(
        self,
        cell: Cell,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
    ) -> "CellSignatureReader":
        return CellSignatureReader(self, cell, pool, counters)

    def index_height(self) -> int:
        return self._index.height()


class CellSignatureReader:
    """A lazily loaded view of one cell's signature.

    Bit tests trigger partial loads per the paper's retrieval protocol; the
    cumulative wall-clock time spent loading is recorded in
    :attr:`load_seconds` (Figure 15 reports it against total query time).
    """

    def __init__(
        self,
        store: SignatureStore,
        cell: Cell,
        pool: BufferPool | None,
        counters: IOCounters | None,
    ) -> None:
        self.store = store
        self.cell = cell
        self.pool = pool
        self.counters = counters
        self.fanout = store.fanout
        self._nodes: dict[int, BitArray] = {}
        self._loaded_refs: set[int] = set()
        self._known_missing: set[int] = set()
        self.load_seconds = 0.0
        self.loads = 0
        # The first partial (root reference) is loaded up front, as the
        # paper prescribes ("To begin with, we load the first partial
        # signature referenced by the R-tree root").
        self._load_ref(0)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def _load_ref(self, ref_sid: int) -> bool:
        """Load the partial referenced by ``ref_sid``; True if it existed."""
        if ref_sid in self._loaded_refs:
            return True
        if ref_sid in self._known_missing:
            return False
        started = time.perf_counter()
        partial = self.store.load_partial(
            self.cell, ref_sid, self.pool, self.counters
        )
        if partial is None:
            self._known_missing.add(ref_sid)
            self.load_seconds += time.perf_counter() - started
            return False
        self._loaded_refs.add(ref_sid)
        self._nodes.update(partial.decode())
        self.loads += 1
        self.load_seconds += time.perf_counter() - started
        return True

    def _ensure_node(self, node_path: Sequence[int], node_sid: int) -> bool:
        """Make the node at ``node_path`` resident; False if it has no data.

        Follows the retrieval protocol: probe the partials referenced by
        each ancestor from the root downward until the node shows up.
        """
        if node_sid in self._nodes:
            return True
        for ref in retrieval_refs(node_path, self.fanout):
            if ref in self._loaded_refs:
                continue
            if self._load_ref(ref) and node_sid in self._nodes:
                return True
        return node_sid in self._nodes

    # ------------------------------------------------------------------ #
    # bit tests (the query-time interface)
    # ------------------------------------------------------------------ #

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        """Whether the entry at 1-based ``position`` of the node at
        ``parent_path`` contains data of this cell.

        This is the single-bit check Algorithm 1's ``boolean_prune`` issues
        for each candidate entry: the parent node was necessarily checked
        before (the search descends), so one bit suffices.
        """
        from repro.core.sid import sid_of_path

        parent_sid = sid_of_path(parent_path, self.fanout)
        if not self._ensure_node(parent_path, parent_sid):
            return False
        bits = self._nodes.get(parent_sid)
        return bits is not None and bits.get(position - 1)

    def check_path(self, path: Sequence[int]) -> bool:
        """Whether the entry addressed by a full path contains cell data."""
        if not path:
            return bool(self._nodes.get(0) and self._nodes[0].any())
        return self.check_entry(tuple(path[:-1]), path[-1])


class AssembledReader:
    """Conjunction of several cell readers (lazy AND).

    Exact at leaf slots; conservative at internal nodes (see
    :mod:`repro.core.ops`).  ``load_seconds``/``loads`` aggregate over the
    underlying readers for the Figure 15 breakdown.
    """

    def __init__(self, readers: Sequence[CellSignatureReader]) -> None:
        if not readers:
            raise ValueError("AssembledReader needs at least one reader")
        self.readers = list(readers)

    @property
    def load_seconds(self) -> float:
        return sum(reader.load_seconds for reader in self.readers)

    @property
    def loads(self) -> int:
        return sum(reader.loads for reader in self.readers)

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool:
        return all(
            reader.check_entry(parent_path, position) for reader in self.readers
        )

    def check_path(self, path: Sequence[int]) -> bool:
        return all(reader.check_path(path) for reader in self.readers)
