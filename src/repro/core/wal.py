"""The maintenance write-ahead log: checksummed, segmented, archived.

Incremental maintenance (paper Section IV-B.3) mutates three structures —
the base relation's heap, the R-tree and the per-cell signatures — and
PR 1's read-path contract (signatures are stale-but-rebuildable, never
silently wrong) only holds if a crash between those mutations is
recoverable.  This module journals every maintenance operation so that
:meth:`repro.system.PCubeSystem.recover` can finish (or deterministically
redo) whatever a crash interrupted, and retains the committed history as a
segmented archive that checkpoint-based point-in-time restore
(:mod:`repro.core.checkpoint`) replays.

Record protocol — one disk page per record, tag ``wal:rec:s<segment>``:

1. ``intent`` — written by :meth:`MaintenanceWAL.begin` *before any other
   page is touched*.  Carries the operation name and everything needed to
   re-apply its relation-level effect: the rows (and the pre-operation
   relation length, so replay knows which appends already happened) for
   inserts, the tid for deletes, the tid and new preference row for
   updates.
2. ``changes`` — written after the relation and R-tree mutations complete,
   holding the merged :class:`~repro.rtree.rtree.PathChange` records.  Its
   presence is the recovery watershed: counted-signature patching is pure
   memory, so once this record is durable only the per-cell store phase can
   be incomplete.
3. ``cell`` — one per dirty cell, written after that cell's atomic
   signature rewrite commits.  Replay skips cells already marked.
4. ``commit`` — the operation's happy ending.  A single record append is
   atomic at page granularity, so the operation is observably either
   committed or not; its records are *retained* (they are the archive
   point-in-time restore consumes) instead of freed.

Every record carries a CRC32 over its canonicalised content (``"crc"``).
Page checksums fingerprint a dict payload by type only (structural payloads
are legitimately mutated in place elsewhere), so without the per-record CRC
a torn or bit-flipped record tail would be indistinguishable from a valid
record.  Replay classifies damage by LSN position:

* **tail** damage (every unreadable record sits above the highest valid
  LSN) is the signature of a torn final write — :meth:`repair_tail`
  truncates it and recovery proceeds as if the crash preceded the torn
  records;
* **interior** damage (an unreadable record below valid ones, or a gap in
  the LSN sequence) cannot be explained by a crash and is fail-stop:
  :class:`WalCorruptionError` with ``truncatable=False``.

Segmentation: records append to the *active* segment; when a commit pushes
the segment's logical size past :attr:`MaintenanceWAL.segment_bytes`, the
segment is *sealed* — a small directory page (tag ``wal:seal``) records its
``[first_lsn, last_lsn]`` range — and a fresh segment becomes active.
Rotation happens only at commit boundaries, so one operation's records
never span segments; restore can therefore skip a whole sealed segment
(reading only its one seal page) when its range falls at or below a
checkpoint watermark.  :meth:`prune_upto` drops sealed segments a
checkpoint has made redundant.

Exactly one operation may be in flight; :meth:`MaintenanceWAL.begin` raises
while a pending operation exists, forcing recovery before new work — the
same discipline a single-writer maintenance thread would enforce.

The *disk pages* are the WAL's source of truth: :meth:`MaintenanceWAL
.pending` reconstructs the in-flight operation from whatever record pages
survived, in LSN order, precisely because a crash leaves the in-memory
bookkeeping untrustworthy.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.query.stats import MaintenanceStats
from repro.rtree.rtree import PathChange
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import CorruptPageError

#: Nominal on-disk sizes (the simulator accounts space, not bytes-exact
#: encodings): a fixed record header plus per-item costs.
_RECORD_HEADER_BYTES = 24
_PATH_COMPONENT_BYTES = 2
_VALUE_BYTES = 8

#: Default segment-rotation threshold: logical record bytes per segment.
DEFAULT_SEGMENT_BYTES = 4096


class WalCorruptionError(RuntimeError):
    """The WAL holds records that fail their checksums.

    Attributes:
        truncatable: ``True`` when every damaged record sits strictly above
            the highest valid LSN — the torn-tail case
            :meth:`MaintenanceWAL.repair_tail` truncates.  ``False`` means
            interior corruption: valid records exist above the damage, so
            truncating would silently drop committed history — fail-stop.
        pages: The damaged page ids.
    """

    def __init__(
        self, message: str, pages: Sequence[int] = (), truncatable: bool = False
    ) -> None:
        super().__init__(message)
        self.pages = list(pages)
        self.truncatable = truncatable


def _canonical(value: Any) -> str:
    """A stable text form of a record's content (dict order independent,
    list/tuple agnostic — records round-trip as live Python objects)."""
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return (
            "{"
            + ",".join(f"{k!r}:{_canonical(v)}" for k, v in items)
            + "}"
        )
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    return repr(value)


def record_crc(record: dict[str, Any]) -> int:
    """CRC32 over every field of a record except ``"crc"`` itself."""
    content = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(_canonical(content).encode())


def _verified_payload(page) -> dict[str, Any] | None:
    """The record dict a page holds, or ``None`` if it fails verification.

    Checks both the page checksum (catches a payload replaced wholesale)
    and the per-record CRC (catches content tampered in place, which the
    type-based page fingerprint of a dict payload cannot see).
    """
    try:
        page.verify()
    except CorruptPageError:
        return None
    record = page.payload
    if not isinstance(record, dict):
        return None
    if not isinstance(record.get("lsn"), int):
        return None
    if record.get("crc") != record_crc(record):
        return None
    return record


def _encode_change(change: PathChange) -> tuple:
    return (change.tid, change.old_path, change.new_path)


def _decode_change(raw: Sequence) -> PathChange:
    tid, old_path, new_path = raw
    return PathChange(
        tid,
        None if old_path is None else tuple(old_path),
        None if new_path is None else tuple(new_path),
    )


@dataclass
class PendingOp:
    """One interrupted maintenance operation, reconstructed from disk.

    ``changes is None`` means the crash predates the ``changes`` record —
    the relation / R-tree phase may be mid-mutation.  ``stored_cells``
    holds the cell ids whose signature rewrite provably committed.
    """

    op_id: int
    op: str
    payload: dict[str, Any]
    changes: list[PathChange] | None = None
    stored_cells: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class CommittedOp:
    """One committed operation from the archive, as restore replays it."""

    op_id: int
    op: str
    payload: dict[str, Any]
    commit_lsn: int


@dataclass
class SegmentInfo:
    """Catalog entry for one WAL segment (live or sealed)."""

    segment: int
    records: int
    first_lsn: int
    last_lsn: int
    bytes: int
    sealed: bool


class MaintenanceWAL:
    """Intent journal for the incremental-maintenance drivers.

    Args:
        disk: The system disk (records live beside the structures they
            protect, under their own tag).
        tag: Page-tag prefix; records use ``f"{tag}:rec:s<segment>"`` and
            segment seals ``f"{tag}:seal"``.
        stats: Shared maintenance tallies (record/commit counts).
        segment_bytes: Rotation threshold — once a commit pushes the
            active segment's logical record bytes to or past this, the
            segment is sealed and a new one opened.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        tag: str = "wal",
        stats: MaintenanceStats | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.disk = disk
        self.tag = tag
        self.stats = stats if stats is not None else MaintenanceStats()
        self.segment_bytes = segment_bytes
        self._next_lsn = 0
        self._next_op_id = 0
        self._active_segment = 0
        self._active_bytes = 0
        #: Wall-clock (monotonic) moment the in-flight op journalled its
        #: intent; ``None`` when no op is open.  The serving supervisor
        #: uses it to flag stalled maintenance.
        self.pending_since: float | None = None
        #: The op currently open (begin succeeded, commit not yet) — the
        #: in-memory fast path behind :meth:`begin`'s one-in-flight rule.
        self._open_op: int | None = None
        self.last_commit_lsn: int | None = None
        self._reopen()

    # ------------------------------------------------------------------ #
    # the record pages
    # ------------------------------------------------------------------ #

    @property
    def record_tag(self) -> str:
        """Prefix every record page's tag starts with."""
        return f"{self.tag}:rec"

    @property
    def seal_tag(self) -> str:
        return f"{self.tag}:seal"

    @property
    def next_lsn(self) -> int:
        """The LSN the next record will take (the checkpoint watermark)."""
        return self._next_lsn

    def _segment_tag(self, segment: int) -> str:
        return f"{self.record_tag}:s{segment}"

    @staticmethod
    def _segment_of_tag(tag: str) -> int | None:
        _, _, suffix = tag.rpartition(":s")
        try:
            return int(suffix)
        except ValueError:
            return None

    def _scan(self) -> tuple[list[dict[str, Any]], list[int]]:
        """(valid records in LSN order, damaged record page ids)."""
        valid: list[dict[str, Any]] = []
        damaged: list[int] = []
        for page in self.disk.pages(self.record_tag):
            record = _verified_payload(page)
            if record is None:
                damaged.append(page.page_id)
            else:
                valid.append(record)
        valid.sort(key=lambda record: record["lsn"])
        return valid, damaged

    def _seal_pages(
        self,
    ) -> tuple[dict[int, dict[str, Any]], list[tuple[int, int | None]]]:
        """(segment -> valid seal record, damaged ``(page_id, claimed)``).

        A damaged seal's ``segment`` field is reported when still readable:
        it cannot be *trusted* (restore never skips on it) but it is
        evidence the segment was once sealed, which reopen uses to keep
        appending past it rather than into it.
        """
        seals: dict[int, dict[str, Any]] = {}
        damaged: list[tuple[int, int | None]] = []
        for page in self.disk.pages(self.seal_tag):
            record: dict[str, Any] | None
            try:
                page.verify()
                record = page.payload
            except CorruptPageError:
                record = page.payload if isinstance(page.payload, dict) else None
            if (
                not isinstance(record, dict)
                or record.get("crc") != record_crc(record)
            ):
                claimed = (
                    record.get("segment") if isinstance(record, dict) else None
                )
                damaged.append(
                    (page.page_id, claimed if isinstance(claimed, int) else None)
                )
                continue
            seals[record["segment"]] = record
        return seals, damaged

    def _reopen(self) -> None:
        """Rebuild counters and segment state from surviving pages.

        "Reopen" semantics: a WAL constructed over a disk with live records
        must not reuse their LSNs or op ids, must resume the correct active
        segment, and must notice an uncommitted operation (which blocks new
        maintenance until :meth:`repro.system.PCubeSystem.recover` runs).
        Damaged records do not fail construction — they block :meth:`begin`
        until :meth:`repair_tail` classifies and clears them.
        """
        records, damaged = self._scan()
        seals, damaged_seals = self._seal_pages()
        self._has_damage = bool(damaged or damaged_seals)
        segments: set[int] = set(seals)
        committed: set[int] = set()
        intents: set[int] = set()
        for record in records:
            self._next_lsn = max(self._next_lsn, record["lsn"] + 1)
            segments.add(record["segment"])
            op_id = record.get("op_id")
            if op_id is not None:
                self._next_op_id = max(self._next_op_id, op_id + 1)
            if record["kind"] == "commit":
                committed.add(op_id)
                self.last_commit_lsn = max(
                    self.last_commit_lsn or -1, record["lsn"]
                )
            elif record["kind"] == "intent":
                intents.add(op_id)
        open_ops = intents - committed
        if open_ops:
            # begin() forbids more than one; tolerate what the disk says.
            self._open_op = max(open_ops)
            self.pending_since = time.monotonic()
        sealed_top = max(
            [*seals, *(claim for _, claim in damaged_seals if claim is not None)],
            default=-1,
        )
        self._active_segment = max(max(segments, default=0), sealed_top + 1)
        self._active_bytes = sum(
            page.size - _RECORD_HEADER_BYTES
            for page in self.disk.pages(self._segment_tag(self._active_segment))
        )

    def _append(self, record: dict[str, Any], size: int) -> int:
        record["lsn"] = self._next_lsn
        record["segment"] = self._active_segment
        record["crc"] = record_crc(record)
        self._next_lsn += 1
        self.disk.allocate(
            self._segment_tag(record["segment"]),
            size=_RECORD_HEADER_BYTES + size,
            payload=record,
        )
        self._active_bytes += size
        self.stats.wal_records += 1
        return record["lsn"]

    # ------------------------------------------------------------------ #
    # the journalling protocol
    # ------------------------------------------------------------------ #

    def begin(self, op: str, **payload: Any) -> int:
        """Journal an operation's intent; returns its op id.

        Raises:
            RuntimeError: while a previous operation's records survive, or
                while damaged records await :meth:`repair_tail` — recovery
                must run before new maintenance starts.
        """
        if self._open_op is not None or self._has_damage:
            raise RuntimeError(
                "the WAL holds an interrupted maintenance operation; "
                "run recover() before starting new maintenance"
            )
        op_id = self._next_op_id
        self._next_op_id += 1
        size = _VALUE_BYTES * (
            1 + sum(len(str(value)) for value in payload.values())
        )
        self._append(
            {"op_id": op_id, "kind": "intent", "op": op, "payload": payload},
            size=size,
        )
        # Only after the intent is durable: a crash inside the append means
        # the operation never happened and nothing is pending.
        self._open_op = op_id
        self.pending_since = time.monotonic()
        return op_id

    def log_changes(self, op_id: int, changes: Sequence[PathChange]) -> None:
        """Journal the merged path changes (relation + R-tree are done)."""
        encoded = [_encode_change(change) for change in changes]
        size = sum(
            _VALUE_BYTES
            + _PATH_COMPONENT_BYTES
            * (len(old or ()) + len(new or ()))
            for _, old, new in encoded
        )
        self._append(
            {"op_id": op_id, "kind": "changes", "changes": encoded}, size=size
        )

    def log_cell_stored(self, op_id: int, cell_id: str) -> None:
        """Journal one cell's completed signature rewrite."""
        self._append(
            {"op_id": op_id, "kind": "cell", "cell_id": cell_id},
            size=len(cell_id),
        )

    def commit(self, op_id: int) -> None:
        """Append the commit record — the atomic happy ending.

        A single page allocation either lands or it does not; once it has,
        the operation is durably committed and its records join the
        archive.  If the commit pushed the active segment past
        :attr:`segment_bytes`, the segment is sealed and rotated (a crash
        between commit and seal merely defers the seal to the next commit).
        """
        self.last_commit_lsn = self._append(
            {"op_id": op_id, "kind": "commit"}, size=0
        )
        self.stats.wal_commits += 1
        if self._open_op == op_id:
            self._open_op = None
            self.pending_since = None
        if self._active_bytes >= self.segment_bytes:
            self._seal_active()

    def _seal_active(self) -> None:
        """Seal the active segment and open the next one.

        The seal page is the segment's directory entry: restore reads it
        (one page) to learn the segment's LSN range and skip the whole
        segment when it falls below a checkpoint watermark.
        """
        segment = self._active_segment
        lsns = [
            record["lsn"]
            for record in (
                _verified_payload(page)
                for page in self.disk.pages(self._segment_tag(segment))
            )
            if record is not None
        ]
        if not lsns:  # pragma: no cover - commit just wrote a record
            return
        seal = {
            "kind": "seal",
            "segment": segment,
            "first_lsn": min(lsns),
            "last_lsn": max(lsns),
            "records": len(lsns),
        }
        seal["crc"] = record_crc(seal)
        self.disk.allocate(
            self.seal_tag, size=_RECORD_HEADER_BYTES, payload=seal
        )
        self._active_segment = segment + 1
        self._active_bytes = 0
        self.stats.wal_segments_sealed += 1

    # ------------------------------------------------------------------ #
    # recovery-side view
    # ------------------------------------------------------------------ #

    def repair_tail(self) -> int:
        """Truncate torn/corrupt tail records; returns pages freed.

        Damage is *tail* exactly when the surviving valid records form a
        contiguous LSN run and every unreadable record page can only sit
        above it — the footprint of a write torn by the crash.  Valid
        records above an unreadable one (an LSN gap, or a damaged record
        whose LSN is still readable below the maximum) mean interior
        corruption, which truncation cannot explain away; that is
        fail-stop.

        A damaged *seal* page is rebuilt from its segment's surviving
        records (the seal is derived metadata, never the only copy).
        """
        records, damaged = self._scan()
        seals, damaged_seals = self._seal_pages()
        lsns = [record["lsn"] for record in records]
        if lsns and lsns[-1] - lsns[0] + 1 != len(lsns):
            raise WalCorruptionError(
                "WAL interior corruption: the surviving records leave gaps "
                f"in the LSN sequence ({len(lsns)} records spanning "
                f"[{lsns[0]}, {lsns[-1]}])",
                pages=damaged,
                truncatable=False,
            )
        max_valid = lsns[-1] if lsns else -1
        for page_id in damaged:
            payload = self.disk.peek(page_id).payload
            claimed = (
                payload.get("lsn") if isinstance(payload, dict) else None
            )
            if isinstance(claimed, int) and claimed < max_valid:
                raise WalCorruptionError(
                    f"WAL interior corruption: record page {page_id} "
                    f"(lsn {claimed}) is damaged but valid records exist "
                    f"above it",
                    pages=[page_id],
                    truncatable=False,
                )
        freed = 0
        for page_id in damaged:
            self.disk.free(page_id)
            freed += 1
        for page_id, _claim in damaged_seals:
            self.disk.free(page_id)
            freed += 1
        if damaged_seals:
            # Re-derive the lost seals for segments that still hold records
            # below the active segment.
            by_segment: dict[int, list[int]] = {}
            for record in records:
                by_segment.setdefault(record["segment"], []).append(
                    record["lsn"]
                )
            for segment, seg_lsns in by_segment.items():
                if segment >= self._active_segment or segment in seals:
                    continue
                seal = {
                    "kind": "seal",
                    "segment": segment,
                    "first_lsn": min(seg_lsns),
                    "last_lsn": max(seg_lsns),
                    "records": len(seg_lsns),
                }
                seal["crc"] = record_crc(seal)
                self.disk.allocate(
                    self.seal_tag, size=_RECORD_HEADER_BYTES, payload=seal
                )
        self._has_damage = False
        if freed:
            self.stats.wal_tail_truncated += freed
            # Truncation may have removed the only trace of the open op
            # (or its later records); resync the in-memory view from disk.
            self._next_lsn = 0
            self._next_op_id = 0
            self._open_op = None
            self.pending_since = None
            self.last_commit_lsn = None
            self._active_segment = 0
            self._active_bytes = 0
            self._reopen()
        return freed

    def pending(self) -> PendingOp | None:
        """The interrupted operation the disk records describe, if any.

        Raises :class:`WalCorruptionError` while damaged records survive —
        :meth:`repair_tail` must classify them first (recovery does).
        """
        records, damaged = self._scan()
        if damaged:
            raise WalCorruptionError(
                f"{len(damaged)} WAL record page(s) fail their checksums; "
                "run repair_tail() (recover() does) before reading the WAL",
                pages=damaged,
                truncatable=True,
            )
        ops: dict[int, PendingOp] = {}
        committed: set[int] = set()
        for record in records:
            op_id = record["op_id"]
            if record["kind"] == "intent":
                ops[op_id] = PendingOp(
                    op_id=op_id,
                    op=record["op"],
                    payload=dict(record["payload"]),
                )
            elif record["kind"] == "commit":
                committed.add(op_id)
            elif record["kind"] == "changes":
                ops[op_id].changes = [
                    _decode_change(raw) for raw in record["changes"]
                ]
            elif record["kind"] == "cell":
                ops[op_id].stored_cells.append(record["cell_id"])
        open_ops = [
            pending for op_id, pending in ops.items() if op_id not in committed
        ]
        if not open_ops:
            return None
        if len(open_ops) != 1:  # pragma: no cover - begin() forbids this
            raise RuntimeError(
                f"WAL holds {len(open_ops)} uncommitted operations; expected 1"
            )
        return open_ops[0]

    def is_empty(self) -> bool:
        """No uncommitted operation (committed archive records may remain)."""
        return self.pending() is None

    # ------------------------------------------------------------------ #
    # the archive
    # ------------------------------------------------------------------ #

    def segments(self) -> list[SegmentInfo]:
        """Catalog of surviving segments, oldest first (tools/CLI view)."""
        seals, _ = self._seal_pages()
        by_segment: dict[int, list[dict[str, Any]]] = {}
        sizes: dict[int, int] = {}
        for page in self.disk.pages(self.record_tag):
            record = _verified_payload(page)
            if record is None:
                continue
            by_segment.setdefault(record["segment"], []).append(record)
            sizes[record["segment"]] = sizes.get(record["segment"], 0) + page.size
        catalog = []
        for segment in sorted(set(by_segment) | set(seals)):
            records = by_segment.get(segment, [])
            lsns = [record["lsn"] for record in records]
            catalog.append(
                SegmentInfo(
                    segment=segment,
                    records=len(records),
                    first_lsn=min(lsns, default=-1),
                    last_lsn=max(lsns, default=-1),
                    bytes=sizes.get(segment, 0),
                    sealed=segment in seals,
                )
            )
        return catalog

    def prune_upto(self, lsn: int) -> int:
        """Drop sealed segments whose entire range is ``<= lsn``.

        Called after a checkpoint makes the history up to its watermark
        redundant.  Only whole sealed segments go (the active segment and
        any segment straddling ``lsn`` stay), preserving the contiguity of
        the surviving LSN run that :meth:`repair_tail` relies on — pruning
        always removes a prefix of the archive.
        """
        seals, _ = self._seal_pages()
        freed = 0
        # Oldest-first, stopping at the first segment that must stay: a
        # later prunable segment behind a kept one would break contiguity.
        for segment in sorted(seals):
            if seals[segment]["last_lsn"] > lsn:
                break
            for page in list(self.disk.pages(self._segment_tag(segment))):
                self.disk.free(page.page_id)
                freed += 1
            for page in list(self.disk.pages(self.seal_tag)):
                if page.payload.get("segment") == segment:
                    self.disk.free(page.page_id)
            self.stats.wal_segments_pruned += 1
        return freed

    @classmethod
    def read_committed(
        cls,
        disk: SimulatedDisk,
        after_lsn: int = -1,
        upto_lsn: int | None = None,
        tag: str = "wal",
        category: str = "wal",
    ) -> tuple[list[CommittedOp], dict[str, int]]:
        """Committed operations with ``after_lsn < commit_lsn <= upto_lsn``.

        The restore-side read path: seal pages are read first (one page per
        sealed segment) and any sealed segment whose ``last_lsn`` falls at
        or below ``after_lsn`` is skipped *without reading its records* —
        this is what keeps checkpointed recovery flat in total WAL length.
        All reads are accounted under ``category`` so recovery I/O is
        measurable.

        Damaged records that belong to no committed operation are ignored
        (a torn tail); a committed operation whose intent is unreadable is
        interior corruption and raises :class:`WalCorruptionError`.
        """
        metrics = {
            "seal_reads": 0,
            "record_reads": 0,
            "segments_skipped": 0,
            "segments_scanned": 0,
            "damaged_ignored": 0,
        }
        seal_ranges: dict[int, int] = {}
        for page in list(disk.pages(f"{tag}:seal")):
            try:
                seal = disk.read(page.page_id, category)
                metrics["seal_reads"] += 1
            except CorruptPageError:
                metrics["seal_reads"] += 1
                continue
            if isinstance(seal, dict) and seal.get("crc") == record_crc(seal):
                seal_ranges[seal["segment"]] = seal["last_lsn"]
        by_segment: dict[int, list[int]] = {}
        for page in list(disk.pages(f"{tag}:rec")):
            segment = cls._segment_of_tag(page.tag)
            if segment is not None:
                by_segment.setdefault(segment, []).append(page.page_id)
        records: list[dict[str, Any]] = []
        damaged = 0
        for segment in sorted(by_segment):
            last = seal_ranges.get(segment)
            if last is not None and last <= after_lsn:
                metrics["segments_skipped"] += 1
                continue
            metrics["segments_scanned"] += 1
            for page_id in by_segment[segment]:
                try:
                    disk.read(page_id, category)
                except CorruptPageError:
                    pass  # classified below via the commit/intent pairing
                metrics["record_reads"] += 1
                record = _verified_payload(disk.peek(page_id))
                if record is None:
                    damaged += 1
                else:
                    records.append(record)
        records.sort(key=lambda record: record["lsn"])
        intents: dict[int, dict[str, Any]] = {}
        commits: dict[int, int] = {}
        for record in records:
            if record["kind"] == "intent":
                intents[record["op_id"]] = record
            elif record["kind"] == "commit":
                commits[record["op_id"]] = record["lsn"]
        ops: list[CommittedOp] = []
        for op_id, commit_lsn in sorted(commits.items(), key=lambda kv: kv[1]):
            if commit_lsn <= after_lsn:
                continue
            if upto_lsn is not None and commit_lsn > upto_lsn:
                continue
            intent = intents.get(op_id)
            if intent is None:
                raise WalCorruptionError(
                    f"WAL interior corruption: operation {op_id} committed "
                    f"at lsn {commit_lsn} but its intent record is missing "
                    f"or unreadable",
                    truncatable=False,
                )
            ops.append(
                CommittedOp(
                    op_id=op_id,
                    op=intent["op"],
                    payload=dict(intent["payload"]),
                    commit_lsn=commit_lsn,
                )
            )
        metrics["damaged_ignored"] = damaged
        return ops, metrics


def apply_committed_op(relation, op: CommittedOp) -> None:
    """Re-apply one archived operation's relation-level effect (restore).

    Mirrors the intent payloads :meth:`MaintenanceWAL.begin` journals; the
    index structures are rebuilt deterministically afterwards, so only the
    base-relation effect needs replaying.
    """
    payload = op.payload
    if op.op in ("insert", "insert_batch"):
        if payload["base"] != len(relation):
            raise WalCorruptionError(
                f"archive replay out of order: op {op.op_id} expects "
                f"relation length {payload['base']}, found {len(relation)}",
                truncatable=False,
            )
        for bool_row, pref_row in payload["rows"]:
            relation.append(tuple(bool_row), tuple(pref_row))
    elif op.op == "delete":
        relation.tombstone(payload["tid"])
    elif op.op == "update":
        relation.overwrite_pref(payload["tid"], tuple(payload["pref_row"]))
    else:  # pragma: no cover - begin() only journals the four ops
        raise WalCorruptionError(
            f"unknown archived op {op.op!r}", truncatable=False
        )


__all__ = [
    "CommittedOp",
    "MaintenanceWAL",
    "PendingOp",
    "SegmentInfo",
    "WalCorruptionError",
    "apply_committed_op",
    "record_crc",
]
