"""The maintenance write-ahead log.

Incremental maintenance (paper Section IV-B.3) mutates three structures —
the base relation's heap, the R-tree and the per-cell signatures — and
PR 1's read-path contract (signatures are stale-but-rebuildable, never
silently wrong) only holds if a crash between those mutations is
recoverable.  This module journals every maintenance operation so that
:meth:`repro.system.PCubeSystem.recover` can finish (or deterministically
redo) whatever a crash interrupted.

Record protocol — one disk page per record, tag ``wal:rec``:

1. ``intent`` — written by :meth:`MaintenanceWAL.begin` *before any other
   page is touched*.  Carries the operation name and everything needed to
   re-apply its relation-level effect: the rows (and the pre-operation
   relation length, so replay knows which appends already happened) for
   inserts, the tid for deletes, the tid and new preference row for
   updates.
2. ``changes`` — written after the relation and R-tree mutations complete,
   holding the merged :class:`~repro.rtree.rtree.PathChange` records.  Its
   presence is the recovery watershed: counted-signature patching is pure
   memory, so once this record is durable only the per-cell store phase can
   be incomplete.
3. ``cell`` — one per dirty cell, written after that cell's atomic
   signature rewrite commits.  Replay skips cells already marked.
4. Commit is *truncation*: every record page of the operation is freed.
   ``free`` is not a faultable operation (a dead process cannot half-forget
   a page it never needed again), so commit is atomic and an empty WAL
   means the last operation fully completed.

Exactly one operation may be in flight; :meth:`MaintenanceWAL.begin` raises
while a pending operation exists, forcing recovery before new work — the
same discipline a single-writer maintenance thread would enforce.

The *disk pages* are the WAL's source of truth: :meth:`MaintenanceWAL
.pending` reconstructs the in-flight operation from whatever record pages
survived, in LSN order, precisely because a crash leaves the in-memory
bookkeeping untrustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.query.stats import MaintenanceStats
from repro.rtree.rtree import PathChange
from repro.storage.disk import SimulatedDisk

#: Nominal on-disk sizes (the simulator accounts space, not bytes-exact
#: encodings): a fixed record header plus per-item costs.
_RECORD_HEADER_BYTES = 24
_PATH_COMPONENT_BYTES = 2
_VALUE_BYTES = 8


def _encode_change(change: PathChange) -> tuple:
    return (change.tid, change.old_path, change.new_path)


def _decode_change(raw: Sequence) -> PathChange:
    tid, old_path, new_path = raw
    return PathChange(
        tid,
        None if old_path is None else tuple(old_path),
        None if new_path is None else tuple(new_path),
    )


@dataclass
class PendingOp:
    """One interrupted maintenance operation, reconstructed from disk.

    ``changes is None`` means the crash predates the ``changes`` record —
    the relation / R-tree phase may be mid-mutation.  ``stored_cells``
    holds the cell ids whose signature rewrite provably committed.
    """

    op_id: int
    op: str
    payload: dict[str, Any]
    changes: list[PathChange] | None = None
    stored_cells: list[str] = field(default_factory=list)


class MaintenanceWAL:
    """Intent journal for the incremental-maintenance drivers.

    Args:
        disk: The system disk (records live beside the structures they
            protect, under their own tag).
        tag: Page-tag prefix; records use ``f"{tag}:rec"``.
        stats: Shared maintenance tallies (record/commit counts).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        tag: str = "wal",
        stats: MaintenanceStats | None = None,
    ) -> None:
        self.disk = disk
        self.tag = tag
        self.stats = stats if stats is not None else MaintenanceStats()
        self._next_lsn = 0
        self._next_op_id = 0
        # Rebuild the counters from surviving records ("reopen" semantics:
        # a WAL constructed over a disk with live records must not reuse
        # their ids).
        for record in self._records():
            self._next_lsn = max(self._next_lsn, record["lsn"] + 1)
            self._next_op_id = max(self._next_op_id, record["op_id"] + 1)

    # ------------------------------------------------------------------ #
    # the record pages
    # ------------------------------------------------------------------ #

    @property
    def record_tag(self) -> str:
        return f"{self.tag}:rec"

    def _records(self) -> list[dict[str, Any]]:
        """Every surviving record, in LSN order, straight from the disk."""
        return sorted(
            (page.payload for page in self.disk.pages(self.record_tag)),
            key=lambda record: record["lsn"],
        )

    def _record_pages(self, op_id: int) -> list[int]:
        return [
            page.page_id
            for page in self.disk.pages(self.record_tag)
            if page.payload["op_id"] == op_id
        ]

    def _append(self, record: dict[str, Any], size: int) -> None:
        record["lsn"] = self._next_lsn
        self._next_lsn += 1
        self.disk.allocate(
            self.record_tag, size=_RECORD_HEADER_BYTES + size, payload=record
        )
        self.stats.wal_records += 1

    # ------------------------------------------------------------------ #
    # the journalling protocol
    # ------------------------------------------------------------------ #

    def begin(self, op: str, **payload: Any) -> int:
        """Journal an operation's intent; returns its op id.

        Raises:
            RuntimeError: while a previous operation's records survive —
                recovery must run before new maintenance starts.
        """
        if self.pending() is not None:
            raise RuntimeError(
                "the WAL holds an interrupted maintenance operation; "
                "run recover() before starting new maintenance"
            )
        op_id = self._next_op_id
        self._next_op_id += 1
        size = _VALUE_BYTES * (
            1 + sum(len(str(value)) for value in payload.values())
        )
        self._append(
            {"op_id": op_id, "kind": "intent", "op": op, "payload": payload},
            size=size,
        )
        return op_id

    def log_changes(self, op_id: int, changes: Sequence[PathChange]) -> None:
        """Journal the merged path changes (relation + R-tree are done)."""
        encoded = [_encode_change(change) for change in changes]
        size = sum(
            _VALUE_BYTES
            + _PATH_COMPONENT_BYTES
            * (len(old or ()) + len(new or ()))
            for _, old, new in encoded
        )
        self._append(
            {"op_id": op_id, "kind": "changes", "changes": encoded}, size=size
        )

    def log_cell_stored(self, op_id: int, cell_id: str) -> None:
        """Journal one cell's completed signature rewrite."""
        self._append(
            {"op_id": op_id, "kind": "cell", "cell_id": cell_id},
            size=len(cell_id),
        )

    def commit(self, op_id: int) -> None:
        """Truncate the operation's records — the atomic happy ending.

        Page frees cannot fault or crash (a dying process cannot half-lose
        interest in a page), so after the first free returns the operation
        is observably either fully present or fully gone per page, and the
        loop completes unconditionally.
        """
        for page_id in self._record_pages(op_id):
            self.disk.free(page_id)
        self.stats.wal_commits += 1

    # ------------------------------------------------------------------ #
    # recovery-side view
    # ------------------------------------------------------------------ #

    def pending(self) -> PendingOp | None:
        """The interrupted operation the disk records describe, if any."""
        records = self._records()
        if not records:
            return None
        ops: dict[int, PendingOp] = {}
        for record in records:
            op_id = record["op_id"]
            if record["kind"] == "intent":
                ops[op_id] = PendingOp(
                    op_id=op_id,
                    op=record["op"],
                    payload=dict(record["payload"]),
                )
            elif record["kind"] == "changes":
                ops[op_id].changes = [
                    _decode_change(raw) for raw in record["changes"]
                ]
            elif record["kind"] == "cell":
                ops[op_id].stored_cells.append(record["cell_id"])
        if len(ops) != 1:  # pragma: no cover - begin() forbids this
            raise RuntimeError(
                f"WAL holds records of {len(ops)} operations; expected 1"
            )
        return next(iter(ops.values()))

    def is_empty(self) -> bool:
        return self.disk.page_count(self.record_tag) == 0


__all__ = ["MaintenanceWAL", "PendingOp"]
