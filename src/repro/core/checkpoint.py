"""Online fuzzy checkpoints and point-in-time restore.

Without checkpoints, restoring a P-Cube from its disk means replaying the
*entire* committed WAL archive — recovery time grows linearly with history.
A checkpoint bounds that: it captures the base relation (the system's
ground truth — every index structure is a deterministic function of it and
the build configuration) at a known LSN watermark, so restore loads the
newest checkpoint at or below the target and replays only the archive
segments past its watermark.  With the WAL's sealed-segment directory
(:meth:`~repro.core.wal.MaintenanceWAL.read_committed` skips a sealed
segment for the price of one seal-page read), restore I/O stays roughly
flat in total WAL length.

**Online and fuzzy, but consistent.**  :meth:`CheckpointManager.create`
runs under :meth:`EpochManager.exclusive ` — the writer lock *without* a
building epoch — so no maintenance operation can interleave with the copy,
while readers keep serving the published snapshot untouched (the
checkpointer is just another reader of quiescent structures).  Without
epochs the caller owns write quiescence, same as every other
single-threaded use of the system.  A pending WAL operation refuses the
checkpoint outright: a checkpoint must capture a committed state.

**Commit point.**  Row chunk pages are written first, the manifest page
last; a crash anywhere in between leaves orphan row pages and no manifest,
which :meth:`CheckpointManager.catalog` never lists and
:meth:`CheckpointManager.gc_orphans` reclaims.  Every page carries the
WAL's record CRC, so a torn manifest or chunk is detected at read time and
restore falls back to the next older checkpoint.

**Restore semantics.**  :func:`restore_system` rebuilds onto a *fresh*
disk: relation from the checkpoint image, committed operations with
``watermark ≤ commit_lsn ≤ to_lsn`` re-applied at the relation level, then
R-tree, signatures and B+-trees rebuilt deterministically via
:func:`~repro.system.build_system` with the manifest's recorded
configuration.  Operations uncommitted at the crash (or past ``--to-lsn``)
never happened — exactly the committed-prefix contract
:meth:`~repro.system.PCubeSystem.recover` provides in place.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.wal import (
    MaintenanceWAL,
    WalCorruptionError,
    apply_committed_op,
    record_crc,
)
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import CorruptPageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import PCubeSystem

#: Rows per checkpoint chunk page (the simulator accounts logical sizes,
#: so this mirrors the heap's own packing closely enough).
_ROW_HEADER_BYTES = 4
_VALUE_BYTES = 8
_MANIFEST_BYTES = 64


class CheckpointError(RuntimeError):
    """Checkpoint creation or restore could not proceed."""


@dataclass(frozen=True)
class CheckpointInfo:
    """One valid checkpoint, as the catalog lists it."""

    checkpoint_id: int
    epoch: int
    watermark_lsn: int
    n_rows: int
    n_tombstones: int
    row_pages: tuple[int, ...]
    manifest_page: int


@dataclass
class RestoreResult:
    """What :func:`restore_system` produced and what it cost."""

    system: "PCubeSystem"
    checkpoint: CheckpointInfo
    ops_replayed: int
    row_pages_read: int = 0
    fallbacks: int = 0
    wal_metrics: dict[str, int] = field(default_factory=dict)


class CheckpointManager:
    """Creates and catalogs checkpoints on a system's own disk.

    Args:
        system: The live system (its disk hosts the checkpoint pages).
        tag: Page-tag prefix; checkpoint ``N`` uses
            ``f"{tag}:c{N}:rows"`` chunks and an ``f"{tag}:c{N}:manifest"``
            commit page.
    """

    def __init__(self, system: "PCubeSystem", tag: str = "ckpt") -> None:
        self.system = system
        self.tag = tag

    # ------------------------------------------------------------------ #
    # create
    # ------------------------------------------------------------------ #

    def create(self) -> CheckpointInfo:
        """Capture a consistent checkpoint; returns its catalog entry.

        Raises:
            CheckpointError: while the WAL holds an uncommitted operation
                (recover first — a checkpoint captures committed state
                only) or when the system was built without a WAL.
        """
        system = self.system
        if system.wal is None:
            raise CheckpointError(
                "checkpoints need the WAL's LSN watermark; this system was "
                "built without one"
            )
        guard = (
            system.epochs.exclusive()
            if system.epochs is not None
            else nullcontext()
        )
        with guard:
            if system.wal.pending() is not None:
                raise CheckpointError(
                    "the WAL holds an uncommitted operation; run recover() "
                    "before checkpointing"
                )
            return self._create_locked()

    def _create_locked(self) -> CheckpointInfo:
        system = self.system
        relation = system.relation
        disk = system.disk
        checkpoint_id = self._next_id()
        watermark = system.wal.next_lsn
        epoch = (
            system.epochs.current_epoch if system.epochs is not None else 0
        )
        schema = relation.schema
        row_bytes = _ROW_HEADER_BYTES + _VALUE_BYTES * (
            schema.n_boolean + schema.n_preference
        )
        rows_per_chunk = max(1, disk.page_size // row_bytes)
        n_rows = len(relation)
        row_pages: list[int] = []
        for start in range(0, max(n_rows, 1), rows_per_chunk):
            tids = range(start, min(start + rows_per_chunk, n_rows))
            chunk = {
                "kind": "rows",
                "checkpoint_id": checkpoint_id,
                "start": start,
                "bools": [relation.bool_row(tid) for tid in tids],
                "prefs": [relation.pref_point(tid) for tid in tids],
            }
            chunk["crc"] = record_crc(chunk)
            row_pages.append(
                disk.allocate(
                    f"{self.tag}:c{checkpoint_id}:rows",
                    size=max(1, len(tids)) * row_bytes,
                    payload=chunk,
                )
            )
        tombstones = sorted(
            tid for tid in relation.tids() if not relation.is_live(tid)
        )
        manifest = {
            "kind": "manifest",
            "checkpoint_id": checkpoint_id,
            "epoch": epoch,
            "watermark_lsn": watermark,
            "n_rows": n_rows,
            "tombstones": tombstones,
            "row_pages": row_pages,
            "schema": {
                "boolean_dims": list(schema.boolean_dims),
                "preference_dims": list(schema.preference_dims),
            },
            "config": {
                "fanout": system.pcube.fanout,
                "codec": system.pcube.store.codec,
                "maintainable": system.pcube.maintainable,
                "with_indexes": bool(system.indexes),
            },
            # Informational: the derived-structure inventory at the
            # watermark (restore rebuilds these, it does not read them).
            "signature_cells": sorted(system.pcube.store.cells()),
            "rtree_size": len(system.rtree),
        }
        manifest["crc"] = record_crc(manifest)
        manifest_page = disk.allocate(
            f"{self.tag}:c{checkpoint_id}:manifest",
            size=_MANIFEST_BYTES + _VALUE_BYTES * len(tombstones),
            payload=manifest,
        )
        return CheckpointInfo(
            checkpoint_id=checkpoint_id,
            epoch=epoch,
            watermark_lsn=watermark,
            n_rows=n_rows,
            n_tombstones=len(tombstones),
            row_pages=tuple(row_pages),
            manifest_page=manifest_page,
        )

    def _next_id(self) -> int:
        top = -1
        for page in self.system.disk.pages(f"{self.tag}:c"):
            payload = page.payload
            if isinstance(payload, dict):
                cid = payload.get("checkpoint_id")
                if isinstance(cid, int):
                    top = max(top, cid)
        return top + 1

    # ------------------------------------------------------------------ #
    # catalog & housekeeping
    # ------------------------------------------------------------------ #

    def catalog(self) -> list[CheckpointInfo]:
        return catalog_checkpoints(self.system.disk, tag=self.tag)

    def gc_orphans(self) -> int:
        """Free row chunks of checkpoints that never got a valid manifest
        (the residue of a crash mid-create); returns pages freed."""
        disk = self.system.disk
        valid_ids = {info.checkpoint_id for info in self.catalog()}
        freed = 0
        for page in list(disk.pages(f"{self.tag}:c")):
            payload = page.payload
            if (
                isinstance(payload, dict)
                and payload.get("checkpoint_id") not in valid_ids
            ):
                disk.free(page.page_id)
                freed += 1
        return freed

    def prune(self, keep: int) -> int:
        """Drop all but the newest ``keep`` checkpoints; returns pages
        freed.  The newest checkpoints stay so restore retains fallbacks."""
        if keep < 1:
            raise ValueError("keep must be >= 1")
        disk = self.system.disk
        freed = 0
        for info in self.catalog()[:-keep]:
            for page_id in (*info.row_pages, info.manifest_page):
                if disk.exists(page_id):
                    disk.free(page_id)
                    freed += 1
        return freed


def catalog_checkpoints(
    disk: SimulatedDisk, tag: str = "ckpt"
) -> list[CheckpointInfo]:
    """Valid checkpoints on a disk, oldest first.

    Validity is the manifest's page checksum plus its record CRC; row
    chunks are *not* read here (restore verifies them and falls back on
    damage).  Works on a crashed disk image — no live system needed.
    """
    infos: list[CheckpointInfo] = []
    for page in disk.pages(f"{tag}:c"):
        if not page.tag.endswith(":manifest"):
            continue
        try:
            page.verify()
        except CorruptPageError:
            continue
        manifest = page.payload
        if (
            not isinstance(manifest, dict)
            or manifest.get("crc") != record_crc(manifest)
        ):
            continue
        infos.append(
            CheckpointInfo(
                checkpoint_id=manifest["checkpoint_id"],
                epoch=manifest["epoch"],
                watermark_lsn=manifest["watermark_lsn"],
                n_rows=manifest["n_rows"],
                n_tombstones=len(manifest["tombstones"]),
                row_pages=tuple(manifest["row_pages"]),
                manifest_page=page.page_id,
            )
        )
    infos.sort(key=lambda info: info.checkpoint_id)
    return infos


def restore_system(
    source_disk: SimulatedDisk,
    to_lsn: int | None = None,
    tag: str = "ckpt",
    wal_tag: str = "wal",
    category: str = "ckpt",
) -> RestoreResult:
    """Rebuild a system from a disk image's checkpoints + WAL archive.

    Picks the newest checkpoint whose watermark does not exceed ``to_lsn``
    (newest overall when ``to_lsn`` is ``None``), loads its relation image,
    replays the committed archive window behind it, and rebuilds every
    derived structure deterministically.  A checkpoint whose chunks fail
    verification is skipped in favour of the next older one
    (``fallbacks`` counts these).

    All checkpoint reads are accounted under ``category`` and the WAL
    replay under ``"wal"`` — the recovery-I/O numbers the durability
    benchmark gates.
    """
    candidates = [
        info
        for info in catalog_checkpoints(source_disk, tag=tag)
        if to_lsn is None or info.watermark_lsn - 1 <= to_lsn
    ]
    if not candidates:
        raise CheckpointError(
            "no usable checkpoint on this disk"
            + (f" at or below lsn {to_lsn}" if to_lsn is not None else "")
        )
    fallbacks = 0
    last_error: Exception | None = None
    for info in reversed(candidates):
        try:
            result = _restore_from(
                source_disk, info, to_lsn, wal_tag, category
            )
            result.fallbacks = fallbacks
            return result
        except (CorruptPageError, CheckpointError, WalCorruptionError) as exc:
            fallbacks += 1
            last_error = exc
    raise CheckpointError(
        f"every candidate checkpoint failed verification: {last_error!r}"
    )


def _restore_from(
    source_disk: SimulatedDisk,
    info: CheckpointInfo,
    to_lsn: int | None,
    wal_tag: str,
    category: str,
) -> RestoreResult:
    from repro.system import build_system

    manifest = source_disk.read(info.manifest_page, category)
    if (
        not isinstance(manifest, dict)
        or manifest.get("crc") != record_crc(manifest)
    ):
        raise CheckpointError(
            f"checkpoint {info.checkpoint_id}: manifest fails its CRC"
        )
    bools: list[tuple] = []
    prefs: list[tuple] = []
    pages_read = 0
    for page_id in manifest["row_pages"]:
        chunk = source_disk.read(page_id, category)
        pages_read += 1
        if (
            not isinstance(chunk, dict)
            or chunk.get("crc") != record_crc(chunk)
            or chunk.get("checkpoint_id") != info.checkpoint_id
            or chunk.get("start") != len(bools)
        ):
            raise CheckpointError(
                f"checkpoint {info.checkpoint_id}: row chunk page "
                f"{page_id} fails verification"
            )
        bools.extend(tuple(row) for row in chunk["bools"])
        prefs.extend(tuple(row) for row in chunk["prefs"])
    if len(bools) != manifest["n_rows"]:
        raise CheckpointError(
            f"checkpoint {info.checkpoint_id}: row image incomplete "
            f"({len(bools)} of {manifest['n_rows']} rows)"
        )
    schema = Schema(
        boolean_dims=tuple(manifest["schema"]["boolean_dims"]),
        preference_dims=tuple(manifest["schema"]["preference_dims"]),
    )
    relation = Relation(schema, bools, prefs, disk=SimulatedDisk())
    for tid in manifest["tombstones"]:
        relation.tombstone(tid)
    ops, wal_metrics = MaintenanceWAL.read_committed(
        source_disk,
        after_lsn=info.watermark_lsn - 1,
        upto_lsn=to_lsn,
        tag=wal_tag,
    )
    for op in ops:
        apply_committed_op(relation, op)
    config = manifest["config"]
    system = build_system(
        relation,
        fanout=config["fanout"],
        codec=config["codec"],
        maintainable=config["maintainable"],
        with_indexes=config["with_indexes"],
    )
    return RestoreResult(
        system=system,
        checkpoint=info,
        ops_replayed=len(ops),
        row_pages_read=pages_read,
        wal_metrics=wal_metrics,
    )


__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "RestoreResult",
    "catalog_checkpoints",
    "restore_system",
]
