"""Compression and decomposition into page-sized partial signatures.

Paper Section IV-B.1 ("Compressing and Decomposing Signature"):

* each node's bit array is compressed *individually* (adaptive codec), then
  the compressed nodes are assembled into binary strings;
* the signature tree is decomposed breadth-first: starting at the root,
  nodes are accumulated until the page budget ``P`` is reached — that's the
  first partial signature, referenced by the root's SID; the traversal then
  restarts from the root's first child (skipping already-coded nodes), then
  the following children, then the third level, and so on;
* every partial signature corresponds to a subtree and is referenced by the
  SID of that subtree's root.

Retrieval (Section IV-B.2): to find the partial that encodes a requested
node ``n``, walk the ancestors of ``n`` from the first level downward and
load the partial referenced by the first ancestor whose partial is not yet
resident; by construction some ancestor (possibly ``n`` itself) references a
partial containing ``n``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.bitmap.bitarray import BitArray
from repro.bitmap.compression import compress, decompress
from repro.core.signature import Signature
from repro.core.sid import ancestor_sids, child_sid

#: Fixed overhead per partial signature (cell reference, root SID, count).
_PART_HEADER_BYTES = 16
#: Per-node overhead inside a partial.  The on-page layout needs no
#: explicit SIDs: nodes are concatenated in BFS order from the partial's
#: reference, and each node's bit array tells the decoder which children
#: follow — the signature tree is self-describing.  One byte covers the
#: per-node continuation marker; the in-memory ``blobs`` dict is just the
#: decoded form.
_NODE_OVERHEAD_BYTES = 1


@dataclass
class PartialSignature:
    """A page-sized fragment of one cell's signature.

    Attributes:
        ref_sid: SID of the subtree root this partial was packed from (the
            retrieval key, together with the cell id).
        blobs: node SID → compressed bit array.
        size_bytes: Logical on-disk size.
    """

    ref_sid: int
    blobs: dict[int, bytes]
    size_bytes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = _PART_HEADER_BYTES + sum(
                _NODE_OVERHEAD_BYTES + len(blob) for blob in self.blobs.values()
            )

    def decode(self) -> dict[int, BitArray]:
        """Decompress every node in this partial."""
        return {sid: decompress(blob) for sid, blob in self.blobs.items()}

    def checksum_bytes(self) -> bytes:
        """Content fingerprint for page checksums (storage integrity).

        Covers the reference SID, the logical size and every compressed node
        blob, so any bit of damage to a stored partial is detectable.
        """
        parts = [b"partial", str(self.ref_sid).encode(), str(self.size_bytes).encode()]
        for sid in sorted(self.blobs):
            parts.append(str(sid).encode() + b"=" + self.blobs[sid])
        return b"\x1f".join(parts)

    def __contains__(self, sid: int) -> bool:
        return sid in self.blobs


def _bfs_sids(signature: Signature, start_sid: int) -> Iterator[int]:
    """Breadth-first SIDs of represented nodes in the subtree at ``start_sid``."""
    if signature.node(start_sid) is None:
        return
    queue = deque([start_sid])
    while queue:
        sid = queue.popleft()
        bits = signature.node(sid)
        if bits is None:
            continue
        yield sid
        for position in bits.positions():
            child = child_sid(sid, position + 1, signature.fanout)
            if signature.node(child) is not None:
                queue.append(child)


def decompose(
    signature: Signature,
    page_size: int,
    codec: str = "adaptive",
) -> list[PartialSignature]:
    """Split a signature into page-sized partials (the paper's algorithm).

    Returns partials in creation order; the first is always referenced by
    the root SID 0 (the one loaded unconditionally at query start).
    """
    compressed = {
        sid: compress(signature.node(sid), codec)  # type: ignore[arg-type]
        for sid in signature.node_sids()
    }
    if not compressed:
        return [PartialSignature(ref_sid=0, blobs={})]

    coded: set[int] = set()
    partials: list[PartialSignature] = []

    def pack_from(seed: int) -> None:
        blobs: dict[int, bytes] = {}
        size = _PART_HEADER_BYTES
        for sid in _bfs_sids(signature, seed):
            if sid in coded:
                continue
            cost = _NODE_OVERHEAD_BYTES + len(compressed[sid])
            if blobs and size + cost > page_size:
                break
            blobs[sid] = compressed[sid]
            coded.add(sid)
            size += cost
        if blobs:
            partials.append(PartialSignature(ref_sid=seed, blobs=blobs, size_bytes=size))

    # Seeds in breadth-first order over the whole tree guarantee that every
    # node ends up in a partial referenced by one of its ancestors (or by
    # itself, in the degenerate case): when the seed reaches the node
    # itself, the first BFS step packs it unconditionally.
    for seed in _bfs_sids(signature, 0):
        pack_from(seed)
    return partials


def reassemble(
    partials: Sequence[PartialSignature], fanout: int
) -> Signature:
    """Rebuild the full signature from all of its partials."""
    signature = Signature(fanout)
    for partial in partials:
        for sid, bits in partial.decode().items():
            signature.set_node(sid, bits)
    return signature


def retrieval_refs(path: Sequence[int], fanout: int) -> list[int]:
    """The candidate partial references for the node at ``path``.

    Root first, then each deeper ancestor, then the node itself — the order
    in which the paper probes for the partial encoding a requested node.
    """
    return ancestor_sids(path, fanout)
