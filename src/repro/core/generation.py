"""Tuple-oriented signature generation (paper Section IV-B.1, Fig. 2b).

To compute all signatures of a cuboid, tuples are grouped by the cuboid's
dimensions; each group (cell) carries the R-tree paths of its tuples, and
the cell signature is built by *recursive sorting*: sort the group by the
first path component, set the distinct components in the root bit array,
then recurse into each sub-list sharing the same component.

The result is identical to inserting each path bit-by-bit
(:meth:`repro.core.signature.Signature.from_paths`); the recursive-sort
formulation is the one the paper gives because it streams well over sorted
cuboid groups, and we keep it both for fidelity and as a cross-check.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bitmap.bitarray import BitArray
from repro.core.signature import Signature
from repro.core.sid import child_sid
from repro.cube.cuboid import Cell, Cuboid
from repro.cube.relation import Relation


def signature_by_recursive_sort(
    paths: Iterable[Sequence[int]], fanout: int
) -> Signature:
    """Build one cell's signature exactly as the paper describes.

    (1) sort the tuples by ``p0``; (2) set each distinct ``p0`` in the root
    bit array; (3) recurse on each sub-list sharing ``p0``, now keyed by
    ``p1``; and so on until the paths are exhausted.
    """
    signature = Signature(fanout)
    materialised = [tuple(path) for path in paths]

    def recurse(sub_list: list[tuple[int, ...]], depth: int, sid: int) -> None:
        sub_list = [p for p in sub_list if len(p) > depth]
        if not sub_list:
            return
        sub_list.sort(key=lambda p: p[depth])
        bits = BitArray(fanout)
        start = 0
        while start < len(sub_list):
            component = sub_list[start][depth]
            if not 1 <= component <= fanout:
                raise ValueError(
                    f"path component {component} outside [1, {fanout}]"
                )
            bits.set(component - 1)
            end = start
            while end < len(sub_list) and sub_list[end][depth] == component:
                end += 1
            recurse(
                sub_list[start:end],
                depth + 1,
                child_sid(sid, component, fanout),
            )
            start = end
        existing = signature.node(sid)
        signature.set_node(sid, bits if existing is None else existing | bits)

    recurse(materialised, 0, 0)
    return signature


def generate_cuboid_signatures(
    relation: Relation,
    cuboid: Cuboid,
    paths: dict[int, tuple[int, ...]],
    fanout: int,
) -> dict[Cell, Signature]:
    """All cell signatures of one cuboid, tuple-oriented.

    Args:
        relation: The base table.
        cuboid: The group-by to materialise.
        paths: tid → current R-tree path (from :meth:`RTree.all_paths`).
        fanout: R-tree node capacity ``M``.
    """
    groups = cuboid.group(relation)
    return {
        cell: signature_by_recursive_sort(
            (paths[tid] for tid in tids), fanout
        )
        for cell, tids in groups.items()
    }
