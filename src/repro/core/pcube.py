"""The P-Cube: a data cube whose measure is the signature.

Build it once over a relation and its R-tree partition template; it then
serves signature readers for arbitrary boolean predicates (materialised
cells directly, everything else assembled from atomic cells) and absorbs
incremental updates driven by R-tree path changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.counted import CountedSignature
from repro.core.generation import generate_cuboid_signatures
from repro.core.ops import intersect_all
from repro.obs.trace import COVER, Tracer
from repro.core.signature import Signature
from repro.core.store import (
    AssembledReader,
    CellSignatureReader,
    SignatureStore,
)
from repro.cube.cuboid import Cell, Cuboid, atomic_cuboids
from repro.cube.relation import Relation
from repro.rtree.rtree import PathChange, RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import IOCounters
from repro.storage.errors import StorageFault

if TYPE_CHECKING:
    from repro.serve.resilience import BreakerBoard, RetryBudget


class EmptyReader:
    """Reader for a predicate that provably selects no tuples."""

    load_seconds = 0.0
    loads = 0
    retries = 0
    failed_loads = 0
    degraded_checks = 0
    breaker_skips = 0
    degraded = False

    def check_entry(self, parent_path, position) -> bool:
        return False

    def check_path(self, path) -> bool:
        return False


class SignatureAdapter:
    """Expose an in-memory :class:`Signature` with the reader interface
    (used by the eager-assembly mode and by tests)."""

    load_seconds = 0.0
    loads = 0
    retries = 0
    failed_loads = 0
    degraded_checks = 0
    breaker_skips = 0
    degraded = False

    def __init__(self, signature: Signature) -> None:
        self.signature = signature

    def check_entry(self, parent_path, position) -> bool:
        from repro.core.sid import sid_of_path

        return self.signature.check_bit(
            sid_of_path(parent_path, self.signature.fanout), position
        )

    def check_path(self, path) -> bool:
        return self.signature.check_path(path)


class ReaderFactory:
    """The query-side face of a P-Cube: turning predicates into readers.

    Mixin shared by the live :class:`PCube` and the per-epoch
    :class:`PCubeView`.  It only touches the duck-typed attributes both
    provide — ``store`` (live store or :class:`~repro.core.store.StoreView`),
    ``rtree`` (live tree or :class:`~repro.rtree.frozen.FrozenRTree`),
    ``relation`` (live relation or
    :class:`~repro.cube.relation.RelationView`), ``cuboids`` and
    ``fanout`` — so the same cover choice, lazy/eager assembly and
    degraded-mode fallback serve both the single-query and the
    snapshot-isolated concurrent paths.
    """

    def materialised_cell(self, cell: Cell) -> bool:
        """Whether this exact cell's signature is stored."""
        return self.store.has_cell(cell)

    def reader_for_cells(
        self,
        cells: Sequence[Cell],
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        eager: bool = False,
        tracer: Tracer | None = None,
        budget: "RetryBudget | None" = None,
        breakers: "BreakerBoard | None" = None,
        epoch: int | None = None,
    ):
        """A boolean-prune reader for the conjunction of ``cells``.

        Single materialised cells read lazily from the store.  Conjunctions
        combine per-cell readers with a lazy AND by default; with
        ``eager=True`` the full signatures are loaded and intersected with
        the exact recursive operator up front (paper Fig. 3), trading load
        cost for maximal pruning.  A ``tracer`` is handed down to every
        per-cell reader (partial-load events) and receives one ``cover``
        event describing the assembly decision.
        """
        if not cells:
            raise ValueError("reader_for_cells needs at least one cell")
        resolved: list[Cell] = []
        for cell in cells:
            if self.materialised_cell(cell):
                resolved.append(cell)
                continue
            # Fall back to the cell's atomic factors (always materialised).
            for atom in cell.atoms():
                if not self.materialised_cell(atom):
                    # The atomic cell has no partials: no tuple carries this
                    # value, so the conjunction is empty.
                    if tracer is not None:
                        tracer.event(
                            COVER, cells=[c.cell_id for c in cells], empty=True
                        )
                    return EmptyReader()
                resolved.append(atom)
        if tracer is not None:
            tracer.event(
                COVER,
                cells=[cell.cell_id for cell in resolved],
                eager=eager,
            )
        if eager:
            try:
                signatures = [
                    self.store.load_full_signature(cell, pool, counters)
                    for cell in resolved
                ]
                return SignatureAdapter(intersect_all(signatures))
            except StorageFault:
                # Eager assembly needs every partial; if any is unreadable,
                # fall through to the lazy readers, whose conservative mode
                # keeps the query correct.
                pass
        readers = [
            CellSignatureReader(
                self.store,
                cell,
                pool,
                counters,
                fallback=self.boolean_fallback,
                tracer=tracer,
                budget=budget,
                breakers=breakers,
                epoch=epoch,
            )
            for cell in resolved
        ]
        if len(readers) == 1:
            return readers[0]
        return AssembledReader(readers)

    def cover_for_dims(
        self, conjuncts: dict
    ) -> list[Cell] | None:
        """Choose materialised cells whose conjunction equals ``conjuncts``.

        The paper materialises only atomic cuboids but points at partial
        materialisation of low-dimensional cuboids ([19], [12]).  When
        multi-dimensional cuboids are materialised, a query should prefer
        them: one (A,B)-cell signature prunes strictly better than the
        lazy AND of the A-cell and B-cell signatures.  Greedy set cover by
        descending cuboid width picks such cells.

        Returns ``None`` when some needed cell provably holds no tuples —
        i.e. the whole conjunction is empty.
        """
        remaining = dict(conjuncts)
        chosen: list[Cell] = []
        cuboids = sorted(
            self.cuboids, key=lambda cuboid: -len(cuboid.dims)
        )
        while remaining:
            for cuboid in cuboids:
                if not set(cuboid.dims) <= set(remaining):
                    continue
                cell = Cell(
                    cuboid.dims,
                    tuple(remaining[dim] for dim in cuboid.dims),
                )
                if not self.materialised_cell(cell):
                    # The cuboid is materialised but this cell has no
                    # partials: no tuple carries this value combination.
                    return None
                chosen.append(cell)
                for dim in cuboid.dims:
                    del remaining[dim]
                break
            else:
                raise ValueError(
                    f"no materialised cuboid covers dimensions "
                    f"{sorted(remaining)} (atomic cuboids missing?)"
                )
        return chosen

    def reader_for_predicate(
        self,
        conjuncts: dict,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        eager: bool = False,
        tracer: Tracer | None = None,
        budget: "RetryBudget | None" = None,
        breakers: "BreakerBoard | None" = None,
        epoch: int | None = None,
    ):
        """A boolean-prune reader for a conjunction, using the best
        materialised cover (see :meth:`cover_for_dims`)."""
        if not conjuncts:
            raise ValueError("reader_for_predicate needs at least one conjunct")
        cover = self.cover_for_dims(conjuncts)
        if cover is None:
            if tracer is not None:
                tracer.event(COVER, conjuncts=sorted(conjuncts), empty=True)
            return EmptyReader()
        return self.reader_for_cells(
            cover,
            pool,
            counters,
            eager,
            tracer,
            budget=budget,
            breakers=breakers,
            epoch=epoch,
        )

    def boolean_fallback(
        self,
        cell: Cell,
        path: tuple[int, ...],
        counters: IOCounters | None = None,
    ) -> bool:
        """Ground-truth boolean check for degraded readers.

        Leaf-level paths are resolved exactly: one counted random tuple
        access (``DBOOL``, like the Domination baseline's minimal probing)
        plus the cell-membership test against the base relation.  Anything
        that is not a live tuple entry — internal nodes, the root, stale
        paths — answers ``True`` (conservative: lost pruning, never a lost
        or spurious result).
        """
        entry = self.rtree.entry_at(path)
        if entry is not None and entry.is_leaf_entry:
            self.relation.fetch(entry.tid, counters=counters)
            return cell.matches(self.relation, entry.tid)
        return True


class PCubeView(ReaderFactory):
    """One epoch's P-Cube: frozen tree, snapshotted store, pinned relation.

    Offers exactly the :class:`ReaderFactory` query surface over immutable
    per-epoch projections — no maintenance methods exist on a view, by
    construction.
    """

    def __init__(
        self,
        relation,
        rtree,
        store,
        cuboids: Sequence[Cuboid],
        fanout: int,
    ) -> None:
        self.relation = relation
        self.rtree = rtree
        self.store = store
        self.cuboids = list(cuboids)
        self.fanout = fanout


class PCube(ReaderFactory):
    """Signature-based materialisation over the boolean dimensions.

    Args:
        relation: The base table.
        rtree: The shared partition template over the preference dimensions.
        cuboids: Which cuboids to materialise; defaults to the atomic
            (one-dimensional) cuboids, as in the paper's experiments.
        codec: Bitmap codec for stored signatures.
        tag: Page-tag prefix for space accounting.
        maintainable: Keep counted signatures in memory so incremental
            updates run in O(path length) per affected cell.
    """

    def __init__(
        self,
        relation: Relation,
        rtree: RTree,
        cuboids: Sequence[Cuboid] | None = None,
        codec: str = "adaptive",
        tag: str = "pcube",
        maintainable: bool = True,
    ) -> None:
        self.relation = relation
        self.rtree = rtree
        self.fanout = rtree.max_entries
        self.cuboids = (
            list(cuboids)
            if cuboids is not None
            else atomic_cuboids(relation.schema.boolean_dims)
        )
        self.tag = tag
        self.store = SignatureStore(
            rtree.disk, fanout=self.fanout, tag=tag, codec=codec
        )
        self.maintainable = maintainable
        self._counted: dict[Cell, CountedSignature] = {}
        # Cells whose counted signature is shared with a published epoch
        # snapshot and must be copied before the next in-place mutation.
        self._shared_counted: set[Cell] = set()
        self._built = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        relation: Relation,
        rtree: RTree,
        cuboids: Sequence[Cuboid] | None = None,
        codec: str = "adaptive",
        tag: str = "pcube",
        maintainable: bool = True,
    ) -> "PCube":
        """Generate, compress, decompose and store every cell signature."""
        pcube = cls(relation, rtree, cuboids, codec, tag, maintainable)
        paths = rtree.all_paths()
        for cuboid in pcube.cuboids:
            signatures = generate_cuboid_signatures(
                relation, cuboid, paths, pcube.fanout
            )
            for cell, signature in signatures.items():
                pcube.store.put_signature(cell, signature)
        if maintainable:
            pcube._rebuild_counts(paths)
        pcube._built = True
        return pcube

    def _rebuild_counts(self, paths: dict[int, tuple[int, ...]]) -> None:
        """(Re)derive every counted signature in one pass over the data."""
        self._counted = {}
        for cuboid in self.cuboids:
            for cell, tids in cuboid.group(self.relation).items():
                counted = CountedSignature(self.fanout)
                for tid in tids:
                    counted.add_path(paths[tid])
                self._counted[cell] = counted

    # ------------------------------------------------------------------ #
    # query-side interface: inherited from ReaderFactory
    # ------------------------------------------------------------------ #

    def view(self, relation, rtree, store) -> PCubeView:
        """The query surface over per-epoch projections of the three
        structures (the epoch manager supplies them at publish time)."""
        return PCubeView(relation, rtree, store, self.cuboids, self.fanout)

    def share_counted(self) -> dict[Cell, CountedSignature]:
        """Publish-time handshake for counted-signature copy-on-write.

        Returns a point-in-time copy of the counted map for the snapshot
        and marks every entry shared; the next in-place mutation of a
        shared entry (see :meth:`_writable_counted`) works on a private
        copy, leaving the snapshot's object untouched.
        """
        self._shared_counted = set(self._counted)
        return dict(self._counted)

    def _writable_counted(self, cell: Cell) -> CountedSignature:
        """The counted signature of ``cell``, safe to mutate in place."""
        counted = self._counted.get(cell)
        if counted is None:
            counted = CountedSignature(self.fanout)
            self._counted[cell] = counted
        elif cell in self._shared_counted:
            counted = counted.copy()
            self._counted[cell] = counted
            self._shared_counted.discard(cell)
        return counted

    def rebuild_cell(self, cell: Cell) -> Signature:
        """Regenerate a (quarantined) cell's signature from base data.

        The recovery contract: stored signatures are rebuildable caches
        over the relation and the R-tree, so corruption costs a rebuild,
        never a wrong answer.  Restores full boolean pruning for the cell.
        """
        signature = self.recompute_cell(cell)
        self.store.clear_quarantine(cell)
        self.store.fault_stats.rebuilds += 1
        return signature

    def rebuild_quarantined(self) -> list[Cell]:
        """Rebuild every quarantined cell; returns the cells rebuilt."""
        rebuilt = self.store.quarantined_cells()
        for cell in rebuilt:
            self.rebuild_cell(cell)
        return rebuilt

    def rebuild_all(self) -> int:
        """Regenerate every materialised cell from the relation + R-tree.

        The crash-recovery big hammer: when an interrupted operation left
        the tree mid-mutation, the tree is reset first and then every cell
        signature (and counted signature) is re-derived from scratch, in
        deterministic cell-id order.  Cells whose tuples are all tombstoned
        keep an empty signature, exactly as incremental deletes leave them.
        Quarantines are lifted as a side effect — the fresh pages replace
        whatever was unreadable.  Returns the number of cells stored.
        """
        paths = self.rtree.all_paths()
        stored = 0
        for cuboid in self.cuboids:
            groups = cuboid.group(self.relation, include_tombstoned=True)
            for cell in sorted(groups, key=lambda c: c.cell_id):
                tids = [
                    tid for tid in groups[cell] if self.relation.is_live(tid)
                ]
                signature = Signature.from_paths(
                    (paths[tid] for tid in tids), self.fanout
                )
                self.store.put_signature(cell, signature)
                self.store.clear_quarantine(cell)
                if self.maintainable:
                    counted = CountedSignature(self.fanout)
                    for tid in tids:
                        counted.add_path(paths[tid])
                    self._counted[cell] = counted
                stored += 1
        return stored

    def signature_of(self, cell: Cell) -> Signature:
        """The stored (bitmap) signature of a materialised cell, reassembled
        without access accounting (tests and maintenance)."""
        if not self.materialised_cell(cell):
            return Signature(self.fanout)
        return self.store.load_full_signature(cell)

    # ------------------------------------------------------------------ #
    # incremental maintenance (Section IV-B.3)
    # ------------------------------------------------------------------ #

    def apply_changes(
        self,
        changes: Sequence[PathChange],
        on_cell_stored: "Callable[[Cell], None] | None" = None,
    ) -> set[Cell]:
        """Patch signatures for a set of R-tree path changes.

        For every changed tuple and every materialised cuboid, the tuple's
        cell is updated: the old path's counts are removed, the new path's
        added; bits flip exactly when counts cross zero.  Dirty cells are
        then re-decomposed and re-stored once, in cell-id order (the WAL
        relies on that determinism to replay an interrupted store phase),
        with ``on_cell_stored`` invoked after each cell commits.  Returns
        the dirty cells.

        The counted updates touch no disk page; the first disk access of
        this method is the first cell's rewrite.  Crash recovery leans on
        that: once the WAL holds the merged changes, any later crash left
        the counted signatures fully post-op in memory.
        """
        if not self.maintainable:
            raise RuntimeError(
                "this P-Cube was built with maintainable=False; "
                "use recompute_cell/rebuild instead"
            )
        dirty: set[Cell] = set()
        for change in changes:
            if change.old_path == change.new_path:
                continue
            for cuboid in self.cuboids:
                cell = cuboid.cell_for(self.relation, change.tid)
                counted = self._writable_counted(cell)
                if change.old_path is not None:
                    counted.remove_path(change.old_path)
                if change.new_path is not None:
                    counted.add_path(change.new_path)
                dirty.add(cell)
        for cell in sorted(dirty, key=lambda c: c.cell_id):
            self.store.put_signature(cell, self._counted[cell].to_signature())
            if on_cell_stored is not None:
                on_cell_stored(cell)
        return dirty

    def dirty_cells_for(self, changes: Sequence[PathChange]) -> set[Cell]:
        """The cells a change stream touches — exactly the set
        :meth:`apply_changes` would re-store (WAL replay recomputes it from
        the journalled changes instead of trusting crash-time state)."""
        dirty: set[Cell] = set()
        for change in changes:
            if change.old_path == change.new_path:
                continue
            for cuboid in self.cuboids:
                dirty.add(cuboid.cell_for(self.relation, change.tid))
        return dirty

    def restore_cell(self, cell: Cell) -> None:
        """Re-store one cell's signature from its in-memory counted state.

        The WAL replay path: the counted signatures are fully post-op once
        the changes record is durable, so re-deriving the bitmap from them
        and rewriting the cell is idempotent.  Falls back to a full
        recompute when no counted state is available."""
        counted = self._counted.get(cell)
        if counted is not None:
            self.store.put_signature(cell, counted.to_signature())
            self.store.clear_quarantine(cell)
        else:
            self.recompute_cell(cell)

    def counted_of(self, cell: Cell) -> CountedSignature | None:
        """The live counted signature of a cell (consistency audits)."""
        return self._counted.get(cell)

    def recompute_cell(self, cell: Cell) -> Signature:
        """Rebuild one cell's signature from the current R-tree paths.

        The paper's fallback for arbitrary reorganisations: traverse the
        tree, collect the cell's tuple paths, regenerate.  O(T) per call —
        correct under any mutation, used when ``maintainable=False``.
        """
        paths = self.rtree.all_paths()
        tids = [
            tid
            for tid in self.relation.live_tids()
            if cell.matches(self.relation, tid)
        ]
        signature = Signature.from_paths(
            (paths[tid] for tid in tids), self.fanout
        )
        self.store.put_signature(cell, signature)
        if self.maintainable:
            counted = CountedSignature(self.fanout)
            for tid in tids:
                counted.add_path(paths[tid])
            self._counted[cell] = counted
        return signature

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def size_bytes(self) -> int:
        """Stored size of all partial signatures plus the store index."""
        return self.rtree.disk.size_bytes(self.tag)

    def n_cells(self) -> int:
        return len(self.store.cells())

    def __repr__(self) -> str:
        return (
            f"PCube(cuboids={[c.name for c in self.cuboids]}, "
            f"cells={self.n_cells()}, fanout={self.fanout})"
        )
