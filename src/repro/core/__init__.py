"""P-Cube core: the signature measure and its life cycle.

This package is the paper's primary contribution (Section IV):

* :mod:`repro.core.sid` — path ⇄ SID arithmetic;
* :mod:`repro.core.signature` — the signature tree of one cube cell;
* :mod:`repro.core.generation` — tuple-oriented signature generation by
  recursive sorting (Fig. 2b);
* :mod:`repro.core.ops` — signature union and (recursive) intersection for
  online assembly from atomic cuboids (Fig. 3);
* :mod:`repro.core.partial` — compression + decomposition into page-sized
  partial signatures, and the ancestor-reference retrieval protocol;
* :mod:`repro.core.store` — the on-disk signature store, indexed by
  (cell id, SID) with a B+-tree, plus lazily loading readers;
* :mod:`repro.core.counted` — counted signatures for O(depth) maintenance;
* :mod:`repro.core.maintenance` — incremental updates from R-tree path
  changes (Section IV-B.3);
* :mod:`repro.core.pcube` — the cube itself: build, retrieve, assemble,
  maintain.
"""

from repro.core.pcube import PCube
from repro.core.signature import Signature
from repro.core.sid import path_of_sid, sid_of_path

__all__ = ["PCube", "Signature", "path_of_sid", "sid_of_path"]
