"""Incremental maintenance drivers (paper Section IV-B.3).

The R-tree reports exact :class:`PathChange` records for every mutation;
:meth:`PCube.apply_changes` patches the affected cell signatures.  This
module provides the end-to-end drivers the update experiments (Figure 7)
time:

* :func:`insert_tuple` — append a row, insert its point, patch signatures;
* :func:`insert_batch` — same for many rows, with change records merged per
  tuple so each dirty cell is re-stored once (the paper observes batch
  maintenance amortises: 100 inserts averaged ~3× cheaper per tuple than a
  single insert in their 1M-tuple run);
* :func:`delete_tuple` / :func:`update_tuple` — the paper treats these as
  "similar" to insertion; the path-change machinery covers them directly.

Every driver optionally runs under a :class:`~repro.core.wal.MaintenanceWAL`
(pass ``wal=``): the operation's intent is journalled before any structure
is touched, the merged path changes after the relation and R-tree phases,
and each dirty cell's completed rewrite as it commits, so a crash at any
point is recoverable (see :meth:`repro.system.PCubeSystem.recover`).
Without a WAL the drivers behave exactly as before — the fast path the
Figure 7 benchmarks time.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.pcube import PCube
from repro.core.wal import MaintenanceWAL
from repro.cube.cuboid import Cell
from repro.cube.relation import Relation
from repro.rtree.rtree import PathChange, RTree


def merge_changes(changes: Sequence[PathChange]) -> list[PathChange]:
    """Collapse a change stream to one record per tuple.

    A tuple touched several times keeps its first ``old_path`` and its last
    ``new_path``; no-op pairs are dropped.
    """
    merged: dict[int, PathChange] = {}
    for change in changes:
        existing = merged.get(change.tid)
        if existing is None:
            merged[change.tid] = change
        else:
            merged[change.tid] = PathChange(
                change.tid, existing.old_path, change.new_path
            )
    return [
        change
        for change in merged.values()
        if change.old_path != change.new_path
    ]


def _cell_logger(
    wal: MaintenanceWAL | None, op_id: int | None
) -> "Callable[[Cell], None] | None":
    if wal is None or op_id is None:
        return None
    return lambda cell: wal.log_cell_stored(op_id, cell.cell_id)


def insert_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    bool_row: tuple,
    pref_row: tuple,
    wal: MaintenanceWAL | None = None,
) -> tuple[int, set[Cell]]:
    """Insert one tuple end to end; returns (tid, dirty cells)."""
    op_id = None
    if wal is not None:
        op_id = wal.begin(
            "insert",
            base=len(relation),
            rows=[(tuple(bool_row), tuple(float(v) for v in pref_row))],
        )
    tid = relation.append(bool_row, pref_row)
    changes = merge_changes(rtree.insert(tid, pref_row))
    if wal is not None:
        wal.log_changes(op_id, changes)
    dirty = pcube.apply_changes(changes, on_cell_stored=_cell_logger(wal, op_id))
    if wal is not None:
        wal.commit(op_id)
    return tid, dirty


def insert_batch(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    rows: Sequence[tuple[tuple, tuple]],
    wal: MaintenanceWAL | None = None,
) -> tuple[list[int], set[Cell]]:
    """Insert many tuples, patching signatures once at the end."""
    op_id = None
    if wal is not None:
        op_id = wal.begin(
            "insert_batch",
            base=len(relation),
            rows=[
                (tuple(bool_row), tuple(float(v) for v in pref_row))
                for bool_row, pref_row in rows
            ],
        )
    all_changes: list[PathChange] = []
    tids: list[int] = []
    for bool_row, pref_row in rows:
        tid = relation.append(bool_row, pref_row)
        tids.append(tid)
        all_changes.extend(rtree.insert(tid, pref_row))
    changes = merge_changes(all_changes)
    if wal is not None:
        wal.log_changes(op_id, changes)
    dirty = pcube.apply_changes(changes, on_cell_stored=_cell_logger(wal, op_id))
    if wal is not None:
        wal.commit(op_id)
    return tids, dirty


def delete_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    tid: int,
    wal: MaintenanceWAL | None = None,
) -> set[Cell]:
    """Delete a tuple from the index and patch signatures.

    The relation keeps the row as a tombstone (its cell membership is still
    needed to patch the right signatures) but drops it from every live-row
    access path; the R-tree and every signature stop referencing it.
    """
    op_id = None
    if wal is not None:
        op_id = wal.begin("delete", tid=tid)
    relation.tombstone(tid)
    changes = merge_changes(rtree.delete(tid))
    if wal is not None:
        wal.log_changes(op_id, changes)
    dirty = pcube.apply_changes(changes, on_cell_stored=_cell_logger(wal, op_id))
    if wal is not None:
        wal.commit(op_id)
    return dirty


def update_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    tid: int,
    new_pref_row: tuple,
    wal: MaintenanceWAL | None = None,
) -> set[Cell]:
    """Move a tuple in preference space and patch signatures.

    The relation is written *before* the R-tree is touched: overwriting a
    preference row is pure memory (it cannot fail), so an exception inside
    the R-tree mutation can no longer leave the index describing a point
    the relation never adopted.
    """
    if not relation.is_live(tid):
        raise KeyError(f"tid {tid} is not live")
    op_id = None
    if wal is not None:
        op_id = wal.begin(
            "update", tid=tid, pref_row=tuple(float(v) for v in new_pref_row)
        )
    relation.overwrite_pref(tid, new_pref_row)
    changes = merge_changes(rtree.update(tid, new_pref_row))
    if wal is not None:
        wal.log_changes(op_id, changes)
    dirty = pcube.apply_changes(changes, on_cell_stored=_cell_logger(wal, op_id))
    if wal is not None:
        wal.commit(op_id)
    return dirty
