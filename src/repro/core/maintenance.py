"""Incremental maintenance drivers (paper Section IV-B.3).

The R-tree reports exact :class:`PathChange` records for every mutation;
:meth:`PCube.apply_changes` patches the affected cell signatures.  This
module provides the end-to-end drivers the update experiments (Figure 7)
time:

* :func:`insert_tuple` — append a row, insert its point, patch signatures;
* :func:`insert_batch` — same for many rows, with change records merged per
  tuple so each dirty cell is re-stored once (the paper observes batch
  maintenance amortises: 100 inserts averaged ~3× cheaper per tuple than a
  single insert in their 1M-tuple run);
* :func:`delete_tuple` / :func:`update_tuple` — the paper treats these as
  "similar" to insertion; the path-change machinery covers them directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pcube import PCube
from repro.cube.cuboid import Cell
from repro.cube.relation import Relation
from repro.rtree.rtree import PathChange, RTree


def merge_changes(changes: Sequence[PathChange]) -> list[PathChange]:
    """Collapse a change stream to one record per tuple.

    A tuple touched several times keeps its first ``old_path`` and its last
    ``new_path``; no-op pairs are dropped.
    """
    merged: dict[int, PathChange] = {}
    for change in changes:
        existing = merged.get(change.tid)
        if existing is None:
            merged[change.tid] = change
        else:
            merged[change.tid] = PathChange(
                change.tid, existing.old_path, change.new_path
            )
    return [
        change
        for change in merged.values()
        if change.old_path != change.new_path
    ]


def insert_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    bool_row: tuple,
    pref_row: tuple,
) -> tuple[int, set[Cell]]:
    """Insert one tuple end to end; returns (tid, dirty cells)."""
    tid = relation.append(bool_row, pref_row)
    changes = rtree.insert(tid, pref_row)
    dirty = pcube.apply_changes(changes)
    return tid, dirty


def insert_batch(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    rows: Sequence[tuple[tuple, tuple]],
) -> tuple[list[int], set[Cell]]:
    """Insert many tuples, patching signatures once at the end."""
    all_changes: list[PathChange] = []
    tids: list[int] = []
    for bool_row, pref_row in rows:
        tid = relation.append(bool_row, pref_row)
        tids.append(tid)
        all_changes.extend(rtree.insert(tid, pref_row))
    dirty = pcube.apply_changes(merge_changes(all_changes))
    return tids, dirty


def delete_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    tid: int,
) -> set[Cell]:
    """Delete a tuple from the index and patch signatures.

    The relation keeps the row as a tombstone (its cell membership is still
    needed to patch the right signatures); the R-tree and every signature
    stop referencing it.
    """
    changes = rtree.delete(tid)
    return pcube.apply_changes(changes)


def update_tuple(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    tid: int,
    new_pref_row: tuple,
) -> set[Cell]:
    """Move a tuple in preference space and patch signatures."""
    changes = rtree.update(tid, new_pref_row)
    relation.overwrite_pref(tid, new_pref_row)
    return pcube.apply_changes(changes)
