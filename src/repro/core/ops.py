"""Signature union and intersection (paper Section IV-B.2, Fig. 3).

P-Cube materialises only atomic (one-dimensional) cuboids by default, so a
multi-dimensional boolean predicate needs its signature *assembled* online:

* **union** — plain bit-or, node by node: a bit is 1 in the result iff it is
  1 in either input (answers ``A=a2 OR B=b2`` style disjunctions);
* **intersection** — recursive bit-and: a bit survives only if it is 1 in
  both inputs *and* the intersection of the corresponding child subtrees is
  non-empty; otherwise the bit is cleared (the paper's example clears the
  root's first bit because the two cells share no tuple under node N1).

The recursion is what makes intersection exact.  A *lazy* AND (bit tests
answered by and-ing the inputs on demand, no child look-ahead) admits false
positives at internal nodes — both cells have data under the node but no
common tuple — which cost extra block reads but are always caught at the
leaf level, where a slot bit refers to one concrete tuple.  The query layer
can use either; the ablation benchmark compares them.
"""

from __future__ import annotations

from typing import Sequence

from repro.bitmap.bitarray import BitArray
from repro.core.signature import Signature
from repro.core.sid import child_sid
from repro.kernels.sigops import or_masks


def union(first: Signature, second: Signature) -> Signature:
    """The bit-or of two signatures over the same partition template."""
    return union_all([first, second])


def union_all(signatures: Sequence[Signature]) -> Signature:
    """Union of one or more signatures.

    Gathers each node's masks across all inputs and ORs them in one
    word-parallel reduction per SID, instead of materialising k − 1
    intermediate signatures.
    """
    if not signatures:
        raise ValueError("union_all of an empty sequence")
    for signature in signatures[1:]:
        _check_compatible(signatures[0], signature)
    fanout = signatures[0].fanout
    by_sid: dict[int, list[int]] = {}
    for signature in signatures:
        for sid in signature.node_sids():
            bits = signature.node(sid)
            assert bits is not None
            by_sid.setdefault(sid, []).append(bits.mask)
    result = Signature(fanout)
    for sid, masks in by_sid.items():
        result.set_node(sid, BitArray(fanout, or_masks(masks, fanout)))
    return result


def intersect(first: Signature, second: Signature) -> Signature:
    """The paper's recursive intersection.

    A leaf-level bit is kept iff set in both inputs.  An internal bit is
    kept iff set in both inputs and the child intersection is non-empty; the
    child node is materialised only in that case.
    """
    _check_compatible(first, second)
    result = Signature(first.fanout)
    _intersect_node(first, second, 0, result)
    return result


def _intersect_node(
    first: Signature, second: Signature, sid: int, result: Signature
) -> bool:
    """Intersect the subtree at ``sid``; return whether it is non-empty."""
    bits_a = first.node(sid)
    bits_b = second.node(sid)
    if bits_a is None or bits_b is None:
        return False
    both = bits_a & bits_b
    if not both.any():
        return False
    kept = BitArray(first.fanout)
    for position in both.positions():
        component = position + 1
        child = child_sid(sid, component, first.fanout)
        child_in_a = first.node(child) is not None
        child_in_b = second.node(child) is not None
        if not child_in_a and not child_in_b:
            # Both signatures bottom out here: the bit denotes the same
            # leaf slot, i.e. the same tuple — exact, keep it.
            kept.set(position)
        elif child_in_a and child_in_b:
            if _intersect_node(first, second, child, result):
                kept.set(position)
        # One side has a subtree, the other a leaf slot: the signatures
        # disagree about the tree shape, which cannot happen for
        # signatures built over the same template; treat as empty.
    if not kept.any():
        return False
    result.set_node(sid, kept)
    return True


def intersect_all(signatures: Sequence[Signature]) -> Signature:
    """Intersection of one or more signatures (left-assoc recursive)."""
    if not signatures:
        raise ValueError("intersect_all of an empty sequence")
    result = signatures[0]
    for signature in signatures[1:]:
        result = intersect(result, signature)
    return result.copy() if len(signatures) == 1 else result


class LazyIntersection:
    """A view that answers bit tests by and-ing the inputs on demand.

    Conservative (never misses data) but may report 1 at internal nodes
    whose exact intersection is empty; exact at leaf slots.  Used by the
    query layer when eager assembly is disabled, and by the assembly
    ablation benchmark.
    """

    def __init__(self, signatures: Sequence[Signature]) -> None:
        if not signatures:
            raise ValueError("LazyIntersection needs at least one signature")
        for signature in signatures[1:]:
            _check_compatible(signatures[0], signature)
        self.signatures = list(signatures)
        self.fanout = signatures[0].fanout

    def check_bit(self, parent_sid: int, position: int) -> bool:
        return all(
            signature.check_bit(parent_sid, position)
            for signature in self.signatures
        )

    def check_path(self, path: Sequence[int]) -> bool:
        return all(
            signature.check_path(path) for signature in self.signatures
        )


def _check_compatible(first: Signature, second: Signature) -> None:
    if first.fanout != second.fanout:
        raise ValueError(
            "signatures over different partition templates "
            f"(fanout {first.fanout} vs {second.fanout})"
        )
