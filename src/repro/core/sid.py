"""Path ⇄ signature-ID (SID) arithmetic.

The paper maps a node path ``⟨p0, p1, ..., p_{l-1}⟩`` (1-based child
positions, root = empty path) one-to-one to an integer::

    SID = p0 * (M+1)^{l-1} + p1 * (M+1)^{l-2} + ... + p_{l-1}

where ``M`` is the R-tree fanout.  In the paper's example (M = 2) the node
with path ⟨1, 1⟩ has SID ``1*3 + 1 = 4`` and the root has SID 0.

Because every digit lies in ``[1, M]`` and the base is ``M + 1``, the
mapping is injective (a bijective-style numeration that never uses digit 0),
so it can be inverted exactly; integers whose digit expansion would contain
a 0 simply are not valid SIDs.
"""

from __future__ import annotations

from typing import Sequence


def sid_of_path(path: Sequence[int], fanout: int) -> int:
    """The SID of a node path.

    Args:
        path: 1-based child positions from the root; ``()`` is the root.
        fanout: The R-tree node capacity ``M``.

    Raises:
        ValueError: if any component lies outside ``[1, M]``.
    """
    base = fanout + 1
    sid = 0
    for component in path:
        if not 1 <= component <= fanout:
            raise ValueError(
                f"path component {component} outside [1, {fanout}]"
            )
        sid = sid * base + component
    return sid


def path_of_sid(sid: int, fanout: int) -> tuple[int, ...]:
    """Invert :func:`sid_of_path`.

    Raises:
        ValueError: if ``sid`` is not the image of any valid path.
    """
    if sid < 0:
        raise ValueError("SIDs are non-negative")
    base = fanout + 1
    components: list[int] = []
    while sid:
        digit = sid % base
        if digit == 0:
            raise ValueError(f"{sid} is not a valid SID for fanout {fanout}")
        components.append(digit)
        sid //= base
    components.reverse()
    return tuple(components)


def parent_sid(sid: int, fanout: int) -> int:
    """SID of the parent node (root's parent is undefined).

    Raises:
        ValueError: for the root SID 0.
    """
    if sid == 0:
        raise ValueError("the root has no parent")
    base = fanout + 1
    if sid % base == 0:
        raise ValueError(f"{sid} is not a valid SID for fanout {fanout}")
    return sid // base


def child_sid(sid: int, position: int, fanout: int) -> int:
    """SID of the child at 1-based ``position`` under node ``sid``."""
    if not 1 <= position <= fanout:
        raise ValueError(f"child position {position} outside [1, {fanout}]")
    return sid * (fanout + 1) + position


def ancestor_sids(path: Sequence[int], fanout: int) -> list[int]:
    """SIDs of every prefix of ``path``: root first, the node itself last."""
    base = fanout + 1
    sids = [0]
    sid = 0
    for component in path:
        if not 1 <= component <= fanout:
            raise ValueError(
                f"path component {component} outside [1, {fanout}]"
            )
        sid = sid * base + component
        sids.append(sid)
    return sids
