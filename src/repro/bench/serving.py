"""Serving throughput sweep: shared-pool concurrency vs the paper mode.

The scenario measures what the snapshot-isolation work buys at serving
time.  One seeded system, one seeded mixed workload (skyline + top-k),
under a modeled per-read disk latency (``SimulatedDisk.read_latency``,
slept outside every lock so concurrent queries overlap their I/O):

* **cold** — the paper-comparable baseline: one thread, a fresh buffer
  pool per query, every page access paying the modeled latency;
* **shared** — the steady-state serving mode: a :class:`QueryExecutor`
  with N worker threads over one shared warm :class:`BufferPool` (one
  untimed warm-up pass populates it);
* **shared-cold** — the same executor with the pool emptied before each
  pass: every pass re-reads its working set, so this series shows how
  much of the miss latency concurrent workers overlap.

Reported per point: throughput (``qps``), speedup over cold, queue-wait
mean, and the deterministic gate fields — ``io.total`` and ``results``
(identical answers are also *asserted*, not just reported: every mode must
reproduce the cold baseline's tids exactly).  The throughput fields are
wall-clock and therefore excluded from the ``--compare`` gate (see
:data:`repro.bench.compare.WALL_FIELDS`); the ``shared-cold`` series omits
``io.total`` because two workers missing the same page concurrently both
(correctly) count a read, making its total interleaving-dependent.
"""

from __future__ import annotations

import random
import time
from typing import Any, Sequence

from repro.data.fixtures import build_sweep_system
from repro.data.workload import sample_linear_function, sample_predicate
from repro.serve.executor import QueryExecutor
from repro.storage.buffer import BufferPool

SERVING_SCHEMA = "repro.serve-bench/v1"

#: Defaults: enough work to amortise thread startup, small enough for CI.
DEFAULT_THREADS = (1, 2, 4)
DEFAULT_TUPLES = 5_000
DEFAULT_QUERIES = 24
#: Modeled per-read latency (200 µs: far below the 2008 disk the figures
#: model, but enough to dominate the Python-side work it overlaps).
DEFAULT_READ_LATENCY = 2e-4


def _build_workload(system, rng: random.Random, n_queries: int):
    """Alternating skyline / top-k submissions (kind, kwargs) — seeded."""
    relation = system.relation
    dims = relation.schema.n_preference
    workload = []
    for index in range(n_queries):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        if index % 2 == 0:
            workload.append(("skyline", {"predicate": predicate}))
        else:
            workload.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 10,
                        "predicate": predicate,
                    },
                )
            )
    return workload


def run_serving_benchmark(
    seed: int = 7,
    n_tuples: int = DEFAULT_TUPLES,
    threads: Sequence[int] = DEFAULT_THREADS,
    n_queries: int = DEFAULT_QUERIES,
    read_latency: float = DEFAULT_READ_LATENCY,
    pool_capacity: int = 65_536,
) -> dict[str, Any]:
    """The full sweep; returns a ``repro.bench``-shaped report dict."""
    system = build_sweep_system(n_tuples)
    # The build runs latency-free; only serving pays the modeled device.
    system.disk.read_latency = read_latency
    rng = random.Random(seed)
    workload = _build_workload(system, rng, n_queries)

    # ---- cold-1: the paper mode ---------------------------------------- #
    started = time.perf_counter()
    reference = [
        getattr(system.engine, kind)(**kwargs) for kind, kwargs in workload
    ]
    cold_seconds = time.perf_counter() - started
    cold_qps = len(workload) / cold_seconds
    expected_tids = [result.tids for result in reference]

    series: dict[str, Any] = {
        "cold": {
            "points": [
                {
                    "x": 1,
                    "qps": cold_qps,
                    "wall_ms": cold_seconds * 1e3,
                    "speedup_vs_cold": 1.0,
                    "queue_wait_ms": 0.0,
                    "io": {
                        "total": sum(
                            r.stats.total_io() for r in reference
                        )
                    },
                    "results": sum(len(r.tids) for r in reference),
                }
            ]
        },
        "shared": {"points": []},
        "shared-cold": {"points": []},
    }

    # ---- shared-N: one warm pool, N workers ---------------------------- #
    pool = BufferPool(system.disk, capacity=pool_capacity)

    def run_pass(n_threads: int) -> tuple[float, list, dict]:
        with QueryExecutor(
            system,
            threads=n_threads,
            queue_depth=2 * len(workload),
            pool=pool,
        ) as executor:
            started = time.perf_counter()
            tickets = [
                getattr(executor, kind)(**kwargs)
                for kind, kwargs in workload
            ]
            results = [ticket.result(timeout=600.0) for ticket in tickets]
            elapsed = time.perf_counter() - started
            return elapsed, results, executor.stats.snapshot()

    def check(results, label: str) -> None:
        for expected, result in zip(expected_tids, results):
            if result.tids != expected:
                raise AssertionError(
                    f"{label} answer diverges from the cold baseline"
                )

    def point(n_threads, elapsed, results, stats, with_io=True):
        qps = len(workload) / elapsed
        entry = {
            "x": n_threads,
            "qps": qps,
            "wall_ms": elapsed * 1e3,
            "speedup_vs_cold": qps / cold_qps,
            "queue_wait_ms": stats["queue_wait_mean"] * 1e3,
            "results": sum(len(r.tids) for r in results),
        }
        if with_io:
            entry["io"] = {
                "total": sum(r.stats.total_io() for r in results)
            }
        return entry

    run_pass(max(threads))  # untimed warm-up: populate the shared pool

    for n_threads in threads:
        elapsed, results, stats = run_pass(n_threads)
        check(results, f"shared-{n_threads}")
        series["shared"]["points"].append(
            point(n_threads, elapsed, results, stats)
        )

    for n_threads in threads:
        pool.clear()  # every pass re-reads the working set from "disk"
        elapsed, results, stats = run_pass(n_threads)
        check(results, f"shared-cold-{n_threads}")
        series["shared-cold"]["points"].append(
            point(n_threads, elapsed, results, stats, with_io=False)
        )

    return {
        "schema": SERVING_SCHEMA,
        "seed": seed,
        "n_tuples": n_tuples,
        "n_queries": n_queries,
        "read_latency": read_latency,
        "figures": {
            "serving": {
                "title": "Serving throughput vs worker threads "
                f"(T={n_tuples}, {n_queries} queries, "
                f"{read_latency * 1e6:.0f}µs/read)",
                "series": series,
            }
        },
    }
