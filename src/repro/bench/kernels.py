"""Kernel-backend benchmark: scalar Python vs the numpy batch kernels.

``python -m repro.bench --kernels`` runs a fixed set of hot-path
workloads twice — once under ``REPRO_KERNELS=python`` and once under
``REPRO_KERNELS=numpy`` — and reports both wall clocks side by side.
The report makes two claims:

* **invariance** — for every workload the two backends must produce the
  *same answer* and the *same counted I/O* (``counters.snapshot()`` is
  compared key-by-key).  This is asserted inside the benchmark, not just
  reported: a divergence raises before any JSON is written.  The
  deterministic fields (``io.total``, ``results``) are what the
  ``--compare`` gate against the committed baseline watches.
* **speed** — the numpy backend must actually pay for its existence.
  The gated figures (``kernels_skyline``, ``kernels_topk``) each assert
  an aggregate python/numpy wall-clock ratio of at least
  :data:`DEFAULT_MIN_SPEEDUP`; wall-clock fields themselves
  (``wall_ms_python``, ``wall_ms_numpy``, ``speedup``) are named into
  :data:`repro.bench.compare.WALL_FIELDS` so the byte-level gate ignores
  machine-speed noise.

Workloads (each point is best-of-:data:`REPEATS` per backend, same
prebuilt system shared by both backends — queries never mutate):

* ``kernels_skyline`` *(gated)* — the Boolean-first full-scan skyline
  (columnar scan + chunked SFS) over anticorrelated ``Dp = 2`` data,
  where skylines are large and the scalar filter's early exit stops
  helping, plus the O(n²) :func:`dominated_mask` reference on the same
  distribution.
* ``kernels_topk`` *(gated)* — Boolean-first full-scan top-k (columnar
  scan + ``score_block``) under both a linear and a weighted-squared-
  distance function over the uniform sweep setting.
* ``kernels_search`` *(ungated)* — BBS and the Ranking method: best-
  first R-tree search is heap-dominated, so the batch kernels only trim
  the expansion cost; reported for the record, invariance-checked like
  everything else.
* ``kernels_memory`` *(ungated)* — the in-memory references on shapes
  that favour the scalar short-circuit (uniform naive skyline) or the
  Python heap (naive top-k): the honest end of the sweep.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
)
from repro.baselines.domination_first import bbs_skyline, ranking_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.data.fixtures import build_sweep_system, sweep_config
from repro.data.synthetic import generate_relation
from repro.kernels.backend import NUMPY, PYTHON, np, use_backend
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction, WeightedSquaredDistance
from repro.query.stats import QueryStats

KERNELS_SCHEMA = "repro.kernels-bench/v1"

#: Aggregate python/numpy wall ratio each gated figure must clear.
DEFAULT_MIN_SPEEDUP = 3.0
#: Best-of repeats per (workload, backend) point.
REPEATS = 3

#: Anticorrelated Dp=2 sizes for the gated skyline sweep.
SKYLINE_SIZES = (10_000, 20_000)
#: Uniform sweep sizes for the gated full-scan top-k sweep.
TOPK_SIZES = (20_000, 50_000)
#: Anticorrelated sizes for the (heap-dominated, ungated) BBS series.
SEARCH_SIZES = (3_000, 6_000)
#: In-memory skyline reference size (O(n²) — keep it modest).
MEMORY_SKYLINE_SIZE = 2_000
#: In-memory top-k reference size (linear scoring sweep).
MEMORY_TOPK_SIZE = 50_000

_EMPTY = BooleanPredicate()
#: The Figure-13 query family, one fixed member (a, b, c > 0).
_LINEAR = LinearFunction((0.4, 0.35, 0.25))
#: An Example-1 style target query (kernel-heavy scoring).
_WSD = WeightedSquaredDistance(
    target=(0.25, 0.5, 0.75), weights=(1.0, 0.8, 0.6)
)
_TOPK_K = 10


def _measure(
    run: Callable[[], tuple[Any, QueryStats]],
) -> tuple[float, Any, dict[str, int]]:
    """Best-of-:data:`REPEATS` wall seconds, plus answer and I/O counts."""
    best = float("inf")
    answer: Any = None
    snapshot: dict[str, int] = {}
    for _ in range(REPEATS):
        started = time.perf_counter()
        answer, stats = run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        snapshot = stats.counters.snapshot()
    return best, answer, snapshot


def _point(
    x: int, run: Callable[[], tuple[Any, QueryStats]]
) -> dict[str, Any]:
    """One sweep point: the same workload under both backends.

    Asserts backend invariance (identical answer, identical counted I/O)
    before reporting; the returned dict carries the deterministic gate
    fields plus the wall-clock pair.
    """
    with use_backend(PYTHON):
        python_wall, python_answer, python_io = _measure(run)
    with use_backend(NUMPY):
        numpy_wall, numpy_answer, numpy_io = _measure(run)
    if numpy_answer != python_answer:
        raise AssertionError(
            f"backend answers diverge at x={x}: "
            f"python={len(python_answer)} rows, numpy={len(numpy_answer)}"
        )
    if numpy_io != python_io:
        raise AssertionError(
            f"counted I/O diverges at x={x}: "
            f"python={python_io}, numpy={numpy_io}"
        )
    return {
        "x": x,
        "wall_ms_python": python_wall * 1e3,
        "wall_ms_numpy": numpy_wall * 1e3,
        "speedup": python_wall / numpy_wall if numpy_wall > 0 else 0.0,
        "io": {"total": float(sum(python_io.values()))},
        "results": len(python_answer),
    }


def _figure_speedup(figure: dict[str, Any]) -> float:
    """Aggregate python/numpy ratio over every point of a figure."""
    python_total = 0.0
    numpy_total = 0.0
    for series in figure["series"].values():
        for point in series["points"]:
            python_total += point["wall_ms_python"]
            numpy_total += point["wall_ms_numpy"]
    return python_total / numpy_total if numpy_total > 0 else 0.0


def run_kernels_benchmark(
    seed: int = 7,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> dict[str, Any]:
    """The full kernel sweep; returns a ``repro.bench``-shaped report."""
    if np is None:  # pragma: no cover - environment guard
        raise RuntimeError(
            "--kernels needs numpy importable (there is nothing to "
            "compare against otherwise)"
        )

    # ---- gated: skyline hot paths -------------------------------------- #
    bf_sky_points = []
    for n_tuples in SKYLINE_SIZES:
        anti = build_sweep_system(
            n_tuples, n_preference=2, distribution="anticorrelated"
        )
        bf_sky_points.append(
            _point(
                n_tuples,
                lambda s=anti: boolean_first_skyline(
                    s.relation, s.indexes, _EMPTY
                ),
            )
        )
    anti_memory = list(
        generate_relation(
            sweep_config(
                MEMORY_SKYLINE_SIZE,
                n_preference=2,
                distribution="anticorrelated",
            )
        ).pref_points()
    )
    naive_anti_point = _point(
        MEMORY_SKYLINE_SIZE, lambda: _stamped(naive_skyline(anti_memory))
    )

    # ---- gated: top-k hot paths ---------------------------------------- #
    bf_linear_points = []
    bf_wsd_points = []
    topk_systems = {}
    for n_tuples in TOPK_SIZES:
        topk_systems[n_tuples] = build_sweep_system(n_tuples)
        uniform = topk_systems[n_tuples]
        bf_linear_points.append(
            _point(
                n_tuples,
                lambda s=uniform: boolean_first_topk(
                    s.relation, s.indexes, _LINEAR, _TOPK_K, _EMPTY
                ),
            )
        )
        bf_wsd_points.append(
            _point(
                n_tuples,
                lambda s=uniform: boolean_first_topk(
                    s.relation, s.indexes, _WSD, _TOPK_K, _EMPTY
                ),
            )
        )

    # ---- ungated: best-first search (heap-dominated) -------------------- #
    bbs_points = []
    for n_tuples in SEARCH_SIZES:
        anti = build_sweep_system(
            n_tuples, n_preference=2, distribution="anticorrelated"
        )
        bbs_points.append(
            _point(n_tuples, lambda s=anti: bbs_skyline(s.rtree))
        )
    ranking_system = topk_systems[TOPK_SIZES[0]]
    ranking_point = _point(
        TOPK_SIZES[0], lambda: _ranking(ranking_system)
    )

    # ---- ungated: in-memory references ---------------------------------- #
    uniform_memory = list(
        generate_relation(
            sweep_config(MEMORY_SKYLINE_SIZE, n_preference=2)
        ).pref_points()
    )
    naive_uniform_point = _point(
        MEMORY_SKYLINE_SIZE,
        lambda: _stamped(naive_skyline(uniform_memory)),
    )
    topk_memory = list(
        generate_relation(sweep_config(MEMORY_TOPK_SIZE)).pref_points()
    )
    naive_topk_point = _point(
        MEMORY_TOPK_SIZE,
        lambda: _stamped(naive_topk(topk_memory, _LINEAR, _TOPK_K)),
    )

    figures = {
        "kernels_skyline": {
            "series": {
                "boolean-first-anticorrelated": {"points": bf_sky_points},
                "naive-anticorrelated": {"points": [naive_anti_point]},
            }
        },
        "kernels_topk": {
            "series": {
                "boolean-first-linear": {"points": bf_linear_points},
                "boolean-first-wsd": {"points": bf_wsd_points},
            }
        },
        "kernels_search": {
            "series": {
                "bbs-anticorrelated": {"points": bbs_points},
                "ranking": {"points": [ranking_point]},
            }
        },
        "kernels_memory": {
            "series": {
                "naive-skyline-uniform": {"points": [naive_uniform_point]},
                "naive-topk": {"points": [naive_topk_point]},
            }
        },
    }

    gated = {}
    for name in ("kernels_skyline", "kernels_topk"):
        ratio = _figure_speedup(figures[name])
        gated[name] = ratio
        if ratio < min_speedup:
            raise AssertionError(
                f"{name}: aggregate numpy speedup {ratio:.2f}x is below "
                f"the {min_speedup:g}x gate"
            )

    return {
        "schema": KERNELS_SCHEMA,
        "seed": seed,
        "min_speedup": min_speedup,
        "gate_speedups": gated,
        "figures": figures,
    }


def _ranking(system) -> tuple[Any, QueryStats]:
    ranked, stats, _ = ranking_topk(
        system.relation, system.rtree, _LINEAR, _TOPK_K, _EMPTY
    )
    return ranked, stats


def _stamped(answer: Any) -> tuple[Any, QueryStats]:
    """Wrap an in-memory result with empty stats (no counted I/O)."""
    return answer, QueryStats()
