"""Durability sweeps: recovery time vs WAL length, and scrub overhead.

Two figures, both answering an operator's question with paired, seeded
measurements:

* **recovery** — how does restart cost grow with the committed history?
  Two series over the number of journalled operations: ``wal_only``
  restores from the base checkpoint and replays the *entire* committed
  WAL, ``checkpointed`` restores from the newest fuzzy checkpoint and
  replays only the post-watermark tail.  The gateable contract is the
  shape: ``ops_replayed`` / ``record_reads`` grow linearly for
  ``wal_only`` but stay bounded (below one checkpoint interval) for
  ``checkpointed``, whose ``segments_skipped`` grows instead.  Every
  restore is verified byte-identical to the live system before its point
  is reported.

* **scrub_overhead** — what does continuous scrubbing cost the serving
  path?  The resilience-bench paired pattern: the same seeded workload
  over warm pools, ``bare`` (no scrubber) vs ``scrubbed`` (background
  scrubber at the default throttle), interleaved repeats, median pass.
  ``overhead_pct`` is wall-clock (excluded from the ``--compare`` gate);
  the gated contract is that ``io.total`` and ``results`` are identical —
  the scrubber reads via :meth:`~repro.storage.disk.SimulatedDisk.peek`
  and pinned snapshots, never through the query path's counters.

``python -m repro.bench --durability`` writes ``BENCH_durability.json``;
CI gates it against ``benchmarks/baselines/bench_durability_baseline.json``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Sequence

from repro.backup import answer_fingerprint
from repro.bench.serving import DEFAULT_READ_LATENCY, _build_workload
from repro.core.checkpoint import CheckpointManager, restore_system
from repro.data.fixtures import build_sweep_system
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.serve.executor import QueryExecutor
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.system import build_system

DURABILITY_SCHEMA = "repro.durability-bench/v1"

DEFAULT_RECOVERY_OPS = (12, 24, 48)
DEFAULT_CHECKPOINT_EVERY = 8
DEFAULT_RECOVERY_TUPLES = 150
#: Small segments so every recovery point actually exercises rotation.
DEFAULT_SEGMENT_BYTES = 1024

DEFAULT_SCRUB_TUPLES = 2_000
DEFAULT_THREADS = (2, 4)
DEFAULT_QUERIES = 24
DEFAULT_REPEATS = 5


def _run_workload(system, rng: random.Random, n_ops: int) -> None:
    """The audit CLI's mixed WAL-protected maintenance workload."""
    relation = system.relation
    n_pref = relation.schema.n_preference

    def random_row():
        template = rng.randrange(len(relation))
        return (
            relation.bool_row(template),
            tuple(rng.random() for _ in range(n_pref)),
        )

    for _ in range(n_ops):
        live = [tid for tid in relation.live_tids()]
        kind = rng.choice(("insert", "batch", "delete", "update"))
        if kind == "insert":
            system.insert(*random_row())
        elif kind == "batch":
            system.insert_batch(
                [random_row() for _ in range(rng.randrange(2, 6))]
            )
        elif kind == "delete" and len(live) > 10:
            system.delete(rng.choice(live))
        else:
            system.update(
                rng.choice(live),
                tuple(rng.random() for _ in range(n_pref)),
            )


def _recovery_point(
    n_ops: int,
    checkpoint_every: int | None,
    seed: int,
    n_tuples: int,
    segment_bytes: int,
) -> dict[str, Any]:
    """Build, journal ``n_ops`` operations, restore, verify, report."""
    config = SyntheticConfig(
        n_tuples=n_tuples, n_boolean=2, n_preference=2, seed=seed
    )
    system = build_system(
        generate_relation(config, disk=SimulatedDisk()),
        fanout=6,
        wal_segment_bytes=segment_bytes,
    )
    manager = CheckpointManager(system)
    manager.create()  # the base image both series restore from
    rng = random.Random(seed + n_ops)
    done = 0
    while done < n_ops:
        step = min(checkpoint_every or n_ops, n_ops - done)
        _run_workload(system, rng, step)
        done += step
        # The final chunk stays uncheckpointed so the checkpointed series
        # always has a realistic tail to replay (bounded by the interval).
        if checkpoint_every and done < n_ops:
            manager.create()

    started = time.perf_counter()
    result = restore_system(system.disk)
    wall = time.perf_counter() - started
    if answer_fingerprint(result.system) != answer_fingerprint(system):
        raise AssertionError(
            f"restored answers diverge from the live system "
            f"(n_ops={n_ops}, checkpoint_every={checkpoint_every})"
        )
    return {
        "x": n_ops,
        "wall_ms": wall * 1e3,
        "ops_replayed": result.ops_replayed,
        "row_pages_read": result.row_pages_read,
        "fallbacks": result.fallbacks,
        "record_reads": result.wal_metrics["record_reads"],
        "seal_reads": result.wal_metrics["seal_reads"],
        "segments_skipped": result.wal_metrics["segments_skipped"],
        "segments_scanned": result.wal_metrics["segments_scanned"],
        "wal_segments": len(system.wal.segments()),
    }


def _scrub_series(
    seed: int,
    n_tuples: int,
    threads: Sequence[int],
    n_queries: int,
    repeats: int,
    read_latency: float,
    pool_capacity: int,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Paired bare-vs-scrubbed serving sweep; returns (series, stats)."""
    system = build_sweep_system(n_tuples)
    system.disk.read_latency = read_latency
    rng = random.Random(seed)
    workload = _build_workload(system, rng, n_queries)
    expected_tids = [
        getattr(system.engine, kind)(**kwargs).tids
        for kind, kwargs in workload
    ]

    def run_pass(scrub: bool, pool, n_threads: int):
        with QueryExecutor(
            system,
            threads=n_threads,
            queue_depth=2 * len(workload),
            pool=pool,
        ) as executor:
            if scrub:
                # The continuous-scrubbing rate an idle-ish deployment
                # would run: small work quanta, long naps.  The sweeps are
                # pure CPU, so the duty cycle *is* the serving overhead.
                executor.enable_scrubbing(
                    pages_per_tick=64, cells_per_tick=4, interval=0.01
                )
            started = time.perf_counter()
            tickets = [
                getattr(executor, kind)(**kwargs)
                for kind, kwargs in workload
            ]
            results = [ticket.result(timeout=600.0) for ticket in tickets]
            elapsed = time.perf_counter() - started
            scrub_stats = (
                executor.scrubber.stats.snapshot() if scrub else None
            )
        for expected, result in zip(expected_tids, results):
            if result.tids != expected:
                raise AssertionError(
                    "durability-bench answer diverges from the serial engine"
                )
        return elapsed, results, scrub_stats

    series: dict[str, Any] = {
        "bare": {"points": []},
        "scrubbed": {"points": []},
    }
    scrub_stats_by_threads: dict[str, Any] = {}
    for n_threads in threads:
        pools = {
            "bare": BufferPool(system.disk, capacity=pool_capacity),
            "scrubbed": BufferPool(system.disk, capacity=pool_capacity),
        }
        for label in pools:  # warm-up
            run_pass(label == "scrubbed", pools[label], n_threads)
        outcomes: dict[str, list] = {"bare": [], "scrubbed": []}
        order = ["bare", "scrubbed"]
        for round_index in range(repeats):
            if round_index % 2:
                order = order[::-1]
            for label in order:
                outcomes[label].append(
                    run_pass(label == "scrubbed", pools[label], n_threads)
                )

        def median_pass(label: str):
            ranked = sorted(outcomes[label], key=lambda item: item[0])
            return ranked[len(ranked) // 2]

        bare_elapsed, bare_results, _ = median_pass("bare")
        scrub_elapsed, scrub_results, scrub_stats = median_pass("scrubbed")
        base_point = {
            "x": n_threads,
            "wall_ms": bare_elapsed * 1e3,
            "qps": len(workload) / bare_elapsed,
            "io": {"total": sum(r.stats.total_io() for r in bare_results)},
            "results": sum(len(r.tids) for r in bare_results),
        }
        scrub_point = {
            "x": n_threads,
            "wall_ms": scrub_elapsed * 1e3,
            "qps": len(workload) / scrub_elapsed,
            "overhead_pct": (
                (scrub_elapsed - bare_elapsed) / bare_elapsed * 100
            ),
            "io": {"total": sum(r.stats.total_io() for r in scrub_results)},
            "results": sum(len(r.tids) for r in scrub_results),
        }
        if scrub_point["io"] != base_point["io"]:
            raise AssertionError(
                "scrubbing changed the query path's I/O "
                f"({scrub_point['io']} vs {base_point['io']})"
            )
        # Pass counts and scan totals move with machine speed — report
        # them outside the figures so the --compare gate never sees them.
        scrub_stats_by_threads[str(n_threads)] = scrub_stats
        series["bare"]["points"].append(base_point)
        series["scrubbed"]["points"].append(scrub_point)
    return series, scrub_stats_by_threads


def run_durability_benchmark(
    seed: int = 7,
    recovery_ops: Sequence[int] = DEFAULT_RECOVERY_OPS,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    recovery_tuples: int = DEFAULT_RECOVERY_TUPLES,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    scrub_tuples: int = DEFAULT_SCRUB_TUPLES,
    threads: Sequence[int] = DEFAULT_THREADS,
    n_queries: int = DEFAULT_QUERIES,
    repeats: int = DEFAULT_REPEATS,
    read_latency: float = DEFAULT_READ_LATENCY,
    pool_capacity: int = 65_536,
) -> dict[str, Any]:
    """Both sweeps; returns a ``repro.bench``-shaped report dict."""
    recovery_series: dict[str, Any] = {
        "wal_only": {"points": []},
        "checkpointed": {"points": []},
    }
    for n_ops in recovery_ops:
        recovery_series["wal_only"]["points"].append(
            _recovery_point(
                n_ops, None, seed, recovery_tuples, segment_bytes
            )
        )
        recovery_series["checkpointed"]["points"].append(
            _recovery_point(
                n_ops, checkpoint_every, seed, recovery_tuples, segment_bytes
            )
        )

    scrub_series, scrub_stats = _scrub_series(
        seed,
        scrub_tuples,
        threads,
        n_queries,
        repeats,
        read_latency,
        pool_capacity,
    )

    return {
        "schema": DURABILITY_SCHEMA,
        "seed": seed,
        "checkpoint_every": checkpoint_every,
        "recovery_tuples": recovery_tuples,
        "segment_bytes": segment_bytes,
        "scrub_tuples": scrub_tuples,
        "n_queries": n_queries,
        "repeats": repeats,
        "read_latency": read_latency,
        "scrub_stats": scrub_stats,
        "figures": {
            "recovery": {
                "title": "Recovery cost vs committed WAL length "
                f"(T={recovery_tuples}, checkpoint every "
                f"{checkpoint_every} ops)",
                "series": recovery_series,
            },
            "scrub_overhead": {
                "title": "Serving overhead of the background scrubber "
                f"(T={scrub_tuples}, {n_queries} queries, "
                f"median of {repeats})",
                "series": scrub_series,
            },
        },
    }
