"""Baseline comparison: the CI regression gate behind ``--compare``.

Only deterministic metrics are gated — io counts, heap peaks, prune counts,
result counts, materialised sizes.  Wall-clock fields (anything named
``wall_ms``) are reported for information but never fail the gate by
default: the runner's point of difference from a profiler is that its
gateable numbers are pure functions of the seeded input, so a failure means
*the algorithm changed*, not that the CI machine was busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

#: Fields that vary run-to-run and are excluded from determinism/gating.
#: Besides raw wall clock this covers the serving sweep's derived
#: throughput numbers (queries/second, speedup, queue waits) — they all
#: move with machine load, while the sweep's io counts and result counts
#: stay gateable.
WALL_FIELDS = frozenset(
    {
        "wall_ms",
        "qps",
        "speedup_vs_cold",
        "queue_wait_ms",
        "overhead_pct",
        # Routing-sweep wall derivatives, plus hit_rate: the gate only
        # flags *increases*, so a hit-rate drop would slip through it
        # anyway — the routing bench asserts its floor itself and the
        # gate watches cache_misses (where more is unambiguously worse).
        "wall_ratio_vs_best_pinned",
        "hit_rate",
        # Kernel-bench wall pair and its derivatives: machine-speed facts,
        # not determinism facts.  The --kernels run gates its own speedup
        # floor in-process; the compare gate watches io.total / results.
        "wall_ms_python",
        "wall_ms_numpy",
        "speedup",
        "gate_speedups",
    }
)

#: Float-representation tolerance.  Gated metrics are deterministic
#: functions of the seeded input, so anything beyond rounding error is a
#: genuine change and should face the relative gate.
ABS_SLACK = 1e-9


@dataclass(frozen=True)
class Delta:
    """One metric that moved between baseline and current."""

    path: str  # "fig09/Signature/x=20000/io.SBLOCK"
    baseline: float
    current: float

    @property
    def pct(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return 100.0 * (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        pct = self.pct
        pct_text = "new" if pct == float("inf") else f"{pct:+.1f}%"
        return (
            f"{self.path}: {self.baseline:g} -> {self.current:g}"
            f" ({pct_text})"
        )


def flatten_metrics(
    point: dict[str, Any], include_wall: bool = False
) -> dict[str, float]:
    """Dotted metric paths of one series point, minus ``x``."""
    flat: dict[str, float] = {}

    def walk(prefix: str, value) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else key, value[key])
        elif isinstance(value, (int, float)):
            name = prefix.rsplit(".", 1)[-1]
            if name != "x" and (include_wall or name not in WALL_FIELDS):
                flat[prefix] = float(value)

    walk("", point)
    return flat


def _iter_points(
    report: dict[str, Any],
) -> Iterator[tuple[str, str, Any, dict[str, Any]]]:
    for fig_name in sorted(report.get("figures", {})):
        figure = report["figures"][fig_name]
        for series_name in sorted(figure.get("series", {})):
            for point in figure["series"][series_name].get("points", []):
                yield fig_name, series_name, point.get("x"), point


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    fail_over: float = 10.0,
    include_wall: bool = False,
) -> tuple[list[Delta], list[str]]:
    """Diff two reports; return (regressions, notes).

    A metric regresses when it exceeds the baseline by more than
    ``fail_over`` percent *and* by more than :data:`ABS_SLACK` absolute.
    Figures/series/points present on only one side are noted, not failed
    (baselines are expected to lag when scenarios are added).
    """
    baseline_points = {
        (fig, series, x): point
        for fig, series, x, point in _iter_points(baseline)
    }
    regressions: list[Delta] = []
    notes: list[str] = []
    seen: set[tuple] = set()

    for fig, series, x, point in _iter_points(current):
        key = (fig, series, x)
        seen.add(key)
        base_point = baseline_points.get(key)
        if base_point is None:
            notes.append(f"{fig}/{series}/x={x}: not in baseline (skipped)")
            continue
        base_metrics = flatten_metrics(base_point, include_wall)
        for path, value in flatten_metrics(point, include_wall).items():
            if path not in base_metrics:
                notes.append(f"{fig}/{series}/x={x}/{path}: new metric")
                continue
            base = base_metrics[path]
            slack = max(abs(base) * fail_over / 100.0, ABS_SLACK)
            if value - base > slack:
                regressions.append(
                    Delta(f"{fig}/{series}/x={x}/{path}", base, value)
                )

    for key in baseline_points.keys() - seen:
        fig, series, x = key
        notes.append(f"{fig}/{series}/x={x}: missing from current run")

    regressions.sort(key=lambda d: d.path)
    return regressions, notes
