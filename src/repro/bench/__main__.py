"""CLI entry point: ``python -m repro.bench``.

Examples::

    PYTHONPATH=src python -m repro.bench --figures fig08,fig09,fig13 --seed 7
    PYTHONPATH=src python -m repro.bench --sizes 2000,5000 --queries 3 \\
        --out smoke.json
    PYTHONPATH=src python -m repro.bench --sizes 2000,5000 --queries 3 \\
        --compare benchmarks/baselines/bench_smoke_baseline.json \\
        --fail-over 10

Exit status: 0 on success, 1 when ``--compare`` finds a regression over
``--fail-over`` percent, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.bench import (
    SCENARIOS,
    compare_reports,
    dumps_report,
    render_report,
    run_benchmarks,
)
from repro.bench.durability import (
    DEFAULT_THREADS as DURABILITY_THREADS,
    run_durability_benchmark,
)
from repro.bench.kernels import run_kernels_benchmark
from repro.bench.resilience import run_resilience_benchmark
from repro.bench.routing import run_routing_benchmark
from repro.bench.serving import (
    DEFAULT_THREADS as SERVING_THREADS,
    run_serving_benchmark,
)
from repro.data.fixtures import N_QUERIES, SWEEP_SIZES


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproducible P-Cube benchmark runner.",
    )
    parser.add_argument(
        "--figures",
        default=None,
        help="comma-separated figure names (default: all; see --list)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="query-workload seed (data-set seeds are size-derived)",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated sweep sizes (default: "
        + ",".join(str(n) for n in SWEEP_SIZES)
        + ")",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=N_QUERIES,
        help=f"queries averaged per data point (default: {N_QUERIES})",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="run the concurrent-serving throughput sweep instead of the "
        "figure scenarios (writes BENCH_serving.json by default)",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help="run the fault-free resilience-overhead micro-sweep (bare vs "
        "default-on executor; writes BENCH_resilience.json by default)",
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help="run the durability sweeps (recovery time vs WAL length with "
        "and without checkpoints; background-scrubber serving overhead; "
        "writes BENCH_durability.json by default)",
    )
    parser.add_argument(
        "--routing",
        action="store_true",
        help="run the adaptive-routing sweep (pinned engines vs routed "
        "cold/warm vs the served path over a Zipfian workload; writes "
        "BENCH_routing.json by default)",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="run the kernel-backend sweep (scalar python vs numpy batch "
        "kernels; asserts identical answers and counted I/O, gates the "
        "numpy speedup floor; writes BENCH_kernels.json by default)",
    )
    parser.add_argument(
        "--serving-threads",
        default=None,
        metavar="N,N,...",
        help="worker-thread counts for --serving (default: "
        + ",".join(str(n) for n in SERVING_THREADS)
        + ")",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_pcube.json, or "
        "BENCH_serving.json with --serving)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline JSON to diff deterministic metrics against",
    )
    parser.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="PCT",
        help="with --compare: exit 1 when any gated metric regresses by "
        "more than PCT percent",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list known figures and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text summary tables",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name}  {doc[0] if doc else ''}")
        return 0
    if args.fail_over is not None and args.compare is None:
        parser.error("--fail-over requires --compare")
    if args.queries < 1:
        parser.error("--queries must be >= 1")

    if (
        sum(
            (
                args.serving,
                args.resilience,
                args.durability,
                args.routing,
                args.kernels,
            )
        )
        > 1
    ):
        parser.error(
            "--serving, --resilience, --durability, --routing and "
            "--kernels are mutually exclusive"
        )
    if args.kernels:
        report = run_kernels_benchmark(seed=args.seed)
    elif args.routing:
        report = run_routing_benchmark(seed=args.seed)
    elif args.serving or args.resilience or args.durability:
        if args.serving_threads:
            try:
                threads = [int(n) for n in _csv(args.serving_threads)]
            except ValueError:
                parser.error(
                    f"--serving-threads must be integers: "
                    f"{args.serving_threads!r}"
                )
        elif args.durability:
            threads = list(DURABILITY_THREADS)
        else:
            threads = list(SERVING_THREADS)
        if args.resilience:
            report = run_resilience_benchmark(seed=args.seed, threads=threads)
        elif args.durability:
            report = run_durability_benchmark(seed=args.seed, threads=threads)
        else:
            report = run_serving_benchmark(seed=args.seed, threads=threads)
    else:
        figures = _csv(args.figures) if args.figures else None
        try:
            sizes = (
                [int(n) for n in _csv(args.sizes)] if args.sizes else None
            )
        except ValueError:
            parser.error(f"--sizes must be integers: {args.sizes!r}")
        try:
            report = run_benchmarks(
                figures=figures,
                seed=args.seed,
                sizes=sizes,
                n_queries=args.queries,
            )
        except ValueError as exc:  # unknown figure name
            parser.error(str(exc))

    if args.out is not None:
        default_out = args.out
    elif args.kernels:
        default_out = "BENCH_kernels.json"
    elif args.routing:
        default_out = "BENCH_routing.json"
    elif args.durability:
        default_out = "BENCH_durability.json"
    elif args.resilience:
        default_out = "BENCH_resilience.json"
    elif args.serving:
        default_out = "BENCH_serving.json"
    else:
        default_out = "BENCH_pcube.json"
    out_path = Path(default_out)
    out_path.write_text(dumps_report(report))
    if not args.quiet:
        text = render_report(report)
        if text:
            print(text)
            print()
    print(f"wrote {out_path}")

    if args.compare is None:
        return 0

    baseline_path = Path(args.compare)
    if not baseline_path.exists():
        print(f"baseline not found: {baseline_path}", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    fail_over = args.fail_over if args.fail_over is not None else 10.0
    regressions, notes = compare_reports(
        report, baseline, fail_over=fail_over
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"{len(regressions)} metric(s) regressed over "
            f"{fail_over:g}% vs {baseline_path}:"
        )
        for delta in regressions:
            print(f"  REGRESSION {delta.describe()}")
        return 1 if args.fail_over is not None else 0
    print(f"no regressions over {fail_over:g}% vs {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
