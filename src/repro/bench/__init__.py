"""Reproducible benchmark runner: ``python -m repro.bench``.

Runs the seeded sweeps behind the ``benchmarks/test_fig*.py`` figures and
emits one ``BENCH_pcube.json``::

    {
      "schema": "repro.bench/v1",
      "seed": 7, "sizes": [...], "n_queries": 5,
      "figures": {
        "fig08": {
          "title": "...",
          "series": {
            "Signature": {"points": [
              {"x": 10000, "wall_ms": ..., "io": {"SSIG": ..., "total": ...},
               "heap_peak": ..., "prune_counts": {"pref": ..., "bool": ...},
               "results": ...}, ...]},
            ...
          }
        }, ...
      }
    }

Two runs with the same seed produce byte-identical JSON modulo the
``wall_ms`` fields; everything else is gateable with
``--compare baseline.json --fail-over pct`` (see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.bench.compare import (
    WALL_FIELDS,
    Delta,
    compare_reports,
    flatten_metrics,
)
from repro.bench.report import format_table, render_report
from repro.bench.scenarios import SCENARIOS, BenchContext
from repro.data.fixtures import N_QUERIES, SWEEP_SIZES

SCHEMA = "repro.bench/v1"

__all__ = [
    "SCENARIOS",
    "SCHEMA",
    "WALL_FIELDS",
    "BenchContext",
    "Delta",
    "compare_reports",
    "dumps_report",
    "flatten_metrics",
    "format_table",
    "render_report",
    "run_benchmarks",
    "strip_wall",
]


def run_benchmarks(
    figures: Iterable[str] | None = None,
    seed: int = 7,
    sizes: Iterable[int] | None = None,
    n_queries: int = N_QUERIES,
) -> dict[str, Any]:
    """Run the selected figure scenarios and assemble the report dict."""
    selected = list(figures) if figures is not None else list(SCENARIOS)
    unknown = [name for name in selected if name not in SCENARIOS]
    if unknown:
        known = ", ".join(SCENARIOS)
        raise ValueError(f"unknown figures {unknown}; known: {known}")
    ctx = BenchContext(
        seed=seed,
        sizes=tuple(sizes) if sizes is not None else SWEEP_SIZES,
        n_queries=n_queries,
    )
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "seed": ctx.seed,
        "sizes": list(ctx.sizes),
        "n_queries": ctx.n_queries,
        "figures": {},
    }
    for name in selected:
        report["figures"][name] = SCENARIOS[name](ctx)
    return report


def dumps_report(report: dict[str, Any]) -> str:
    """Canonical JSON text: sorted keys, two-space indent, newline-final."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def strip_wall(value: Any) -> Any:
    """A deep copy with every wall-clock field removed — the part of a
    report that must be byte-identical across same-seed runs."""
    if isinstance(value, dict):
        return {
            key: strip_wall(item)
            for key, item in value.items()
            if key not in WALL_FIELDS
        }
    if isinstance(value, list):
        return [strip_wall(item) for item in value]
    return value
