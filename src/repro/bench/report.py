"""Text rendering for benchmark reports (the human-facing half).

The JSON report is the machine interface (see :mod:`repro.bench` for the
schema); this module turns it back into the compact tables the pytest
benchmark suite prints, so ``python -m repro.bench`` output reads like
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any


def fmt_ms(ms: float) -> str:
    if ms < 1.0:
        return f"{ms * 1e3:.0f}us"
    if ms < 1000.0:
        return f"{ms:.1f}ms"
    return f"{ms / 1e3:.2f}s"


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """One aligned table, EXPERIMENTS.md style."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = [f"=== {title} ==="]
    lines.append(
        "  " + "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    )
    for row in rows:
        lines.append(
            "  " + "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def _point_cells(point: dict[str, Any]) -> list[str]:
    io = point.get("io") or {}
    prunes = point.get("prune_counts") or {}
    cells = [
        fmt_ms(point["wall_ms"]) if "wall_ms" in point else "-",
        f"{io['total']:.1f}" if "total" in io else "-",
        f"{point['heap_peak']:.1f}" if "heap_peak" in point else "-",
    ]
    if prunes:
        cells.append(f"{prunes.get('pref', 0):.1f}/{prunes.get('bool', 0):.1f}")
    elif "size_mb" in point:
        cells.append(f"{point['size_mb']:.2f}MB")
    else:
        cells.append("-")
    return cells


def render_report(report: dict[str, Any]) -> str:
    """Render every figure of a report as one text block."""
    blocks: list[str] = []
    for name in sorted(report.get("figures", {})):
        figure = report["figures"][name]
        rows = []
        for series_name in sorted(figure.get("series", {})):
            series = figure["series"][series_name]
            for point in series.get("points", []):
                rows.append(
                    [series_name, point.get("x", "-")]
                    + _point_cells(point)
                )
        if not rows:
            continue
        blocks.append(
            format_table(
                f"{name}: {figure.get('title', '')}",
                ["series", "x", "wall", "io", "heap", "pref/bool"],
                rows,
            )
        )
    return "\n\n".join(blocks)
