"""Fault-free overhead of the serving resilience plumbing.

The resilience layer (deadline-budgeted retries, the per-(cell, SID)
breaker board, shed checks, degradation dispatch — see
:mod:`repro.serve.resilience`) sits on the hot path of *every* query, so
its cost when nothing is failing is the price of being prepared.  This
micro-sweep measures that price directly, paired on one machine in one
process:

* **bare** — the executor stripped back to plain concurrent serving:
  ``Resilience(breaker_threshold=0, shed=False,
  degradation=DegradationPolicy(allow_boolean_first=False))``;
* **resilient** — the default-on configuration every deployment gets.

Both serve the same seeded fault-free workload over a warm shared pool;
the ``resilient`` series reports ``overhead_pct`` (its wall time vs bare,
same thread count).  Wall-clock fields — ``overhead_pct`` included — move
with machine load and are excluded from the ``--compare`` gate
(:data:`repro.bench.compare.WALL_FIELDS`); the gateable contract is that
``io.total`` and ``results`` are *identical* across the two series: on the
fault-free path the plumbing may cost nanoseconds, never pages.  Answers
are asserted byte-identical to the serial engine as always.
"""

from __future__ import annotations

import random
import time
from typing import Any, Sequence

from repro.bench.serving import DEFAULT_READ_LATENCY, _build_workload
from repro.data.fixtures import build_sweep_system
from repro.serve.executor import QueryExecutor
from repro.serve.resilience import DegradationPolicy, Resilience
from repro.storage.buffer import BufferPool

RESILIENCE_SCHEMA = "repro.resilience-bench/v1"

DEFAULT_THREADS = (1, 2, 4)
DEFAULT_TUPLES = 5_000
DEFAULT_QUERIES = 24
#: Timed passes per configuration; the median is reported.
DEFAULT_REPEATS = 5

#: The stripped-back executor configuration the overhead is measured
#: against — breakers off, shedding off, no boolean-first tier.
BARE = Resilience(
    breaker_threshold=0,
    degradation=DegradationPolicy(allow_boolean_first=False),
    shed=False,
)


def run_resilience_benchmark(
    seed: int = 7,
    n_tuples: int = DEFAULT_TUPLES,
    threads: Sequence[int] = DEFAULT_THREADS,
    n_queries: int = DEFAULT_QUERIES,
    read_latency: float = DEFAULT_READ_LATENCY,
    repeats: int = DEFAULT_REPEATS,
    pool_capacity: int = 65_536,
) -> dict[str, Any]:
    """The paired sweep; returns a ``repro.bench``-shaped report dict."""
    system = build_sweep_system(n_tuples)
    system.disk.read_latency = read_latency
    rng = random.Random(seed)
    workload = _build_workload(system, rng, n_queries)
    expected_tids = [
        getattr(system.engine, kind)(**kwargs).tids
        for kind, kwargs in workload
    ]

    def run_pass(resilience: Resilience, pool, n_threads: int):
        with QueryExecutor(
            system,
            threads=n_threads,
            queue_depth=2 * len(workload),
            pool=pool,
            resilience=resilience,
        ) as executor:
            started = time.perf_counter()
            tickets = [
                getattr(executor, kind)(**kwargs)
                for kind, kwargs in workload
            ]
            results = [ticket.result(timeout=600.0) for ticket in tickets]
            elapsed = time.perf_counter() - started
        for expected, result in zip(expected_tids, results):
            if result.tids != expected:
                raise AssertionError(
                    "resilience-bench answer diverges from the serial engine"
                )
        return elapsed, results, executor.stats.snapshot()

    def measure(n_threads: int):
        """Best-of-``repeats`` for both configs, with the timed passes
        interleaved (bare, resilient, bare, ...) so slow machine drift
        hits both series alike and the paired overhead stays meaningful."""
        pools = {
            "bare": BufferPool(system.disk, capacity=pool_capacity),
            "resilient": BufferPool(system.disk, capacity=pool_capacity),
        }
        configs = {"bare": BARE, "resilient": Resilience()}
        for label in configs:
            run_pass(configs[label], pools[label], n_threads)  # warm-up
        outcomes: dict[str, list] = {"bare": [], "resilient": []}
        order = ["bare", "resilient"]
        for round_index in range(repeats):
            # Alternate who goes first: the second pass of a round runs
            # into caches (and garbage) the first one warmed (produced),
            # and that bias must not land on one series only.
            if round_index % 2:
                order = order[::-1]
            for label in order:
                outcomes[label].append(
                    run_pass(configs[label], pools[label], n_threads)
                )
        # Report each config's median-wall pass: less load-sensitive than
        # the mean, less lucky than the minimum.
        def median_pass(label: str):
            ranked = sorted(outcomes[label], key=lambda item: item[0])
            return ranked[len(ranked) // 2]

        return median_pass("bare"), median_pass("resilient")

    series: dict[str, Any] = {"bare": {"points": []}, "resilient": {"points": []}}
    for n_threads in threads:
        bare, resilient = measure(n_threads)
        bare_elapsed, bare_results, _ = bare
        res_elapsed, res_results, res_stats = resilient
        base_point = {
            "x": n_threads,
            "wall_ms": bare_elapsed * 1e3,
            "qps": len(workload) / bare_elapsed,
            "io": {
                "total": sum(r.stats.total_io() for r in bare_results)
            },
            "results": sum(len(r.tids) for r in bare_results),
        }
        resilient_point = {
            "x": n_threads,
            "wall_ms": res_elapsed * 1e3,
            "qps": len(workload) / res_elapsed,
            "overhead_pct": (res_elapsed - bare_elapsed) / bare_elapsed * 100,
            "io": {
                "total": sum(r.stats.total_io() for r in res_results)
            },
            "results": sum(len(r.tids) for r in res_results),
            # Fault-free: the machinery must stay entirely idle.
            "degraded_queries": res_stats["degraded_queries"],
            "breaker_skips": res_stats["breaker_skips"],
            "shed": res_stats["shed"],
        }
        if resilient_point["io"] != base_point["io"]:
            raise AssertionError(
                "resilience plumbing changed fault-free I/O "
                f"({resilient_point['io']} vs {base_point['io']})"
            )
        series["bare"]["points"].append(base_point)
        series["resilient"]["points"].append(resilient_point)

    return {
        "schema": RESILIENCE_SCHEMA,
        "seed": seed,
        "n_tuples": n_tuples,
        "n_queries": n_queries,
        "read_latency": read_latency,
        "repeats": repeats,
        "figures": {
            "resilience": {
                "title": "Fault-free overhead of serving resilience "
                f"(T={n_tuples}, {n_queries} queries, median of {repeats})",
                "series": series,
            }
        },
    }
