"""Routing sweep: adaptive engine choice + result cache vs pinned engines.

One seeded system, one seeded *Zipfian* workload (a few hot query templates
dominate, a long tail appears once — the regime a result cache exists for),
under the serving benchmark's modeled per-read latency.  Four passes:

* **pinned-<engine>** — every query forced through one engine (cache off,
  cold pool per query).  Per-engine io/wall over the queries that engine
  *covers* (index-merge covers only top-k; the others cover everything).
* **routed-cold** — the adaptive router, cache off.  Every query's counted
  I/O is asserted byte-identical to the pinned run of whichever engine the
  router chose — routing itself costs zero counted I/O.
* **routed-warm** — the adaptive router with the epoch-keyed cache.  The
  bench asserts a cache hit-rate ≥ 0.5 (Zipf repeats at a stable epoch)
  and total wall ≤ the best full-coverage pinned engine's wall × 1.1, and
  that every answer is byte-identical to the canonical reference.
* **served** — the end-to-end path: a ``QueryExecutor(routing=True)``
  serving the same stream, with the ``ServingStats`` routing counters
  reconciled exactly against the workload.

Gate fields (``--compare``): per-series ``io.total``, ``results``,
``cache_misses`` and the per-engine route counts — all deterministic
functions of the seed.  ``wall_ms``, ``hit_rate`` and
``wall_ratio_vs_best_pinned`` are informational (see
:data:`repro.bench.compare.WALL_FIELDS`).
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.data.fixtures import build_sweep_system
from repro.data.workload import zipfian_workload
from repro.query.session import QuerySession
from repro.route import (
    NAIVE,
    STRATEGY_ORDER,
    QueryRouter,
    RoutingPolicy,
    StrategyUnsupported,
)
from repro.serve.executor import QueryExecutor

ROUTING_SCHEMA = "repro.routing-bench/v1"

DEFAULT_TUPLES = 2_000
DEFAULT_QUERIES = 160
DEFAULT_TEMPLATES = 24
DEFAULT_READ_LATENCY = 2e-4
#: Engines that can answer every query in the workload (index-merge
#: cannot: it is top-k only), i.e. the candidates for "best pinned wall".
FULL_COVERAGE = tuple(n for n in STRATEGY_ORDER if n != "index-merge")


def _canonical(result) -> tuple:
    """The comparable bytes of an answer (scores rounded for float repr)."""
    if result.scores is None:
        return (tuple(result.tids), None)
    return (
        tuple(result.tids),
        tuple(round(score, 9) for score in result.scores),
    )


def _same_answer(answer: tuple, expected: tuple, kind: str) -> bool:
    """Byte-identity up to the repo's differential convention: skylines by
    tids, top-k by the sorted score vector (membership ties at the k
    boundary are legitimately engine-specific; the scores never are)."""
    if kind == "topk":
        return answer[1] == expected[1]
    return answer[0] == expected[0]


def _route_one(router: QueryRouter, session: QuerySession, query: dict):
    return router.route(
        session,
        query["kind"],
        predicate=query["predicate"],
        fn=query["fn"],
        k=query["k"],
    )


def run_routing_benchmark(
    seed: int = 7,
    n_tuples: int = DEFAULT_TUPLES,
    n_queries: int = DEFAULT_QUERIES,
    n_templates: int = DEFAULT_TEMPLATES,
    read_latency: float = DEFAULT_READ_LATENCY,
) -> dict[str, Any]:
    """The full routing sweep; returns a ``repro.bench``-shaped report."""
    system = build_sweep_system(n_tuples)
    system.disk.read_latency = read_latency
    rng = random.Random(seed)
    workload = zipfian_workload(
        system.relation, rng, n_queries, n_templates=n_templates
    )
    system.enable_epochs()
    snapshot = system.pin_snapshot()
    series: dict[str, Any] = {}

    # ---- pinned passes: one engine each, cache off --------------------- #
    pinned_io: dict[str, dict[int, int]] = {}
    pinned_wall: dict[str, float] = {}
    pinned_answers: dict[str, dict[int, tuple]] = {}
    for engine in STRATEGY_ORDER:
        router = QueryRouter.for_system(
            system, policy=RoutingPolicy(forced=engine, cache=False)
        )
        session = QuerySession.for_snapshot(snapshot)
        per_query: dict[int, int] = {}
        answers: dict[int, tuple] = {}
        results = 0
        started = time.perf_counter()
        for index, query in enumerate(workload):
            try:
                result = _route_one(router, session, query)
            except StrategyUnsupported:
                continue  # this engine does not cover this query shape
            per_query[index] = result.stats.total_io()
            answers[index] = _canonical(result)
            results += len(result.tids)
        wall = time.perf_counter() - started
        pinned_io[engine] = per_query
        pinned_wall[engine] = wall
        pinned_answers[engine] = answers
        series[f"pinned-{engine}"] = {
            "points": [
                {
                    "x": 1,
                    "wall_ms": wall * 1e3,
                    "io": {"total": sum(per_query.values())},
                    "covered": len(per_query),
                    "results": results,
                }
            ]
        }
    assert len(pinned_answers[NAIVE]) == len(workload)
    reference = [pinned_answers[NAIVE][i] for i in range(len(workload))]
    # Every pinned engine's canonical answer must match ground truth
    # wherever it covered the query.  (Top-k score ties at the k boundary
    # are legitimately engine-specific in *membership*, but the scores are
    # identical — compare scores for topk, tids for skylines.)
    for engine, answers in pinned_answers.items():
        for index, answer in answers.items():
            if not _same_answer(
                answer, reference[index], workload[index]["kind"]
            ):
                raise AssertionError(
                    f"pinned {engine} diverges from naive on query {index}"
                )

    best_pinned_wall = min(pinned_wall[name] for name in FULL_COVERAGE)

    # ---- routed-cold: adaptive choice, no cache ------------------------ #
    router = QueryRouter.for_system(system, policy=RoutingPolicy(cache=False))
    session = QuerySession.for_snapshot(snapshot)
    cold_io = 0
    cold_results = 0
    routes: dict[str, int] = {}
    started = time.perf_counter()
    for index, query in enumerate(workload):
        result = _route_one(router, session, query)
        chosen = result.stats.route
        routes[chosen] = routes.get(chosen, 0) + 1
        io = result.stats.total_io()
        cold_io += io
        cold_results += len(result.tids)
        if result.stats.fallbacks == 0 and io != pinned_io[chosen][index]:
            raise AssertionError(
                f"routed query {index} via {chosen} cost {io} I/Os but the "
                f"pinned run cost {pinned_io[chosen][index]} — routing must "
                "not change an engine's disk accesses"
            )
        if not _same_answer(
            _canonical(result), reference[index], query["kind"]
        ):
            raise AssertionError(
                f"routed query {index} via {chosen} diverges from naive"
            )
    cold_wall = time.perf_counter() - started
    series["routed-cold"] = {
        "points": [
            {
                "x": 1,
                "wall_ms": cold_wall * 1e3,
                "io": {"total": cold_io},
                "results": cold_results,
                "routes": dict(sorted(routes.items())),
            }
        ]
    }

    # ---- routed-warm: adaptive choice + epoch-keyed cache -------------- #
    router = QueryRouter.for_system(system, policy=RoutingPolicy())
    session = QuerySession.for_snapshot(snapshot)
    warm_io = 0
    warm_results = 0
    started = time.perf_counter()
    for index, query in enumerate(workload):
        result = _route_one(router, session, query)
        warm_io += result.stats.total_io()
        warm_results += len(result.tids)
        if not _same_answer(
            _canonical(result), reference[index], query["kind"]
        ):
            raise AssertionError(
                f"warm query {index} ({result.stats.cache_outcome}) "
                "diverges from naive"
            )
    warm_wall = time.perf_counter() - started
    routing = router.stats.snapshot()
    hit_rate = routing["cache_hits"] / max(1, routing["routed"])
    if hit_rate < 0.5:
        raise AssertionError(
            f"warm cache hit-rate {hit_rate:.2f} < 0.5 on the Zipfian "
            "workload — the result cache is not catching repeats"
        )
    wall_ratio = warm_wall / best_pinned_wall
    if wall_ratio > 1.1:
        raise AssertionError(
            f"routed+cached wall {warm_wall:.3f}s exceeds the best pinned "
            f"engine's {best_pinned_wall:.3f}s by more than 10% "
            f"(ratio {wall_ratio:.2f})"
        )
    series["routed-warm"] = {
        "points": [
            {
                "x": 1,
                "wall_ms": warm_wall * 1e3,
                "wall_ratio_vs_best_pinned": wall_ratio,
                "hit_rate": hit_rate,
                "cache_misses": routing["cache_misses"],
                "io": {"total": warm_io},
                "results": warm_results,
            }
        ]
    }

    # ---- served: the executor path, counters reconciled ---------------- #
    with QueryExecutor(
        system,
        threads=1,
        queue_depth=2 * len(workload),
        routing=True,
    ) as executor:
        started = time.perf_counter()
        tickets = []
        for query in workload:
            if query["kind"] == "skyline":
                tickets.append(executor.skyline(query["predicate"]))
            else:
                tickets.append(
                    executor.topk(query["fn"], query["k"], query["predicate"])
                )
        served = [ticket.result(timeout=600.0) for ticket in tickets]
        served_wall = time.perf_counter() - started
        serving = executor.stats.snapshot()
    for index, result in enumerate(served):
        if not _same_answer(
            _canonical(result), reference[index], workload[index]["kind"]
        ):
            raise AssertionError(f"served query {index} diverges from naive")
    if serving["routed"] != len(workload):
        raise AssertionError(
            f"ServingStats counted {serving['routed']} routed queries, "
            f"expected {len(workload)}"
        )
    cache_total = (
        serving["cache_hits"]
        + serving["cache_misses"]
        + serving["cache_bypassed"]
    )
    if cache_total != len(workload):
        raise AssertionError(
            "ServingStats cache outcomes do not reconcile: "
            f"{cache_total} != {len(workload)}"
        )
    series["served"] = {
        "points": [
            {
                "x": 1,
                "wall_ms": served_wall * 1e3,
                "results": sum(len(r.tids) for r in served),
                "routed": serving["routed"],
                "fell_back": serving["fell_back"],
                "cache_misses": serving["cache_misses"],
                "cache_bypassed": serving["cache_bypassed"],
                "hit_rate": serving["cache_hits"] / max(1, serving["routed"]),
            }
        ]
    }

    return {
        "schema": ROUTING_SCHEMA,
        "seed": seed,
        "n_tuples": n_tuples,
        "n_queries": n_queries,
        "n_templates": n_templates,
        "read_latency": read_latency,
        "figures": {
            "routing": {
                "title": "Adaptive routing vs pinned engines "
                f"(T={n_tuples}, {n_queries} Zipfian queries over "
                f"{n_templates} templates)",
                "series": series,
            }
        },
    }
