"""Benchmark scenarios: the ``benchmarks/test_fig*.py`` sweeps as plain
functions.

Each scenario mirrors one pytest benchmark module figure-for-figure — same
seeded data sets (via :mod:`repro.data.fixtures`), same measurement loop,
same method set — but returns a JSON-ready dict instead of printing a
table, so ``python -m repro.bench`` can emit a comparable, diffable record.

Only the query *workload* is driven by the runner's ``--seed``; the data
sets keep their size-derived seeds, so a regression found here replays in
the pytest suite on the identical input.

Figures 7, 11, 12 and 14-16 (updates, cardinality/dimension sweeps, the
CoverType workload) remain pytest-only: they vary the data set itself
rather than measuring fixed seeded inputs, so there is no stable baseline
for ``--compare`` to gate on.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
    build_boolean_indexes,
)
from repro.baselines.domination_first import (
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.core.pcube import PCube
from repro.data.fixtures import N_QUERIES, SWEEP_SIZES, build_sweep_system, sweep_config
from repro.data.synthetic import generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.skyline import skyline_signature
from repro.query.stats import QueryStats
from repro.query.topk import topk_signature
from repro.rtree.rtree import RTree

K_VALUES = (10, 20, 50, 100)


@dataclass
class BenchContext:
    """One runner invocation: seed, sweep sizes, and cached built systems."""

    seed: int = 7
    sizes: tuple[int, ...] = SWEEP_SIZES
    n_queries: int = N_QUERIES
    _systems: dict[int, Any] = field(default_factory=dict)

    def system(self, n_tuples: int):
        if n_tuples not in self._systems:
            self._systems[n_tuples] = build_sweep_system(n_tuples)
        return self._systems[n_tuples]

    def rng(self, tag: str) -> random.Random:
        """A per-scenario workload RNG, independent of figure selection."""
        return random.Random(
            (self.seed * 0x9E3779B1) ^ zlib.crc32(tag.encode("ascii"))
        )


def averaged_point(x, stats_list: list[QueryStats]) -> dict[str, Any]:
    """One series point: metrics averaged over the query sample.

    ``wall_ms`` is the only nondeterministic field; everything else is a
    pure function of the seeded input and safe to gate with ``--compare``.
    """
    n = len(stats_list)
    categories: dict[str, float] = {}
    for stats in stats_list:
        for category, count in stats.counters:
            categories[category] = categories.get(category, 0) + count
    io = {cat: count / n for cat, count in sorted(categories.items())}
    io["total"] = sum(s.total_io() for s in stats_list) / n
    return {
        "x": x,
        "wall_ms": sum(s.elapsed_seconds for s in stats_list) * 1e3 / n,
        "io": io,
        "heap_peak": sum(s.peak_heap for s in stats_list) / n,
        "prune_counts": {
            "pref": sum(s.dominance_pruned for s in stats_list) / n,
            "bool": sum(s.boolean_pruned for s in stats_list) / n,
        },
        "results": sum(s.results for s in stats_list) / n,
    }


def _series(names: list[str]) -> dict[str, dict[str, list]]:
    return {name: {"points": []} for name in names}


# --------------------------------------------------------------------- #
# figures
# --------------------------------------------------------------------- #


def fig05_construction(ctx: BenchContext) -> dict[str, Any]:
    """Construction time vs T (insert-built R-tree vs P-Cube vs B-trees)."""
    series = _series(["B-tree", "P-Cube", "R-tree"])
    for n_tuples in ctx.sizes:
        relation = generate_relation(sweep_config(n_tuples))
        started = time.perf_counter()
        rtree = RTree(
            dims=relation.schema.n_preference,
            max_entries=64,
            disk=relation.disk,
        )
        for tid, point in relation.pref_points():
            rtree.insert(tid, point)
        rtree_seconds = time.perf_counter() - started

        started = time.perf_counter()
        PCube.build(relation, rtree, maintainable=False)
        pcube_seconds = time.perf_counter() - started

        started = time.perf_counter()
        build_boolean_indexes(relation)
        btree_seconds = time.perf_counter() - started

        for name, seconds in (
            ("R-tree", rtree_seconds),
            ("P-Cube", pcube_seconds),
            ("B-tree", btree_seconds),
        ):
            series[name]["points"].append(
                {"x": n_tuples, "wall_ms": seconds * 1e3}
            )
    return {"title": "construction time vs T", "series": series}


def fig06_size(ctx: BenchContext) -> dict[str, Any]:
    """Materialised size vs T (MB); fully deterministic."""
    series = _series(["B-tree", "P-Cube", "R-tree"])
    for n_tuples in ctx.sizes:
        system = ctx.system(n_tuples)
        for name, size_mb in (
            ("R-tree", system.rtree_size_mb()),
            ("P-Cube", system.pcube_size_mb()),
            ("B-tree", system.btree_size_mb()),
        ):
            series[name]["points"].append({"x": n_tuples, "size_mb": size_mb})
    return {"title": "materialised size vs T (MB)", "series": series}


def _skyline_sweep(ctx: BenchContext, tag: str) -> dict[str, Any]:
    """The Figure 8/9/10 loop: N skyline queries per size, three methods."""
    rng = ctx.rng(tag)
    series = _series(["Boolean", "Domination", "Signature"])
    for n_tuples in ctx.sizes:
        system = ctx.system(n_tuples)
        samples: dict[str, list[QueryStats]] = {
            name: [] for name in series
        }
        for _ in range(ctx.n_queries):
            predicate = sample_predicate(system.relation, 1, rng)
            sig_tids, sig_stats, _ = skyline_signature(
                system.relation, system.rtree, system.pcube, predicate
            )
            bool_tids, bool_stats = boolean_first_skyline(
                system.relation, system.indexes, predicate
            )
            dom_tids, dom_stats, _ = domination_first_skyline(
                system.relation, system.rtree, predicate
            )
            if not set(sig_tids) == set(bool_tids) == set(dom_tids):
                raise AssertionError(
                    f"skyline mismatch at T={n_tuples}: {predicate!r}"
                )
            samples["Signature"].append(sig_stats)
            samples["Boolean"].append(bool_stats)
            samples["Domination"].append(dom_stats)
        for name, stats_list in samples.items():
            series[name]["points"].append(
                averaged_point(n_tuples, stats_list)
            )
    return series


def fig08_skyline_time(ctx: BenchContext) -> dict[str, Any]:
    return {
        "title": "skyline execution time vs T",
        "series": _skyline_sweep(ctx, "fig08"),
    }


def fig09_disk_access(ctx: BenchContext) -> dict[str, Any]:
    """Disk accesses vs T; the io category breakdown is the payload."""
    series = _skyline_sweep(ctx, "fig09")
    return {
        "title": "disk accesses per skyline query vs T",
        "series": {
            name: series[name] for name in ("Domination", "Signature")
        },
    }


def fig10_heap(ctx: BenchContext) -> dict[str, Any]:
    return {
        "title": "peak candidate-heap size vs T",
        "series": _skyline_sweep(ctx, "fig10"),
    }


def fig13_topk(ctx: BenchContext) -> dict[str, Any]:
    """Top-k time vs k at the largest sweep size, four methods."""
    rng = ctx.rng("fig13")
    t_size = max(ctx.sizes)
    system = ctx.system(t_size)
    relation = system.relation
    series = _series(["Boolean", "IndexMerge", "Ranking", "Signature"])
    for k in K_VALUES:
        samples: dict[str, list[QueryStats]] = {name: [] for name in series}
        for _ in range(ctx.n_queries):
            predicate = sample_predicate(relation, 1, rng)
            fn = sample_linear_function(relation.schema.n_preference, rng)
            ranked_sig, sig_stats, _ = topk_signature(
                relation, system.rtree, system.pcube, fn, k, predicate
            )
            ranked_bool, bool_stats = boolean_first_topk(
                relation, system.indexes, fn, k, predicate
            )
            ranked_rank, rank_stats, _ = ranking_topk(
                relation, system.rtree, fn, k, predicate
            )
            ranked_merge, merge_stats = index_merge_topk(
                relation, system.rtree, system.indexes, fn, k, predicate
            )
            reference = [round(score, 9) for _, score in ranked_sig]
            for other in (ranked_bool, ranked_rank, ranked_merge):
                if [round(score, 9) for _, score in other] != reference:
                    raise AssertionError(
                        f"top-k mismatch at k={k}: {predicate!r}"
                    )
            samples["Signature"].append(sig_stats)
            samples["Boolean"].append(bool_stats)
            samples["Ranking"].append(rank_stats)
            samples["IndexMerge"].append(merge_stats)
        for name, stats_list in samples.items():
            series[name]["points"].append(averaged_point(k, stats_list))
    return {
        "title": f"top-k time vs k (T={t_size:,})",
        "series": series,
    }


#: figure name → scenario function, in paper order.
SCENARIOS: dict[str, Callable[[BenchContext], dict[str, Any]]] = {
    "fig05": fig05_construction,
    "fig06": fig06_size,
    "fig08": fig08_skyline_time,
    "fig09": fig09_disk_access,
    "fig10": fig10_heap,
    "fig13": fig13_topk,
}
