"""CLI consistency audit: ``python -m repro.audit``.

Builds a seeded synthetic system, drives a mixed WAL-protected maintenance
workload (inserts, batches, deletes, updates), optionally injects a crash
at a chosen point and recovers, then runs
:meth:`~repro.system.PCubeSystem.verify_consistency` and reports.

Exit status (stable — CI and the serving supervisor branch on it):

* ``0`` — every cross-structure invariant held;
* ``1`` — the audit ran but found inconsistencies (each reported);
* ``2`` — the audit could not complete: the structures were unreadable
  (e.g. interior WAL corruption, unrecoverable pages).

``--json`` emits the same findings as one machine-readable object on
stdout instead of the text report.

Examples::

    PYTHONPATH=src python -m repro.audit
    PYTHONPATH=src python -m repro.audit --tuples 200 --ops 40 --seed 3
    PYTHONPATH=src python -m repro.audit --crash-op write --crash-tag rtree
    PYTHONPATH=src python -m repro.audit --json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Any, Sequence

from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (
    FaultPlan,
    FaultRule,
    FaultyDisk,
    SimulatedCrash,
)
from repro.system import PCubeSystem, build_system


def _random_rows(system: PCubeSystem, rng: random.Random, n: int):
    relation = system.relation
    rows = []
    for _ in range(n):
        template = rng.randrange(len(relation))
        rows.append(
            (
                relation.bool_row(template),
                tuple(rng.random() for _ in range(relation.schema.n_preference)),
            )
        )
    return rows


def run_workload(
    system: PCubeSystem, rng: random.Random, n_ops: int
) -> int:
    """Mixed maintenance workload through the WAL-protected drivers.

    Returns the number of operations that completed (a crash rule ends the
    workload early, leaving the interrupted operation in the WAL).
    """
    completed = 0
    for _ in range(n_ops):
        live = [tid for tid in system.relation.live_tids()]
        kind = rng.choice(("insert", "batch", "delete", "update"))
        if kind == "insert":
            bool_row, pref_row = _random_rows(system, rng, 1)[0]
            system.insert(bool_row, pref_row)
        elif kind == "batch":
            system.insert_batch(_random_rows(system, rng, rng.randrange(2, 6)))
        elif kind == "delete" and len(live) > 10:
            system.delete(rng.choice(live))
        else:
            tid = rng.choice(live)
            system.update(
                tid,
                tuple(
                    rng.random()
                    for _ in range(system.relation.schema.n_preference)
                ),
            )
        completed += 1
    return completed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.audit", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--tuples", type=int, default=120)
    parser.add_argument("--ops", type=int, default=30)
    parser.add_argument("--seed", type=int, default=20080401)
    parser.add_argument("--fanout", type=int, default=6)
    parser.add_argument(
        "--crash-op",
        choices=("read", "write", "allocate"),
        help="inject one crash at this disk operation during the workload",
    )
    parser.add_argument(
        "--crash-tag",
        default="",
        help="page-tag prefix the crash rule matches (default: any)",
    )
    parser.add_argument(
        "--crash-after",
        type=int,
        default=0,
        help="matching accesses to skip before the crash fires",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object instead of the text report",
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    disk = FaultyDisk(SimulatedDisk())
    config = SyntheticConfig(
        n_tuples=args.tuples, n_boolean=2, n_preference=2, seed=args.seed
    )
    system = build_system(
        generate_relation(config, disk=disk), fanout=args.fanout
    )

    if args.crash_op:
        disk.plan = FaultPlan(
            [
                FaultRule(
                    kind="crash",
                    op=args.crash_op,
                    tag=args.crash_tag,
                    after=args.crash_after,
                    count=1,
                )
            ]
        )
    findings: dict[str, Any] = {
        "tuples": args.tuples,
        "ops": args.ops,
        "seed": args.seed,
    }
    try:
        completed = run_workload(system, rng, args.ops)
        findings["workload"] = {"completed": completed, "requested": args.ops}
    except SimulatedCrash as crash:
        disk.plan = FaultPlan()
        findings["crash"] = str(crash)
        findings["recovery_outcome"] = system.recover()

    try:
        report = system.verify_consistency()
    except Exception as exc:
        # The structures could not even be read — distinct from "read fine
        # but inconsistent", so CI can tell data loss from drift.
        findings["status"] = "unreadable"
        findings["error"] = f"{type(exc).__name__}: {exc}"
        findings["maintenance_stats"] = system.maintenance_stats.snapshot()
        _emit(findings, args.json)
        return 2

    findings["status"] = "clean" if report.ok else "inconsistent"
    findings["cells_checked"] = report.cells_checked
    findings["problems"] = list(report.problems)
    findings["maintenance_stats"] = system.maintenance_stats.snapshot()
    _emit(findings, args.json)
    return 0 if report.ok else 1


def _emit(findings: dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(findings, indent=2, sort_keys=True))
        return
    if "crash" in findings:
        print(f"crashed mid-operation: {findings['crash']}")
        print(f"recovery outcome: {findings['recovery_outcome']}")
    elif "workload" in findings:
        workload = findings["workload"]
        print(
            f"workload: {workload['completed']}/{workload['requested']} "
            "operations completed"
        )
    if findings["status"] == "unreadable":
        print(f"audit unreadable: {findings['error']}")
    else:
        print(
            f"consistency: {findings['cells_checked']} cells checked, "
            f"{len(findings['problems'])} problems"
        )
        for problem in findings["problems"]:
            print(f"  PROBLEM: {problem}")
    print(f"maintenance stats: {findings['maintenance_stats']}")


if __name__ == "__main__":
    sys.exit(main())
