"""Data sets and query workloads for the experiments.

* :mod:`repro.data.synthetic` — the paper's synthetic generator: ``T``
  tuples, ``Db`` boolean dimensions of cardinality ``C``, ``Dp`` preference
  dimensions with a chosen distribution;
* :mod:`repro.data.covertype` — an offline synthetic twin of the Forest
  CoverType data set (see DESIGN.md §4 for the substitution argument);
* :mod:`repro.data.workload` — predicate and ranking-function samplers.
"""

from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.data.covertype import covertype_relation
from repro.data.workload import (
    sample_linear_function,
    sample_predicate,
    sample_target_function,
)

__all__ = [
    "SyntheticConfig",
    "covertype_relation",
    "generate_relation",
    "sample_linear_function",
    "sample_predicate",
    "sample_target_function",
]
