"""Synthetic data sets (paper Section VI-A).

"For each synthetic data, Dp denotes the number of preference dimensions,
Db the number of boolean dimensions, C the cardinality of each boolean
dimension, T the number of tuples."  Defaults follow the paper:
``Db = Dp = 3``, ``C = 100``, uniform preference values.

Beyond the paper's uniform setting, the standard skyline-benchmark
distributions of Borzsonyi et al. are provided — independent (uniform),
correlated, anti-correlated and clustered — since preference selectivity
(Figure 12) is most interesting when the distribution can be varied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.storage.disk import SimulatedDisk

DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated", "clustered")


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic data set."""

    n_tuples: int = 10_000
    n_boolean: int = 3
    cardinality: int = 100
    n_preference: int = 3
    distribution: str = "uniform"
    seed: int = 7
    boolean_names: tuple[str, ...] = field(default=())
    preference_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_tuples < 1:
            raise ValueError("n_tuples must be positive")
        if self.n_boolean < 1:
            raise ValueError("n_boolean must be positive")
        if self.cardinality < 1:
            raise ValueError("cardinality must be positive")
        if self.n_preference < 1:
            raise ValueError("n_preference must be positive")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if not self.boolean_names:
            object.__setattr__(
                self,
                "boolean_names",
                tuple(f"A{i + 1}" for i in range(self.n_boolean)),
            )
        if not self.preference_names:
            object.__setattr__(
                self,
                "preference_names",
                tuple(f"N{i + 1}" for i in range(self.n_preference)),
            )
        if len(self.boolean_names) != self.n_boolean:
            raise ValueError("boolean_names length mismatch")
        if len(self.preference_names) != self.n_preference:
            raise ValueError("preference_names length mismatch")

    @property
    def schema(self) -> Schema:
        return Schema(self.boolean_names, self.preference_names)


def _preference_matrix(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    t, d = config.n_tuples, config.n_preference
    if config.distribution == "uniform":
        return rng.random((t, d))
    if config.distribution == "correlated":
        base = rng.random(t)
        noise = rng.normal(0.0, 0.08, (t, d))
        return np.clip(base[:, None] + noise, 0.0, 1.0)
    if config.distribution == "anticorrelated":
        # Points scattered tightly around the hyperplane Σx = d/2: good in
        # one dimension means bad in another.  The small plane jitter keeps
        # points mutually incomparable, maximising skyline size (≈10× the
        # correlated skyline at 2k tuples / 2 dims).
        base = rng.normal(0.5, 0.01, t)
        raw = rng.random((t, d))
        raw = raw / raw.sum(axis=1, keepdims=True) * (base[:, None] * d)
        return np.clip(raw, 0.0, 1.0)
    # clustered
    n_clusters = 8
    centers = rng.random((n_clusters, d))
    assignment = rng.integers(0, n_clusters, t)
    noise = rng.normal(0.0, 0.05, (t, d))
    return np.clip(centers[assignment] + noise, 0.0, 1.0)


def generate_relation(
    config: SyntheticConfig,
    disk: SimulatedDisk | None = None,
) -> Relation:
    """Materialise a synthetic relation for a configuration."""
    rng = np.random.default_rng(config.seed)
    bool_matrix = rng.integers(
        0, config.cardinality, (config.n_tuples, config.n_boolean)
    )
    pref_matrix = _preference_matrix(config, rng)
    # Hand the matrices straight through: the relation adopts them as its
    # columnar projection and derives byte-identical row tuples itself
    # (same seeds, same values — just no per-tuple convert-and-copy).
    return Relation(config.schema, bool_matrix, pref_matrix, disk=disk)
