"""Query-workload samplers.

Predicates are sampled from *live* cells — pick a random tuple and reuse its
values on the chosen dimensions — so every sampled query has a non-empty
answer set, like the paper's workloads (selectivities follow the data's own
skew).  Ranking functions follow the paper's Figure 13 family ("a linear
query with function f = aX + bY + cZ, where a, b and c are random
parameters") plus the Example 1 style distance-to-target queries.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cube.relation import Relation
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction, WeightedSquaredDistance


def sample_predicate(
    relation: Relation,
    n_conjuncts: int,
    rng: random.Random,
    dims: Sequence[str] | None = None,
) -> BooleanPredicate:
    """A conjunctive predicate over ``n_conjuncts`` random dimensions,
    guaranteed non-empty (anchored at a random tuple)."""
    available = list(dims if dims is not None else relation.schema.boolean_dims)
    if n_conjuncts > len(available):
        raise ValueError(
            f"cannot draw {n_conjuncts} conjuncts from {len(available)} dims"
        )
    chosen = rng.sample(available, n_conjuncts)
    anchor = rng.randrange(len(relation))
    return BooleanPredicate(
        {dim: relation.bool_value(anchor, dim) for dim in chosen}
    )


def sample_linear_function(
    n_dims: int, rng: random.Random, low: float = 0.1, high: float = 1.0
) -> LinearFunction:
    """``f = Σ a_d x_d`` with random positive coefficients (Figure 13)."""
    return LinearFunction([rng.uniform(low, high) for _ in range(n_dims)])


def sample_target_function(
    relation: Relation, rng: random.Random
) -> WeightedSquaredDistance:
    """An Example 1 style query: weighted squared distance to a random
    target point in preference space."""
    n_dims = relation.schema.n_preference
    target = [rng.random() for _ in range(n_dims)]
    weights = [rng.uniform(0.5, 2.0) for _ in range(n_dims)]
    return WeightedSquaredDistance(target, weights)


def zipfian_workload(
    relation: Relation,
    rng: random.Random,
    n_queries: int,
    n_templates: int = 24,
    s: float = 1.1,
    topk_share: float = 0.5,
    k: int = 10,
) -> list[dict]:
    """A skewed repeat-heavy query stream (the routing benchmark's shape).

    Draws ``n_templates`` distinct query templates — a mix of skyline and
    top-k over predicates of 0–2 conjuncts — then samples ``n_queries``
    from them under a Zipf(``s``) popularity law: a few hot templates
    dominate, a long tail appears once or twice.  That is the regime where
    an epoch-keyed result cache pays (every repeat at a stable epoch is a
    hit) while the tail still exercises the routing decision itself.

    Each entry is ``{"kind", "predicate", "fn", "k", "template"}`` with
    ``fn``/``k`` ``None`` for skylines; ``template`` indexes the template
    drawn, so harnesses can reconcile repeats without re-hashing queries.
    """
    if n_templates < 1 or n_queries < 0:
        raise ValueError("need at least one template and n_queries >= 0")
    templates: list[dict] = []
    for i in range(n_templates):
        kind = "topk" if rng.random() < topk_share else "skyline"
        predicate = sample_predicate(
            relation, rng.choice([0, 1, 1, 2]), rng
        )
        templates.append(
            {
                "kind": kind,
                "predicate": predicate,
                "fn": (
                    sample_linear_function(
                        relation.schema.n_preference, rng
                    )
                    if kind == "topk"
                    else None
                ),
                "k": k if kind == "topk" else None,
                "template": i,
            }
        )
    weights = [1.0 / (rank + 1) ** s for rank in range(n_templates)]
    return [
        dict(templates[rng.choices(range(n_templates), weights)[0]])
        for _ in range(n_queries)
    ]
