"""Seeded data-set fixtures shared by tests, benchmarks and the runner.

One module owns every seeded input the repo measures against, so the pytest
suites (``tests/conftest.py``, ``benchmarks/conftest.py``) and the
reproducible benchmark runner (``python -m repro.bench``) are guaranteed to
build *identical* relations and systems — a bench regression can be
replayed under a debugger from the test suite and vice versa.

Three families:

* the **paper example** — Table I's eight tuples, the Figure 1 R-tree
  (m = 1, M = 2) and its ⟨1,1,1⟩ ... ⟨2,2,2⟩ paths, for bit-exact checks
  against Figures 2-4;
* the **synthetic sweeps** — the paper's default setting (Db = Dp = 3,
  C = 100, uniform) at the scaled-down sizes of EXPERIMENTS.md, with the
  same derived per-size seed everywhere;
* the **CoverType twin** — the real-data schema of Figures 14-16.
"""

from __future__ import annotations

import random

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.rtree.geometry import Rect
from repro.rtree.node import Entry
from repro.rtree.rtree import RTree
from repro.system import PCubeSystem, build_system

# --------------------------------------------------------------------- #
# the paper's running example (Table I / Figure 1)
# --------------------------------------------------------------------- #

#: Table I, in order t1..t8 (tids 0..7).
PAPER_ROWS = [
    # (A,    B,    X,     Y)
    ("a1", "b1", 0.00, 0.40),
    ("a2", "b2", 0.20, 0.60),
    ("a1", "b1", 0.30, 0.70),
    ("a3", "b3", 0.50, 0.40),
    ("a4", "b1", 0.60, 0.00),
    ("a2", "b3", 0.72, 0.30),
    ("a4", "b2", 0.72, 0.36),
    ("a3", "b3", 0.85, 0.62),
]

#: The paths column of Table I (1-based slot positions, root first).
PAPER_PATHS = {
    0: (1, 1, 1),
    1: (1, 1, 2),
    2: (1, 2, 1),
    3: (1, 2, 2),
    4: (2, 1, 1),
    5: (2, 1, 2),
    6: (2, 2, 1),
    7: (2, 2, 2),
}


def paper_relation() -> Relation:
    """Table I as a fresh :class:`Relation` (schema A, B | X, Y)."""
    schema = Schema(("A", "B"), ("X", "Y"))
    bool_rows = [(a, b) for a, b, _, _ in PAPER_ROWS]
    pref_rows = [(x, y) for _, _, x, y in PAPER_ROWS]
    return Relation(schema, bool_rows, pref_rows)


def build_paper_rtree(relation: Relation) -> RTree:
    """The exact R-tree of Figure 1: root → {N1, N2} → four leaves of two
    tuples each, in Table I's path order."""
    tree = RTree(dims=2, max_entries=2, min_entries=1)
    leaves = []
    for first in range(0, 8, 2):
        leaf = tree._new_node(level=0)
        for tid in (first, first + 1):
            point = relation.pref_point(tid)
            leaf.add_entry(Entry(Rect.from_point(point), tid=tid))
        tree._sync_page(leaf)
        leaves.append(leaf)
    inner = []
    for half in range(2):
        node = tree._new_node(level=1)
        for leaf in leaves[2 * half : 2 * half + 2]:
            node.add_entry(Entry(leaf.mbr(), child=leaf))
        tree._sync_page(node)
        inner.append(node)
    root = tree._new_node(level=2)
    for node in inner:
        root.add_entry(Entry(node.mbr(), child=node))
    tree._sync_page(root)

    points = {tid: relation.pref_point(tid) for tid in range(8)}
    tid_leaf = {tid: leaves[tid // 2] for tid in range(8)}
    tree._adopt_bulk(root, points, tid_leaf)
    return tree


# --------------------------------------------------------------------- #
# synthetic sweeps (the scaled-down Section VI setting)
# --------------------------------------------------------------------- #

#: The scalability sweep (paper: 1M, 5M, 10M).
SWEEP_SIZES = (10_000, 20_000, 50_000)
#: Queries averaged per data point.
N_QUERIES = 5
#: Modeled random-access latency (2008-era disk).
SECONDS_PER_IO = 0.005
#: R-tree fanout for the synthetic sweeps (keeps height 3 at 50k tuples).
SWEEP_FANOUT = 64


def sweep_config(n_tuples: int, **overrides) -> SyntheticConfig:
    """The paper's default synthetic setting: Db = Dp = 3, C = 100.

    The per-size data seed is derived from ``n_tuples`` alone, so every
    consumer — pytest benchmark, bench runner, ad-hoc script — generates
    the same relation for the same size.
    """
    params = dict(
        n_tuples=n_tuples,
        n_boolean=3,
        cardinality=100,
        n_preference=3,
        distribution="uniform",
        seed=n_tuples % 97 + 7,
    )
    params.update(overrides)
    return SyntheticConfig(**params)


def build_sweep_system(
    n_tuples: int, fanout: int = SWEEP_FANOUT, **overrides
) -> PCubeSystem:
    """One fully built sweep system (relation + R-tree + P-Cube + indexes)."""
    relation = generate_relation(sweep_config(n_tuples, **overrides))
    return build_system(relation, fanout=fanout)


def small_config() -> SyntheticConfig:
    """The unit-test workhorse: 1.5k tuples, Db = 3 at C = 8, Dp = 2."""
    return SyntheticConfig(
        n_tuples=1500,
        n_boolean=3,
        cardinality=8,
        n_preference=2,
        distribution="uniform",
        seed=11,
    )


# --------------------------------------------------------------------- #
# the CoverType twin (Figures 14-16)
# --------------------------------------------------------------------- #

#: Row count of the scaled-down CoverType twin used everywhere.
COVERTYPE_ROWS = 40_000


def build_covertype_system(
    n_rows: int = COVERTYPE_ROWS, fanout: int = SWEEP_FANOUT
) -> PCubeSystem:
    from repro.data.covertype import covertype_relation

    relation = covertype_relation(n_rows=n_rows)
    return build_system(relation, fanout=fanout)


def covertype_predicates(
    system: PCubeSystem, rng: random.Random, max_conjuncts: int = 4
):
    """A nested predicate chain over the high-cardinality attributes,
    anchored at a live tuple (the Figure 14-16 workload)."""
    from repro.data.workload import sample_predicate

    relation = system.relation
    dims = relation.schema.boolean_dims[:max_conjuncts]
    predicate = sample_predicate(relation, 1, rng, dims=dims[:1])
    chain = [predicate]
    for dim in dims[1:]:
        anchor = next(
            tid for tid in relation.tids() if predicate.matches(relation, tid)
        )
        predicate = predicate.drill_down(
            dim, relation.bool_value(anchor, dim)
        )
        chain.append(predicate)
    return chain
