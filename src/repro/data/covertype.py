"""A synthetic twin of the Forest CoverType data set.

The paper's real-data experiments (Figures 14-16) use Forest CoverType from
the UCI repository: 581,012 rows; 3 quantitative attributes with
cardinalities 1989, 5787 and 5827 chosen as preference dimensions; 12
attributes with cardinalities 255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2 as
boolean dimensions.

The original file is network-gated in this environment, so we synthesise a
twin with the same schema and per-attribute cardinalities, Zipf-skewed
boolean marginals (categorical forest attributes are heavily skewed) and
mildly correlated quantitative attributes (elevation-like).  The
experiments driven by this data only exercise *boolean selectivity
structure* — how fast conjunctive predicates shrink the subset — and its
interplay with a 3-D preference search, both of which depend on the
cardinality/skew profile rather than on the original measurements.  See
DESIGN.md §4.
"""

from __future__ import annotations

import numpy as np

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.storage.disk import SimulatedDisk

#: Boolean-dimension cardinalities quoted in the paper, largest first.
BOOLEAN_CARDINALITIES = (255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2)
#: Preference-dimension cardinalities quoted in the paper.
PREFERENCE_CARDINALITIES = (1989, 5787, 5827)
#: Size of the original data set (the default here is scaled down; every
#: benchmark prints its scale factor).
ORIGINAL_ROWS = 581_012

BOOLEAN_NAMES = tuple(f"B{i + 1}" for i in range(len(BOOLEAN_CARDINALITIES)))
PREFERENCE_NAMES = ("elevation", "aspect", "distance")


def _zipf_categorical(
    rng: np.random.Generator, cardinality: int, size: int, skew: float = 1.1
) -> np.ndarray:
    """Skewed categorical values over ``[0, cardinality)``.

    Every value of the domain appears with positive probability, so atomic
    cells exist for the whole domain, as with the real attribute encodings.
    """
    ranks = np.arange(1, cardinality + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(cardinality, size=size, p=weights)


def covertype_relation(
    n_rows: int = 100_000,
    seed: int = 54,
    disk: SimulatedDisk | None = None,
) -> Relation:
    """Generate the CoverType twin.

    Args:
        n_rows: Scaled-down row count (the original has 581,012).
        seed: RNG seed (54, the original's attribute count, by default).
        disk: Page store for the heap file.
    """
    rng = np.random.default_rng(seed)
    bool_columns = [
        _zipf_categorical(rng, cardinality, n_rows)
        for cardinality in BOOLEAN_CARDINALITIES
    ]
    # Quantitative attributes: a latent "terrain" factor keeps them mildly
    # correlated, like elevation / hydrology distances are.
    latent = rng.random(n_rows)
    pref_columns = []
    for cardinality in PREFERENCE_CARDINALITIES:
        noise = rng.normal(0.0, 0.25, n_rows)
        raw = np.clip(0.6 * latent + 0.4 * rng.random(n_rows) + 0.1 * noise, 0, 1)
        # Quantise to the attribute's cardinality, then rescale to [0, 1]
        # so distances stay comparable across dimensions.
        quantised = np.floor(raw * (cardinality - 1))
        pref_columns.append(quantised / (cardinality - 1))

    bool_rows = [
        tuple(int(col[i]) for col in bool_columns) for i in range(n_rows)
    ]
    pref_rows = [
        tuple(float(col[i]) for col in pref_columns) for i in range(n_rows)
    ]
    schema = Schema(BOOLEAN_NAMES, PREFERENCE_NAMES)
    return Relation(schema, bool_rows, pref_rows, disk=disk)


def scale_factor(n_rows: int) -> float:
    """How far below the original row count a twin instance sits."""
    return n_rows / ORIGINAL_ROWS
