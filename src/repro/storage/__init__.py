"""Simulated paged storage.

The paper's evaluation reports *disk accesses* broken down by component
(signature loads ``SSig``, R-tree block reads ``SBlock`` / ``DBlock``, random
tuple accesses for boolean verification ``DBool``, ...).  Every index in this
reproduction therefore allocates its nodes as pages on a
:class:`~repro.storage.disk.SimulatedDisk` and reads them through an
:class:`~repro.storage.counters.IOCounters` instance, so the counter
breakdowns of Figures 6, 9 and 15 are measurable and hardware independent.
"""

from repro.storage.buffer import BufferPool
from repro.storage.counters import IOCounters
from repro.storage.disk import SimulatedDisk
from repro.storage.page import DEFAULT_PAGE_SIZE, Page

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "IOCounters",
    "Page",
    "SimulatedDisk",
]
