"""Simulated paged storage.

The paper's evaluation reports *disk accesses* broken down by component
(signature loads ``SSig``, R-tree block reads ``SBlock`` / ``DBlock``, random
tuple accesses for boolean verification ``DBool``, ...).  Every index in this
reproduction therefore allocates its nodes as pages on a
:class:`~repro.storage.disk.SimulatedDisk` and reads them through an
:class:`~repro.storage.counters.IOCounters` instance, so the counter
breakdowns of Figures 6, 9 and 15 are measurable and hardware independent.

The fault-tolerance layer (:mod:`repro.storage.faults`) wraps the disk with
deterministic fault injection — transient read errors, checksummed-page
corruption, torn rewrites — plus bounded retry-with-backoff, so the query
engine's degraded-but-correct fallback paths can be exercised and measured.
"""

from repro.storage.buffer import BufferPool
from repro.storage.counters import IOCounters
from repro.storage.disk import PageFault, SimulatedDisk
from repro.storage.errors import (
    CorruptPageError,
    StorageFault,
    TornWriteError,
    TransientIOError,
)
from repro.storage.faults import (
    DeterministicClock,
    FaultPlan,
    FaultRule,
    FaultStats,
    FaultyDisk,
    RetryPolicy,
)
from repro.storage.page import DEFAULT_PAGE_SIZE, Page

__all__ = [
    "BufferPool",
    "CorruptPageError",
    "DEFAULT_PAGE_SIZE",
    "DeterministicClock",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "FaultyDisk",
    "IOCounters",
    "Page",
    "PageFault",
    "RetryPolicy",
    "SimulatedDisk",
    "StorageFault",
    "TornWriteError",
    "TransientIOError",
]
