"""Tagged I/O counters.

The evaluation section of the paper distinguishes several kinds of disk
access.  We reproduce them as counter *categories*:

========  ==================================================================
Category  Meaning (paper reference)
========  ==================================================================
SSIG      partial-signature loads by the Signature method (Fig. 9, 15)
SBLOCK    R-tree block reads by the Signature method (Fig. 9)
DBLOCK    R-tree block reads by the Domination/Ranking baselines (Fig. 9)
DBOOL     random tuple accesses for boolean verification (minimal probing;
          Fig. 9)
BINDEX    B+-tree page reads by the Boolean-first / Index-merge baselines
BTABLE    heap-file (table scan) page reads by the Boolean-first baseline
RTREE     generic R-tree block reads (construction, maintenance)
BTREE     generic B+-tree page reads
========  ==================================================================

Counters are plain per-category tallies; methods record into whichever
category describes *why* the page was fetched.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

#: Canonical category names used across the library.
SSIG = "SSIG"
SBLOCK = "SBLOCK"
DBLOCK = "DBLOCK"
DBOOL = "DBOOL"
BINDEX = "BINDEX"
BTABLE = "BTABLE"
RTREE = "RTREE"
BTREE = "BTREE"

KNOWN_CATEGORIES = (SSIG, SBLOCK, DBLOCK, DBOOL, BINDEX, BTABLE, RTREE, BTREE)

#: Write-side categories, recorded on a disk's *separate*
#: :attr:`~repro.storage.disk.SimulatedDisk.write_counters` so that the
#: read-access figures (9, 15) stay untouched while maintenance I/O
#: (Figure 7's rewrites) is measurable.
ALLOC = "ALLOC"
WRITE = "WRITE"
FREE = "FREE"

WRITE_CATEGORIES = (ALLOC, WRITE, FREE)


class IOCounters:
    """A mutable multiset of I/O events, keyed by category string.

    Arbitrary category names are accepted (component-specific tags are
    useful in tests); the module-level constants cover the paper's figures.
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def record(self, category: str, n: int = 1) -> None:
        """Record ``n`` page accesses under ``category``."""
        if n < 0:
            raise ValueError("cannot record a negative number of accesses")
        self._counts[category] += n

    def get(self, category: str) -> int:
        """Number of accesses recorded under ``category``."""
        return self._counts.get(category, 0)

    def total(self) -> int:
        """Total accesses across all categories."""
        return sum(self._counts.values())

    def snapshot(self) -> dict[str, int]:
        """An immutable-by-copy view of the current tallies."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every category."""
        self._counts.clear()

    def merge(self, other: "IOCounters") -> None:
        """Add another counter set into this one."""
        self._counts.update(other._counts)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"IOCounters({inner})"
