"""Tagged I/O counters.

The evaluation section of the paper distinguishes several kinds of disk
access.  We reproduce them as counter *categories*:

========  ==================================================================
Category  Meaning (paper reference)
========  ==================================================================
SSIG      partial-signature loads by the Signature method (Fig. 9, 15)
SBLOCK    R-tree block reads by the Signature method (Fig. 9)
DBLOCK    R-tree block reads by the Domination/Ranking baselines (Fig. 9)
DBOOL     random tuple accesses for boolean verification (minimal probing;
          Fig. 9)
BINDEX    B+-tree page reads by the Boolean-first / Index-merge baselines
BTABLE    heap-file (table scan) page reads by the Boolean-first baseline
RTREE     generic R-tree block reads (construction, maintenance)
BTREE     generic B+-tree page reads
========  ==================================================================

Counters are plain per-category tallies; methods record into whichever
category describes *why* the page was fetched.

Ownership discipline (the concurrent-serving contract): a query's accesses
are recorded into the :class:`IOCounters` owned by *that query's*
``QueryStats`` — threaded from the session through the buffer pool down to
the disk — never into shared module- or engine-level state, so two queries
running on different threads can never corrupt each other's tallies.  The
only shared counter sets are the disk-wide aggregates on
:class:`~repro.storage.disk.SimulatedDisk`, and :class:`IOCounters` itself
is lock-protected so even those stay exact under concurrency.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Iterator

#: Canonical category names used across the library.
SSIG = "SSIG"
SBLOCK = "SBLOCK"
DBLOCK = "DBLOCK"
DBOOL = "DBOOL"
BINDEX = "BINDEX"
BTABLE = "BTABLE"
RTREE = "RTREE"
BTREE = "BTREE"

KNOWN_CATEGORIES = (SSIG, SBLOCK, DBLOCK, DBOOL, BINDEX, BTABLE, RTREE, BTREE)

#: Write-side categories, recorded on a disk's *separate*
#: :attr:`~repro.storage.disk.SimulatedDisk.write_counters` so that the
#: read-access figures (9, 15) stay untouched while maintenance I/O
#: (Figure 7's rewrites) is measurable.
ALLOC = "ALLOC"
WRITE = "WRITE"
FREE = "FREE"

WRITE_CATEGORIES = (ALLOC, WRITE, FREE)


class IOCounters:
    """A mutable multiset of I/O events, keyed by category string.

    Arbitrary category names are accepted (component-specific tags are
    useful in tests); the module-level constants cover the paper's figures.

    Thread-safe: tallies are guarded by a private lock, so a counter set
    shared between threads (the disk-wide aggregates) stays exact, while
    per-query counter sets pay one uncontended lock acquisition per record.
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self._lock = threading.Lock()

    def record(self, category: str, n: int = 1) -> None:
        """Record ``n`` page accesses under ``category``."""
        if n < 0:
            raise ValueError("cannot record a negative number of accesses")
        with self._lock:
            self._counts[category] += n

    def get(self, category: str) -> int:
        """Number of accesses recorded under ``category``."""
        with self._lock:
            return self._counts.get(category, 0)

    def total(self) -> int:
        """Total accesses across all categories."""
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> dict[str, int]:
        """An immutable-by-copy view of the current tallies."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero every category."""
        with self._lock:
            self._counts.clear()

    def merge(self, other: "IOCounters") -> None:
        """Add another counter set into this one."""
        incoming = other.snapshot()
        with self._lock:
            self._counts.update(incoming)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"IOCounters({inner})"
