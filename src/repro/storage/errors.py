"""Typed storage failures.

Production disks fail in three characteristic ways, and the fault-tolerance
layer names each so callers can react precisely:

* :class:`TransientIOError` — the read failed this time but may succeed on a
  retry (bus resets, timeouts).  Bounded retry-with-backoff is the remedy.
* :class:`CorruptPageError` — the page transferred but its payload does not
  match the checksum recorded at write time.  Retrying is pointless; the
  page must be rebuilt from the base data.
* :class:`TornWriteError` — a multi-page rewrite stopped part-way (power
  loss mid-rewrite).  The rewrite journal guarantees the old pages are
  still readable.

:class:`StorageFault` is the common base so recovery code can catch the
whole family at once.
"""

from __future__ import annotations


class StorageFault(IOError):
    """Base class of every injected or detected storage failure."""


class TransientIOError(StorageFault):
    """A read or write failed transiently; a retry may succeed."""


class CorruptPageError(StorageFault):
    """A page's payload does not match its recorded checksum."""

    def __init__(self, page_id: int, tag: str = "") -> None:
        super().__init__(
            f"checksum mismatch on page {page_id}"
            + (f" (tag {tag!r})" if tag else "")
        )
        self.page_id = page_id
        self.tag = tag


class TornWriteError(StorageFault):
    """A multi-page rewrite was interrupted part-way through."""
