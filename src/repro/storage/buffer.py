"""Buffer management: a shareable LRU pool and per-query views of it.

Query-time accounting in the paper counts *disk* accesses, so repeated hits
on a hot page (the R-tree root, the first partial signature) must not be
re-counted.  The buffer pool absorbs them: only misses reach
:meth:`SimulatedDisk.read` and its counters.

Two deployment modes matter:

* **cold** (the paper-comparable mode): every query gets a private pool, so
  its disk-access counts are a pure function of the query — exactly what
  Figures 9 and 15 assume.  ``repro.bench`` keeps using this mode.
* **shared** (the serving mode): one :class:`BufferPool` is shared by every
  concurrent query.  The pool is thread-safe, supports page *pinning*
  (pinned pages are never evicted), and per-query hit/miss deltas are
  observed through a lightweight :class:`PoolView` so ``QueryStats`` never
  aggregates another query's traffic.

The pool registers itself with its disk, which calls :meth:`invalidate`
whenever a page is freed or rewritten — a maintenance rewrite or
quarantine-rebuild can therefore never serve a stale cached partial.  An
optional :class:`~repro.storage.faults.RetryPolicy` makes :meth:`get` retry
transient read faults with deterministic backoff.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.storage.counters import IOCounters
from repro.storage.disk import SimulatedDisk

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.faults import RetryPolicy


class BufferPool:
    """A fixed-capacity, thread-safe LRU page cache.

    Args:
        disk: Backing store.
        capacity: Maximum number of resident pages.  ``capacity=0`` disables
            caching (every access is a disk read).
        retry_policy: When given, transient read faults are retried with
            bounded backoff before propagating.

    Concurrency notes: the cache map, the pin table and the hit/miss
    tallies are guarded by one lock, which is *never held across a disk
    read* — two threads missing on the same page may both read it (both
    reads are counted, as a real device would), and the second insert wins
    harmlessly.  A miss whose page is invalidated while its read is in
    flight discards the (now stale) payload instead of caching it, so
    invalidation keeps its no-stale-payload guarantee even against
    concurrent readers.  Pinned pages are exempt from eviction; when every
    resident page is pinned the pool temporarily exceeds its capacity
    rather than evicting a page a query still relies on.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = 256,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.capacity = capacity
        self.retry_policy = retry_policy
        self._cache: OrderedDict[int, Any] = OrderedDict()
        self._pins: dict[int, int] = {}
        # Misses with a disk read in flight (page_id → reader count) and a
        # per-page invalidation generation, bumped only while a read is in
        # flight: a reader whose generation moved read a pre-invalidation
        # payload and must not cache it.  Both entries die with the last
        # in-flight reader, so neither map grows with the page space.
        self._inflight: dict[int, int] = {}
        self._inval_gen: dict[int, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        register = getattr(disk, "register_pool", None)
        if register is not None:
            register(self)

    def get(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> Any:
        """Fetch a page payload through the cache.

        A hit costs nothing; a miss performs (and counts) one disk read and
        may evict the least recently used unpinned page.
        """
        payload, _ = self.get_traced(page_id, category, counters)
        return payload

    def get_traced(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> tuple[Any, bool]:
        """Like :meth:`get`, but also report whether the access was a hit.

        Per-query accounting (:class:`PoolView`) needs the flag; the shared
        pool's own ``hits``/``misses`` only aggregate across queries.
        """
        with self._lock:
            if page_id in self._cache:
                self.hits += 1
                self._cache.move_to_end(page_id)
                return self._cache[page_id], True
            self.misses += 1
            self._inflight[page_id] = self._inflight.get(page_id, 0) + 1
            generation = self._inval_gen.get(page_id, 0)
        try:
            if self.retry_policy is not None:
                payload = self.retry_policy.call(
                    lambda: self.disk.read(page_id, category, counters)
                )
            else:
                payload = self.disk.read(page_id, category, counters)
        except BaseException:
            with self._lock:
                self._read_done_locked(page_id)
            raise
        with self._lock:
            fresh = self._inval_gen.get(page_id, 0) == generation
            self._read_done_locked(page_id)
            if self.capacity > 0 and fresh:
                self._cache[page_id] = payload
                self._cache.move_to_end(page_id)
                self._evict_overflow()
        return payload, False

    def _read_done_locked(self, page_id: int) -> None:
        """Retire one in-flight miss (lock held)."""
        count = self._inflight.get(page_id, 0) - 1
        if count > 0:
            self._inflight[page_id] = count
        else:
            self._inflight.pop(page_id, None)
            self._inval_gen.pop(page_id, None)

    def _evict_overflow(self) -> None:
        """Evict LRU unpinned pages down to capacity (lock held)."""
        if len(self._cache) <= self.capacity:
            return
        for candidate in list(self._cache):
            if len(self._cache) <= self.capacity:
                break
            if self._pins.get(candidate, 0) > 0:
                continue
            del self._cache[candidate]

    # ------------------------------------------------------------------ #
    # pinning
    # ------------------------------------------------------------------ #

    def pin(self, page_id: int) -> None:
        """Exempt a page from eviction until every pin is released.

        Pins are reference-counted, so concurrent queries can pin the same
        hot page (the R-tree root) independently.  Pinning a page that is
        not resident is allowed — the pin takes effect once it is cached.
        """
        with self._lock:
            self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; raises if the page is not pinned."""
        with self._lock:
            count = self._pins.get(page_id, 0)
            if count <= 0:
                raise ValueError(f"page {page_id} is not pinned")
            if count == 1:
                del self._pins[page_id]
            else:
                self._pins[page_id] = count - 1
            self._evict_overflow()

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            return self._pins.get(page_id, 0)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache (after a write or free).

        Coherence beats pinning here: a pinned-but-rewritten page must not
        be served stale, so invalidation removes it regardless (the pin
        stays registered and keeps protecting the refreshed copy).  A miss
        reading the page right now is poisoned via the invalidation
        generation so its pre-invalidation payload is never cached.
        """
        with self._lock:
            self._cache.pop(page_id, None)
            if page_id in self._inflight:
                self._inval_gen[page_id] = (
                    self._inval_gen.get(page_id, 0) + 1
                )

    def clear(self) -> None:
        """Empty the cache and reset hit/miss statistics (pins survive)."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)


class PoolView:
    """A per-query window onto a shared :class:`BufferPool`.

    Forwards every access to the underlying pool but keeps *this query's*
    hit/miss tallies locally, so ``QueryStats`` can report a per-query
    buffer delta without reading (racy) shared totals.  Pins taken through
    the view are tracked and released in one call when the query ends.
    """

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self.disk = pool.disk
        self.capacity = pool.capacity
        self.hits = 0
        self.misses = 0
        self._pinned: list[int] = []

    def get(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> Any:
        payload, hit = self.pool.get_traced(page_id, category, counters)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return payload

    def pin(self, page_id: int) -> None:
        self.pool.pin(page_id)
        self._pinned.append(page_id)

    def unpin(self, page_id: int) -> None:
        self.pool.unpin(page_id)
        self._pinned.remove(page_id)

    def release(self) -> None:
        """Drop every pin this view still holds (end-of-query cleanup)."""
        while self._pinned:
            self.pool.unpin(self._pinned.pop())

    def invalidate(self, page_id: int) -> None:
        self.pool.invalidate(page_id)

    def __len__(self) -> int:
        return len(self.pool)
