"""An LRU buffer pool over the simulated disk.

Query-time accounting in the paper counts *disk* accesses, so repeated hits
on a hot page (the R-tree root, the first partial signature) must not be
re-counted.  The buffer pool absorbs them: only misses reach
:meth:`SimulatedDisk.read` and its counters.

The pool registers itself with its disk, which calls :meth:`invalidate`
whenever a page is freed — a maintenance rewrite or quarantine-rebuild can
therefore never serve a stale cached partial.  An optional
:class:`~repro.storage.faults.RetryPolicy` makes :meth:`get` retry
transient read faults with deterministic backoff.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.storage.counters import IOCounters
from repro.storage.disk import SimulatedDisk

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.faults import RetryPolicy


class BufferPool:
    """A fixed-capacity LRU page cache.

    Args:
        disk: Backing store.
        capacity: Maximum number of resident pages.  ``capacity=0`` disables
            caching (every access is a disk read).
        retry_policy: When given, transient read faults are retried with
            bounded backoff before propagating.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = 256,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.capacity = capacity
        self.retry_policy = retry_policy
        self._cache: OrderedDict[int, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        register = getattr(disk, "register_pool", None)
        if register is not None:
            register(self)

    def get(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> Any:
        """Fetch a page payload through the cache.

        A hit costs nothing; a miss performs (and counts) one disk read and
        may evict the least recently used page.
        """
        if page_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self.misses += 1
        if self.retry_policy is not None:
            payload = self.retry_policy.call(
                lambda: self.disk.read(page_id, category, counters)
            )
        else:
            payload = self.disk.read(page_id, category, counters)
        if self.capacity > 0:
            self._cache[page_id] = payload
            if len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        return payload

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache (after a write or free)."""
        self._cache.pop(page_id, None)

    def clear(self) -> None:
        """Empty the cache and reset hit/miss statistics."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)
