"""A simulated disk: page allocation, tagged reads, space accounting.

The disk never serialises payloads; it tracks *logical* page sizes so that
space figures (paper Figure 6) and access counts (Figures 9, 15) can be
reported exactly, while the Python objects stay directly usable.

Robustness additions:

* every page is sealed with a checksum at allocate/write and verified on
  read — corruption surfaces as a typed
  :class:`~repro.storage.errors.CorruptPageError` instead of wrong bits;
* writes, allocations and frees are tallied on :attr:`write_counters`
  (separate from the read-side :attr:`counters` the paper's figures use),
  so maintenance I/O is measurable;
* buffer pools register themselves and are told to evict a page when it is
  freed *or rewritten in place*, so no pool can serve a stale payload.

Concurrency: the page table is guarded by a lock, so allocations, frees and
reads from query threads running against a maintenance writer are atomic at
page granularity.  Page ids are monotonic and never reused, which is what
lets epoch snapshots hold references to pages whose physical free is merely
deferred.

``read_latency`` models the device: when positive, every read sleeps that
many seconds *outside* the page-table lock.  ``time.sleep`` releases the
GIL, so a thread pool genuinely overlaps simulated I/O waits — the effect
the serving benchmark measures.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Any, Iterator

from repro.storage.counters import ALLOC, FREE, WRITE, IOCounters
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class PageFault(KeyError):
    """Raised when reading or freeing a page id that was never allocated."""


class SimulatedDisk:
    """An append-allocated page store with tagged I/O accounting.

    Args:
        page_size: Transfer unit in bytes; structures that must fit a page
            (partial signatures, index nodes) size themselves against this.
        read_latency: Seconds slept per read (default 0 — counting only).
            Used by the serving benchmark to model a device whose waits
            concurrent queries can overlap.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency: float = 0.0,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if read_latency < 0:
            raise ValueError("read_latency must be non-negative")
        self.page_size = page_size
        self.read_latency = read_latency
        self._pages: dict[int, Page] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        #: Disk-wide counters; reads may also record into caller-supplied
        #: counters (per-query accounting).
        self.counters = IOCounters()
        #: Write-side accounting (``ALLOC`` / ``WRITE`` / ``FREE``), kept
        #: separate so the read-access figures are unaffected.
        self.write_counters = IOCounters()
        #: Buffer pools to notify when a page is freed (weakly held — pools
        #: are usually per-query and must not be kept alive by the disk).
        self._pools: "weakref.WeakSet" = weakref.WeakSet()

    # ------------------------------------------------------------------ #
    # buffer-pool coordination
    # ------------------------------------------------------------------ #

    def register_pool(self, pool: Any) -> None:
        """Register a buffer pool for free/write invalidation callbacks."""
        self._pools.add(pool)

    def _notify_invalidated(self, page_id: int) -> None:
        for pool in list(self._pools):
            pool.invalidate(page_id)

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def allocate(self, tag: str, size: int | None = None, payload: Any = None) -> int:
        """Allocate a new page and return its id.

        ``size`` defaults to the full page size; logical sizes larger than
        the page size are allowed (a caller-visible signal that the payload
        should have been decomposed) but flagged by :meth:`oversized_pages`.
        """
        page = Page(
            page_id=0,  # placeholder; the real id is assigned under lock
            tag=tag,
            size=self.page_size if size is None else size,
            payload=payload,
        )
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            page.page_id = page_id
            page.seal()
            self._pages[page_id] = page
        self.write_counters.record(ALLOC)
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page (evicting it from every registered buffer pool)."""
        with self._lock:
            try:
                del self._pages[page_id]
            except KeyError:
                raise PageFault(page_id) from None
        self.write_counters.record(FREE)
        self._notify_invalidated(page_id)

    def exists(self, page_id: int) -> bool:
        """Whether a page id is currently allocated."""
        with self._lock:
            return page_id in self._pages

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def read(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> Any:
        """Fetch a page payload, recording one access under ``category``.

        The access is recorded on the disk-wide counters and, when given, on
        the per-query ``counters`` as well.  The payload is verified against
        the page checksum; a mismatch raises
        :class:`~repro.storage.errors.CorruptPageError` (the transfer still
        counts — the bytes moved, they were just wrong).
        """
        with self._lock:
            try:
                page = self._pages[page_id]
            except KeyError:
                raise PageFault(page_id) from None
        self.counters.record(category)
        if counters is not None:
            counters.record(category)
        if self.read_latency > 0.0:
            time.sleep(self.read_latency)
        page.verify()
        return page.payload

    def write(self, page_id: int, payload: Any, size: int | None = None) -> None:
        """Replace a page's payload (and optionally its logical size)."""
        with self._lock:
            try:
                page = self._pages[page_id]
            except KeyError:
                raise PageFault(page_id) from None
            page.payload = payload
            if size is not None:
                page.size = size
            page.seal()
        self.write_counters.record(WRITE)
        self._notify_invalidated(page_id)

    def peek(self, page_id: int) -> Page:
        """Inspect a page without counting an access (for tests/tools)."""
        with self._lock:
            try:
                return self._pages[page_id]
            except KeyError:
                raise PageFault(page_id) from None

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def pages(self, tag_prefix: str = "") -> Iterator[Page]:
        """Iterate pages whose tag starts with ``tag_prefix``."""
        with self._lock:
            matching = [
                page
                for page in self._pages.values()
                if page.tag.startswith(tag_prefix)
            ]
        yield from matching

    def page_count(self, tag_prefix: str = "") -> int:
        """Number of live pages under a tag prefix."""
        return sum(1 for _ in self.pages(tag_prefix))

    def size_bytes(self, tag_prefix: str = "") -> int:
        """Total logical bytes of live pages under a tag prefix."""
        return sum(page.size for page in self.pages(tag_prefix))

    def size_mb(self, tag_prefix: str = "") -> float:
        """Total logical size in MB (for Figure 6 style reporting)."""
        return self.size_bytes(tag_prefix) / (1024.0 * 1024.0)

    def oversized_pages(self) -> list[Page]:
        """Pages whose logical size exceeds the transfer unit."""
        with self._lock:
            return [p for p in self._pages.values() if p.size > self.page_size]
