"""Pages: the unit of simulated disk transfer.

The paper fixes the page size at 4 KB (Section VI-A).  A page carries an
arbitrary in-memory payload (a node object, a signature fragment, a slab of
tuples, ...) together with a *logical size in bytes*; the logical size is what
the space-accounting of Figure 6 sums, while reads/writes are counted per
page regardless of payload size.

Every page also records a CRC32 checksum of its payload *fingerprint* at
allocate/write time, verified on read.  Payloads are live Python objects, so
the fingerprint is content-based where the content is value-like (bytes,
scalars, or anything exposing ``checksum_bytes()`` — partial signatures do)
and type-based for mutable structural objects (R-tree / B+-tree nodes, heap
tid slabs) that are legitimately mutated in place between writes.  Either
way, a payload swapped for garbage is detected and surfaces as a typed
:class:`~repro.storage.errors.CorruptPageError` instead of silently wrong
bits.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.storage.errors import CorruptPageError

#: Default page size in bytes, as used throughout the paper's evaluation.
DEFAULT_PAGE_SIZE = 4096


def payload_fingerprint(payload: Any) -> bytes:
    """The byte string a page checksum is computed over.

    Value-like payloads fingerprint their full content; structural objects
    that are mutated in place between explicit writes fingerprint their type
    (still enough to catch a payload replaced wholesale by corruption).
    """
    if payload is None:
        return b"\x00none"
    checksum_bytes = getattr(payload, "checksum_bytes", None)
    if checksum_bytes is not None:
        return checksum_bytes()
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return bytes(payload)
    if isinstance(payload, (bool, int, float, str)):
        return repr(payload).encode()
    return type(payload).__qualname__.encode()


def compute_checksum(payload: Any) -> int:
    """CRC32 over the payload fingerprint."""
    return zlib.crc32(payload_fingerprint(payload))


@dataclass
class Page:
    """A single disk page.

    Attributes:
        page_id: Unique identifier assigned by the owning disk.
        tag: Owner label such as ``"rtree"``, ``"pcube:A"`` or ``"heap"``;
            used to aggregate space per structure.
        size: Logical payload size in bytes (capped at the disk's page size
            for structures that decompose to fit, such as partial
            signatures).
        payload: The in-memory object this page holds.
        checksum: CRC32 of the payload fingerprint, set by :meth:`seal`;
            ``None`` means the page was never sealed (verification skips it).
    """

    page_id: int
    tag: str
    size: int
    payload: Any = field(default=None, repr=False)
    checksum: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"page size must be non-negative, got {self.size}")

    def seal(self) -> None:
        """Record the current payload's checksum (called on allocate/write)."""
        self.checksum = compute_checksum(self.payload)

    def verify(self) -> None:
        """Raise :class:`CorruptPageError` if the payload no longer matches
        the checksum recorded by the last :meth:`seal`."""
        if self.checksum is None:
            return
        if compute_checksum(self.payload) != self.checksum:
            raise CorruptPageError(self.page_id, self.tag)
