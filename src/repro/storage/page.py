"""Pages: the unit of simulated disk transfer.

The paper fixes the page size at 4 KB (Section VI-A).  A page carries an
arbitrary in-memory payload (a node object, a signature fragment, a slab of
tuples, ...) together with a *logical size in bytes*; the logical size is what
the space-accounting of Figure 6 sums, while reads/writes are counted per
page regardless of payload size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Default page size in bytes, as used throughout the paper's evaluation.
DEFAULT_PAGE_SIZE = 4096


@dataclass
class Page:
    """A single disk page.

    Attributes:
        page_id: Unique identifier assigned by the owning disk.
        tag: Owner label such as ``"rtree"``, ``"pcube:A"`` or ``"heap"``;
            used to aggregate space per structure.
        size: Logical payload size in bytes (capped at the disk's page size
            for structures that decompose to fit, such as partial
            signatures).
        payload: The in-memory object this page holds.
    """

    page_id: int
    tag: str
    size: int
    payload: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"page size must be non-negative, got {self.size}")
