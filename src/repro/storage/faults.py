"""Deterministic, seeded fault injection over the simulated disk.

Production disks fail; the paper's retrieval protocol (Section IV-B.2)
assumes they don't.  This module supplies the missing failure model:

* :class:`FaultPlan` — a declarative schedule of :class:`FaultRule`\\ s,
  matched by page tag prefix, exact page id, access count and (seeded)
  probability, so every fault sequence is reproducible bit for bit;
* :class:`FaultyDisk` — a transparent wrapper around
  :class:`~repro.storage.disk.SimulatedDisk` that consults the plan on
  every operation and injects transient read errors, permanent page
  corruption, or torn multi-page rewrites;
* :class:`RetryPolicy` — bounded retry with exponential backoff over a
  :class:`DeterministicClock` (no real sleeps, so tests and benchmarks stay
  fast and reproducible);
* :class:`FaultStats` — the tallies the robustness benchmarks report.

A typical schedule::

    plan = FaultPlan(
        rules=[
            FaultRule(kind="transient", tag="pcube:sig", count=2),
            FaultRule(kind="corrupt", tag="pcube:sig", after=5, count=1),
        ],
        seed=7,
    )
    disk = FaultyDisk(SimulatedDisk(), plan)

The first two partial-signature reads fail transiently (then succeed on
retry); the sixth matching read permanently corrupts its page, which every
later read detects as :class:`~repro.storage.errors.CorruptPageError`.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.storage.counters import IOCounters
from repro.storage.disk import PageFault, SimulatedDisk
from repro.storage.errors import (
    CorruptPageError,
    StorageFault,
    TornWriteError,
    TransientIOError,
)
from repro.storage.page import Page

FAULT_KINDS = ("transient", "corrupt", "torn", "crash", "slow")


class SimulatedCrash(RuntimeError):
    """Process death at a declared crash point.

    Deliberately *not* a :class:`StorageFault`: nothing in the read/write
    path may absorb it (no retry, no degraded fallback, no quarantine) —
    it must unwind the whole operation exactly as a real crash would kill
    the process, leaving whatever the disk already holds as the only
    surviving state.  Recovery happens on "reopen" via
    :meth:`repro.system.PCubeSystem.recover`.
    """


# ---------------------------------------------------------------------- #
# deterministic time + retry
# ---------------------------------------------------------------------- #


class DeterministicClock:
    """A clock that only advances when told to sleep — no real waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    ``max_attempts`` counts the initial try; ``max_attempts=1`` disables
    retrying.  Backoff is charged to the deterministic clock, so the total
    simulated wait is inspectable (``clock.now``) without real sleeps.

    ``jitter`` spreads each backoff delay by up to that fraction of itself,
    drawn from a seeded generator — deterministic for a fixed ``seed``, so
    retry schedules in tests and benchmarks replay bit for bit while
    concurrent retriers in a real deployment would still decorrelate.

    A *deadline* (in the clock's own timeline) turns the policy into a
    budgeted one: a retry whose backoff would sleep the clock past the
    deadline is not taken — the transient fault propagates immediately so
    the caller's degraded path runs while the query can still meet its
    deadline.  The serving layer derives the deadline from each ticket's
    remaining time (:class:`repro.serve.resilience.RetryBudget`).
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    clock: DeterministicClock = field(default_factory=DeterministicClock)
    retries: int = 0  # lifetime retry count across calls
    exhausted_budgets: int = 0  # retries skipped because the deadline forbade them

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self._jitter_rng = random.Random(self.seed)

    def _next_delay(self, delay: float) -> float:
        """The jittered sleep for a nominal backoff ``delay``."""
        if self.jitter == 0.0:
            return delay
        return delay * (1.0 + self.jitter * self._jitter_rng.random())

    def call(
        self,
        fn: Callable[[], Any],
        on_retry: Callable[[int, Exception], None] | None = None,
        deadline: float | None = None,
    ) -> Any:
        """Run ``fn``, retrying on :class:`TransientIOError` with backoff.

        Permanent failures (:class:`CorruptPageError`, :class:`PageFault`)
        propagate immediately — retrying cannot fix them.  With a
        ``deadline`` (clock time), a backoff that would overshoot it is not
        slept: the fault propagates at once instead, so the total time
        charged to the clock never exceeds the deadline.
        """
        delay = self.base_delay
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except TransientIOError as exc:
                if attempt == self.max_attempts:
                    raise
                sleep = self._next_delay(delay)
                if deadline is not None and self.clock.now + sleep > deadline:
                    self.exhausted_budgets += 1
                    raise
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.clock.sleep(sleep)
                delay *= self.multiplier
        raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------- #
# fault schedules
# ---------------------------------------------------------------------- #


@dataclass
class FaultRule:
    """One line of a fault schedule.

    Attributes:
        kind: ``"transient"`` (read fails, retry may succeed),
            ``"corrupt"`` (page payload permanently damaged; every later
            read raises :class:`CorruptPageError`), ``"torn"`` (a write /
            allocation raises :class:`TornWriteError` mid-rewrite),
            ``"crash"`` (the process dies: :class:`SimulatedCrash` is
            raised *before* the operation takes effect, so the page the
            access would have produced never reaches the disk) or
            ``"slow"`` (a latency spike: the operation succeeds but only
            after a real ``delay``-second stall — the chaos harness uses it
            to exercise deadlines and load shedding).
        op: Which operation the rule watches: ``"read"``, ``"write"`` or
            ``"allocate"``.  Defaults to ``"read"`` for transient/corrupt
            and is normally ``"allocate"`` or ``"write"`` for torn rules.
        tag: Page-tag prefix filter (``""`` matches every page).
        page_id: Exact page filter (``None`` matches every page).
        after: Skip this many matching accesses before firing.
        count: Fire at most this many times (``None`` = unlimited).
        probability: Fire with this probability per eligible access, drawn
            from the plan's seeded generator (1.0 = always).
        delay: For ``"slow"`` rules only: the real seconds the access
            stalls before proceeding.
    """

    kind: str
    op: str = "read"
    tag: str = ""
    page_id: int | None = None
    after: int = 0
    count: int | None = 1
    probability: float = 1.0
    delay: float = 0.0
    seen: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.op not in ("read", "write", "allocate"):
            raise ValueError(f"unknown fault op {self.op!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def matches(self, op: str, tag: str, page_id: int | None) -> bool:
        if op != self.op:
            return False
        if self.tag and not tag.startswith(self.tag):
            return False
        if self.page_id is not None and page_id != self.page_id:
            return False
        return True

    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


class FaultPlan:
    """A deterministic, seeded schedule of fault rules.

    The plan is stateful: each rule tracks how many matching accesses it has
    seen and how many times it has fired, so ``after``/``count`` windows are
    exact and reproducible for a fixed workload and seed.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules = list(rules)
        self._rng = random.Random(seed)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def next_fault(self, op: str, tag: str, page_id: int | None) -> FaultRule | None:
        """The first rule that fires for this access, advancing rule state."""
        for rule in self.rules:
            if not rule.matches(op, tag, page_id):
                continue
            rule.seen += 1
            if rule.exhausted() or rule.seen <= rule.after:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fired += 1
            return rule
        return None

    def pending(self) -> bool:
        """Whether any rule can still fire."""
        return any(not rule.exhausted() for rule in self.rules)


class CorruptPayload:
    """What a corrupted page holds: recognisably not the original object.

    Carries the original payload for post-mortem inspection only; nothing in
    the read path ever unwraps it — detection happens via the checksum.
    """

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptPayload({type(self.original).__qualname__})"


@dataclass
class FaultStats:
    """Fault and recovery tallies (robustness-overhead reporting)."""

    transient_errors: int = 0
    corrupt_pages: int = 0
    torn_writes: int = 0
    retries: int = 0
    degraded_loads: int = 0
    quarantines: int = 0
    rebuilds: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "transient_errors": self.transient_errors,
            "corrupt_pages": self.corrupt_pages,
            "torn_writes": self.torn_writes,
            "retries": self.retries,
            "degraded_loads": self.degraded_loads,
            "quarantines": self.quarantines,
            "rebuilds": self.rebuilds,
        }


# ---------------------------------------------------------------------- #
# the fault-injecting disk
# ---------------------------------------------------------------------- #


class FaultyDisk:
    """A :class:`SimulatedDisk` wrapper that injects scheduled faults.

    Drop-in compatible with ``SimulatedDisk`` (every structure in the
    system reads and writes through the same interface), so a whole system
    can be built over a ``FaultyDisk`` with an empty plan and armed later::

        disk = FaultyDisk(SimulatedDisk())
        system = build_system(generate_relation(config, disk=disk))
        disk.plan = FaultPlan([FaultRule(kind="transient", tag="pcube:sig")])

    Injection points:

    * ``read`` — ``transient`` rules raise :class:`TransientIOError` before
      the transfer; ``corrupt`` rules damage the page payload in place
      (without re-sealing), so this and every later read detects a checksum
      mismatch and raises :class:`CorruptPageError`.
    * ``write`` / ``allocate`` — ``torn`` rules raise
      :class:`TornWriteError` before the operation, modelling a rewrite
      interrupted part-way; ``transient`` rules raise
      :class:`TransientIOError`.
    * any op — ``slow`` rules stall the access for ``rule.delay`` real
      seconds and then let it proceed (a latency spike, not a failure);
      ``crash`` rules raise :class:`SimulatedCrash` before the
      operation: the process is dead and only already-durable pages
      survive.  A rule with ``probability=0.0`` and ``count=None`` never
      fires but still counts matching accesses in ``rule.seen`` — the
      crash-sweep tests use this to enumerate a workload's crash points.
    """

    def __init__(
        self, inner: SimulatedDisk | None = None, plan: FaultPlan | None = None
    ) -> None:
        self.inner = inner if inner is not None else SimulatedDisk()
        self.plan = plan if plan is not None else FaultPlan()
        #: kind -> number of injected faults.
        self.fault_counts: Counter[str] = Counter()
        #: Chronological injection log: ``(op, kind, page_id)``.
        self.injected: list[tuple[str, str, int | None]] = []

    # -- plan consultation --------------------------------------------- #

    def _consult(self, op: str, tag: str, page_id: int | None) -> FaultRule | None:
        rule = self.plan.next_fault(op, tag, page_id)
        if rule is not None:
            self.fault_counts[rule.kind] += 1
            self.injected.append((op, rule.kind, page_id))
        return rule

    def _corrupt(self, page: Page) -> None:
        if not isinstance(page.payload, CorruptPayload):
            page.payload = CorruptPayload(page.payload)
        # The checksum is deliberately NOT re-sealed: the mismatch is the
        # detection signal.

    # -- faultable operations ------------------------------------------ #

    def allocate(self, tag: str, size: int | None = None, payload: Any = None) -> int:
        rule = self._consult("allocate", tag, None)
        if rule is not None:
            if rule.kind == "crash":
                raise SimulatedCrash(f"crash before allocation under {tag!r}")
            if rule.kind == "torn":
                raise TornWriteError(f"torn allocation under tag {tag!r}")
            if rule.kind == "transient":
                raise TransientIOError(f"transient allocation fault ({tag!r})")
            if rule.kind == "slow":
                time.sleep(rule.delay)
        return self.inner.allocate(tag, size, payload)

    def write(self, page_id: int, payload: Any, size: int | None = None) -> None:
        tag = self.inner.peek(page_id).tag if self.inner.exists(page_id) else ""
        rule = self._consult("write", tag, page_id)
        if rule is not None:
            if rule.kind == "crash":
                raise SimulatedCrash(f"crash before write on page {page_id}")
            if rule.kind == "torn":
                raise TornWriteError(f"torn write on page {page_id}")
            if rule.kind == "transient":
                raise TransientIOError(f"transient write fault on page {page_id}")
            if rule.kind == "slow":
                time.sleep(rule.delay)
        self.inner.write(page_id, payload, size)

    def read(
        self,
        page_id: int,
        category: str,
        counters: IOCounters | None = None,
    ) -> Any:
        if not self.inner.exists(page_id):
            raise PageFault(page_id)
        page = self.inner.peek(page_id)
        rule = self._consult("read", page.tag, page_id)
        if rule is not None:
            if rule.kind == "crash":
                raise SimulatedCrash(f"crash before read of page {page_id}")
            if rule.kind == "transient":
                # The transfer never happened: no access is counted.
                raise TransientIOError(f"transient read fault on page {page_id}")
            if rule.kind == "corrupt":
                self._corrupt(page)
            if rule.kind == "slow":
                time.sleep(rule.delay)
        return self.inner.read(page_id, category, counters)

    # -- transparent delegation ---------------------------------------- #

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def counters(self) -> IOCounters:
        return self.inner.counters

    @property
    def write_counters(self) -> IOCounters:
        return self.inner.write_counters

    def register_pool(self, pool: Any) -> None:
        self.inner.register_pool(pool)

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)

    def exists(self, page_id: int) -> bool:
        return self.inner.exists(page_id)

    def peek(self, page_id: int) -> Page:
        return self.inner.peek(page_id)

    def pages(self, tag_prefix: str = "") -> Iterator[Page]:
        return self.inner.pages(tag_prefix)

    def page_count(self, tag_prefix: str = "") -> int:
        return self.inner.page_count(tag_prefix)

    def size_bytes(self, tag_prefix: str = "") -> int:
        return self.inner.size_bytes(tag_prefix)

    def size_mb(self, tag_prefix: str = "") -> float:
        return self.inner.size_mb(tag_prefix)

    def oversized_pages(self) -> list[Page]:
        return self.inner.oversized_pages()


__all__ = [
    "CorruptPageError",
    "CorruptPayload",
    "DeterministicClock",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "FaultyDisk",
    "RetryPolicy",
    "SimulatedCrash",
    "StorageFault",
    "TornWriteError",
    "TransientIOError",
]
