"""P-Cube: answering preference queries in multi-dimensional space.

A complete reproduction of Xin & Han, ICDE 2008.  Quickstart::

    from repro import (
        BooleanPredicate, Relation, Schema, WeightedSquaredDistance,
        build_system,
    )

    schema = Schema(("type", "maker", "color"), ("price", "mileage"))
    relation = Relation(schema, bool_rows, pref_rows)
    system = build_system(relation)

    # Example 1: top-10 red sedans near price 15k / mileage 30k.
    result = system.engine.topk(
        WeightedSquaredDistance(target=(15_000, 30_000), weights=(1.0, 0.5)),
        k=10,
        predicate=BooleanPredicate({"type": "sedan", "color": "red"}),
    )

    # Example 2: skylines, then roll up on a boolean dimension.
    professional = system.engine.skyline(
        BooleanPredicate({"type": "professional", "brand": "canon"})
    )
    all_makers = system.engine.roll_up(professional, "brand")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.pcube import PCube
from repro.core.signature import Signature
from repro.obs.trace import Span, TraceEvent, Tracer
from repro.cube.cuboid import Cell, Cuboid
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.query.engine import PreferenceEngine, QueryResult
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import (
    LinearFunction,
    MonotoneFunction,
    RankingFunction,
    SeparableFunction,
    SumFunction,
    WeightedSquaredDistance,
)
from repro.query.sql import execute as execute_sql
from repro.query.sql import parse_query
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.system import BuildTimings, PCubeSystem, build_system

__version__ = "1.0.0"

__all__ = [
    "BooleanPredicate",
    "BuildTimings",
    "Cell",
    "Cuboid",
    "LinearFunction",
    "MonotoneFunction",
    "PCube",
    "PCubeSystem",
    "PreferenceEngine",
    "QueryResult",
    "QueryStats",
    "RankingFunction",
    "Relation",
    "RTree",
    "Schema",
    "SeparableFunction",
    "Signature",
    "Span",
    "SumFunction",
    "TraceEvent",
    "Tracer",
    "WeightedSquaredDistance",
    "build_system",
    "execute_sql",
    "parse_query",
]
