"""Ranking functions with region lower bounds.

Section III requires: "Given a function f and the domain region Ω on its
variables, the lower bound of f over Ω can be derived."  Each ranking
function here therefore implements both ``score(point)`` and
``lower_bound(rect)``; the latter drives the best-first order and the
pruning bound of top-k processing (users prefer minimal values).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.kernels import mindist
from repro.rtree.geometry import Rect


class RankingFunction(ABC):
    """A function to minimise over the preference dimensions."""

    @abstractmethod
    def score(self, point: Sequence[float]) -> float:
        """The exact value at a data point."""

    @abstractmethod
    def lower_bound(self, rect: Rect) -> float:
        """A value ≤ ``score(x)`` for every ``x`` in ``rect``.

        Tightness is a performance matter, not a correctness one; the
        implementations below are all exact minima over the rectangle.
        """

    def score_block(self, points: Sequence[Sequence[float]]) -> list[float]:
        """``[score(p) for p in points]`` — overridden with a batch kernel
        where the formula vectorizes bit-identically; this default keeps
        arbitrary subclasses (e.g. :class:`MonotoneFunction`) correct."""
        return [self.score(p) for p in points]

    def lower_bound_block(self, rects: Sequence[Rect]) -> list[float]:
        """``[lower_bound(r) for r in rects]`` (see :meth:`score_block`)."""
        return [self.lower_bound(r) for r in rects]


class LinearFunction(RankingFunction):
    """``f = Σ w_d · x_d`` — the Figure 13 query family (random a, b, c).

    Weights may be negative; the exact minimum over a rectangle picks the
    low corner for non-negative weights and the high corner otherwise.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("at least one weight is required")
        self.weights = tuple(float(w) for w in weights)

    def score(self, point: Sequence[float]) -> float:
        return sum(w * x for w, x in zip(self.weights, point))

    def lower_bound(self, rect: Rect) -> float:
        return sum(
            w * (lo if w >= 0 else hi)
            for w, lo, hi in zip(self.weights, rect.lows, rect.highs)
        )

    def score_block(self, points: Sequence[Sequence[float]]) -> list[float]:
        return mindist.linear_score_block(self.weights, points)

    def lower_bound_block(self, rects: Sequence[Rect]) -> list[float]:
        return mindist.linear_lower_bound_block(
            self.weights,
            [r.lows for r in rects],
            [r.highs for r in rects],
        )

    def __repr__(self) -> str:
        return f"LinearFunction({list(self.weights)})"


class SumFunction(LinearFunction):
    """``f = Σ x_d`` — the heap key d(n) of skyline processing."""

    def __init__(self, dims: int) -> None:
        super().__init__([1.0] * dims)


class WeightedSquaredDistance(RankingFunction):
    """``f = Σ w_d (x_d − t_d)²`` — Example 1's used-car query
    (``(price − 15k)² + α(mileage − 30k)²``).

    The minimum over a rectangle clamps the target into the rectangle
    per dimension (the classic MINDIST).
    """

    def __init__(
        self, target: Sequence[float], weights: Sequence[float] | None = None
    ) -> None:
        self.target = tuple(float(t) for t in target)
        if weights is None:
            weights = [1.0] * len(self.target)
        if len(weights) != len(self.target):
            raise ValueError("weights and target must have the same length")
        if any(w < 0 for w in weights):
            raise ValueError("distance weights must be non-negative")
        self.weights = tuple(float(w) for w in weights)

    def score(self, point: Sequence[float]) -> float:
        return sum(
            w * (x - t) ** 2
            for w, x, t in zip(self.weights, point, self.target)
        )

    def lower_bound(self, rect: Rect) -> float:
        total = 0.0
        for w, t, lo, hi in zip(
            self.weights, self.target, rect.lows, rect.highs
        ):
            if t < lo:
                delta = lo - t
            elif t > hi:
                delta = t - hi
            else:
                continue
            total += w * delta * delta
        return total

    def score_block(self, points: Sequence[Sequence[float]]) -> list[float]:
        return mindist.wsd_score_block(self.weights, self.target, points)

    def lower_bound_block(self, rects: Sequence[Rect]) -> list[float]:
        return mindist.wsd_lower_bound_block(
            self.weights,
            self.target,
            [r.lows for r in rects],
            [r.highs for r in rects],
        )

    def __repr__(self) -> str:
        return (
            f"WeightedSquaredDistance(target={list(self.target)}, "
            f"weights={list(self.weights)})"
        )


class SeparableFunction(RankingFunction):
    """``f = Σ_t g_t(x_{d_t})`` — a sum of per-dimension terms.

    Each term is either linear (``coeff · x_d``) or squared-distance
    (``coeff · (x_d − target)²``).  Separability makes the exact rectangle
    minimum the sum of per-term interval minima, so arbitrary mixes of the
    paper's Example 1 style distance terms and Figure 13 style linear
    terms get a valid (and per-term tight) lower bound.

    Terms are ``(dim, kind, coeff, target)`` with ``kind`` in
    ``{"linear", "squared"}`` (``target`` ignored for linear terms).
    """

    def __init__(
        self, terms: Sequence[tuple[int, str, float, float]]
    ) -> None:
        if not terms:
            raise ValueError("at least one term is required")
        for dim, kind, coeff, _target in terms:
            if dim < 0:
                raise ValueError("term dimensions must be non-negative")
            if kind not in ("linear", "squared"):
                raise ValueError(f"unknown term kind {kind!r}")
            if kind == "squared" and coeff < 0:
                raise ValueError("squared terms need non-negative weights")
        self.terms = [
            (int(dim), kind, float(coeff), float(target))
            for dim, kind, coeff, target in terms
        ]

    def score(self, point: Sequence[float]) -> float:
        total = 0.0
        for dim, kind, coeff, target in self.terms:
            value = point[dim]
            if kind == "linear":
                total += coeff * value
            else:
                total += coeff * (value - target) ** 2
        return total

    def lower_bound(self, rect: Rect) -> float:
        total = 0.0
        for dim, kind, coeff, target in self.terms:
            lo, hi = rect.lows[dim], rect.highs[dim]
            if kind == "linear":
                total += coeff * (lo if coeff >= 0 else hi)
            else:
                if target < lo:
                    delta = lo - target
                elif target > hi:
                    delta = target - hi
                else:
                    delta = 0.0
                total += coeff * delta * delta
        return total

    def score_block(self, points: Sequence[Sequence[float]]) -> list[float]:
        return mindist.separable_score_block(self.terms, points)

    def lower_bound_block(self, rects: Sequence[Rect]) -> list[float]:
        return mindist.separable_lower_bound_block(
            self.terms,
            [r.lows for r in rects],
            [r.highs for r in rects],
        )

    def __repr__(self) -> str:
        return f"SeparableFunction({self.terms!r})"


class MonotoneFunction(RankingFunction):
    """Any function non-decreasing in every coordinate.

    Its exact rectangle minimum sits at the low corner, so a single
    callable suffices (e.g. ``max``, weighted power means, log-sums).
    """

    def __init__(
        self, fn: Callable[[Sequence[float]], float], name: str = "monotone"
    ) -> None:
        self.fn = fn
        self.name = name

    def score(self, point: Sequence[float]) -> float:
        return float(self.fn(point))

    def lower_bound(self, rect: Rect) -> float:
        return float(self.fn(rect.lows))

    def __repr__(self) -> str:
        return f"MonotoneFunction({self.name})"
