"""Top-k queries with boolean predicates — the Signature method."""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core.pcube import PCube
from repro.kernels import backend as kernel_backend
from repro.obs.trace import Tracer
from repro.cube.relation import Relation
from repro.query.algorithm1 import SearchState, TopKStrategy, run_algorithm1
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


def topk_signature(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    fn: RankingFunction,
    k: int,
    predicate: BooleanPredicate | None = None,
    pool: BufferPool | None = None,
    eager_assembly: bool = False,
    keep_lists: bool = True,
    tracer: Tracer | None = None,
) -> tuple[list[tuple[int, float]], QueryStats, SearchState]:
    """Top-k processing per Section V-B: best-first by the lower bound of
    ``fn`` over each node, k-th-score preference pruning, signature-based
    boolean pruning.

    Returns:
        ``(ranked, stats, state)`` where ``ranked`` is a list of
        ``(tid, score)`` in non-decreasing score order (ties arbitrary), of
        length ``min(k, |qualifying tuples|)``.
    """
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    if tracer is not None and tracer.counters is None:
        tracer.counters = stats.counters
    query_span = (
        tracer.span("query:topk", k=k) if tracer is not None else nullcontext()
    )
    with query_span:
        started = time.perf_counter()
        reader = None
        if predicate is not None and not predicate.is_empty():
            with (
                tracer.span("reader:setup")
                if tracer is not None
                else nullcontext()
            ):
                reader = pcube.reader_for_predicate(
                    predicate.conjuncts,
                    pool,
                    stats.counters,
                    eager=eager_assembly,
                    tracer=tracer,
                )
        strategy = TopKStrategy(fn, k)
        state = run_algorithm1(
            rtree,
            strategy,
            stats,
            reader=reader,
            pool=pool,
            block_category=SBLOCK,
            keep_lists=keep_lists,
            tracer=tracer,
        )
        stats.elapsed_seconds = time.perf_counter() - started
    if reader is not None:
        stats.sig_load_seconds = reader.load_seconds
    ranked = [
        (entry.tid, entry.key)
        for entry in state.results
        if entry.tid is not None
    ]
    return ranked, stats, state
