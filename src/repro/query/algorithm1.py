"""Algorithm 1: the signature-based progressive search framework.

The paper's framework (Section V) in full generality:

* a candidate min-heap ordered by a lower-bound key — ``d(n) = Σ lows`` for
  skylines, ``f(n) = min f over the MBR`` for top-k;
* a ``prune`` procedure whose two arms are *preference pruning* (strategy
  specific) and *boolean pruning* (signature bit tests);
* pruned entries are kept in ``d_list`` / ``b_list`` so drill-down and
  roll-up queries can rebuild the heap without starting from the root
  (Lemma 2);
* an optional *verifier* hook: the Domination baseline has no signature and
  instead verifies the boolean predicate by a random tuple access exactly
  when a data object is about to be reported (minimal probing [3], "between
  lines 7 and 8").

Entries carry their R-tree *path*, which is simultaneously the signature
address of their bit — the bridge between the two prunings.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.kernels.dominate import DominationBuffer
from repro.kernels.mindist import sum_block
from repro.obs.trace import EXPAND, REPORT, Tracer
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.geometry import Rect
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


class BooleanReader(Protocol):
    """What Algorithm 1 needs from a signature reader."""

    def check_entry(self, parent_path: Sequence[int], position: int) -> bool: ...

    def check_path(self, path: Sequence[int]) -> bool: ...


class HeapEntry:
    """A candidate: either an R-tree node or a data object (tuple).

    Node entries carry the MBR their *parent* stored for them (``rect``) —
    known without reading the node itself, which is what strategies must
    prune on.

    ``tie`` breaks sum-key collisions.  The skyline strategies' key is a
    float sum of coordinates, and rounding can make a dominated point's key
    *equal* to its dominator's (the real-arithmetic strict inequality
    collapses to a tie in the last ulp).  BBS's correctness argument needs
    the dominator out of the heap first, so strategies supply the probe
    vector itself as a lexicographic tie-break: float addition is monotone,
    hence componentwise-≤ implies key-≤, and on a key tie componentwise-≤
    plus somewhere-< implies lexicographically-<.  Node entries use the low
    corner, which is componentwise ≤ every contained point, so dominating
    chains pop first inductively.
    """

    __slots__ = ("key", "tie", "seq", "path", "node", "tid", "point", "rect")

    def __init__(
        self,
        key: float,
        seq: int,
        path: tuple[int, ...],
        node: RTreeNode | None = None,
        tid: int | None = None,
        point: tuple[float, ...] | None = None,
        rect: Rect | None = None,
        tie: tuple[float, ...] = (),
    ) -> None:
        self.key = key
        self.tie = tie
        self.seq = seq
        self.path = path
        self.node = node
        self.tid = tid
        self.point = point
        self.rect = rect

    @property
    def is_tuple(self) -> bool:
        return self.tid is not None

    def __lt__(self, other: "HeapEntry") -> bool:
        return (self.key, self.tie, self.seq) < (other.key, other.tie, other.seq)

    def __repr__(self) -> str:
        what = f"tid={self.tid}" if self.is_tuple else f"node#{self.node.node_id}"
        return f"HeapEntry(key={self.key:.4g}, {what}, path={self.path})"


@dataclass
class SearchState:
    """Everything a query leaves behind for incremental follow-ups.

    ``results`` holds reported entries in report order; ``b_list`` the
    entries pruned by boolean predicates; ``d_list`` the entries pruned by
    preference (domination / k-th score); ``heap`` whatever was still
    pending when the search stopped (non-empty only for early-terminating
    top-k runs).
    """

    heap: list[HeapEntry] = field(default_factory=list)
    results: list[HeapEntry] = field(default_factory=list)
    b_list: list[HeapEntry] = field(default_factory=list)
    d_list: list[HeapEntry] = field(default_factory=list)
    seq: int = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class SkylineStrategy:
    """Preference pruning by skyline domination (BBS-style).

    Section III allows the preference criterion to name a *subset* of the
    preference dimensions (``N'1, ..., N'j ⊆ N``); passing ``subspace``
    (0-based positions) restricts dominance and the heap key to those
    dimensions.  Projection of an MBR is an MBR, so the low-corner pruning
    argument carries over unchanged.  Points equal on the whole subspace
    do not dominate each other and all survive.
    """

    def __init__(
        self, dims: int, subspace: Sequence[int] | None = None
    ) -> None:
        self.dims = dims
        if subspace is not None:
            subspace = tuple(subspace)
            if not subspace:
                raise ValueError("subspace must name at least one dimension")
            if len(set(subspace)) != len(subspace):
                raise ValueError("subspace repeats a dimension")
            if any(not 0 <= d < dims for d in subspace):
                raise ValueError(f"subspace positions outside [0, {dims})")
        self.subspace = subspace
        self._buffer = DominationBuffer(
            len(subspace) if subspace is not None else dims
        )

    @property
    def result_points(self) -> list[tuple[float, ...]]:
        """Discovered skyline points (projected), report order."""
        return self._buffer.points()

    def _project(self, point: Sequence[float]) -> tuple[float, ...]:
        if self.subspace is None:
            return tuple(point)
        return tuple(point[d] for d in self.subspace)

    def node_key(self, rect: Rect) -> float:
        return sum(self._project(rect.lows))

    def point_key(self, point: Sequence[float]) -> float:
        return sum(self._project(point))

    def block_point_keys(
        self, points: Sequence[Sequence[float]]
    ) -> list[float]:
        return sum_block([self._project(p) for p in points])

    def block_node_keys(self, rects: Sequence[Rect]) -> list[float]:
        return sum_block([self._project(r.lows) for r in rects])

    def node_tie(self, rect: Rect) -> tuple[float, ...]:
        return self._project(rect.lows)

    def point_tie(self, point: Sequence[float]) -> tuple[float, ...]:
        return self._project(point)

    def prune(self, entry: HeapEntry) -> bool:
        """Dominated by a discovered skyline point?

        Every entry carries a probe point: a tuple entry its data point, a
        node entry its MBR's low corner.  Dominating the (projected) low
        corner dominates the whole (projected) region, so one check covers
        both cases.
        """
        probe = entry.point
        assert probe is not None
        return self._buffer.dominates_point(self._project(probe))

    def prune_block(self, entries: Sequence[HeapEntry]) -> list[bool]:
        return self._buffer.dominates_block(
            [self._project(e.point) for e in entries]
        )

    def add_result(self, entry: HeapEntry) -> bool:
        assert entry.point is not None
        self._buffer.add(self._project(entry.point))
        return True

    def finished(self, next_key: float) -> bool:
        return False


class TopKStrategy:
    """Preference pruning by the k-th best score discovered so far."""

    def __init__(self, fn: RankingFunction, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.fn = fn
        self.k = k
        self.scores: list[float] = []  # sorted ascending, at most k

    def node_key(self, rect: Rect) -> float:
        return self.fn.lower_bound(rect)

    def point_key(self, point: Sequence[float]) -> float:
        return self.fn.score(point)

    def block_point_keys(
        self, points: Sequence[Sequence[float]]
    ) -> list[float]:
        return self.fn.score_block(points)

    def block_node_keys(self, rects: Sequence[Rect]) -> list[float]:
        return self.fn.lower_bound_block(rects)

    def node_tie(self, rect: Rect) -> tuple[float, ...]:
        return ()  # top-k correctness is tie-order independent (≥ tests)

    def point_tie(self, point: Sequence[float]) -> tuple[float, ...]:
        return ()

    def prune(self, entry: HeapEntry) -> bool:
        """At least k discovered objects score no worse than the bound."""
        return len(self.scores) >= self.k and entry.key >= self.scores[-1]

    def prune_block(self, entries: Sequence[HeapEntry]) -> list[bool]:
        if len(self.scores) < self.k:
            return [False] * len(entries)
        worst = self.scores[-1]
        return [e.key >= worst for e in entries]

    def add_result(self, entry: HeapEntry) -> bool:
        if len(self.scores) >= self.k and entry.key >= self.scores[-1]:
            return False
        self.scores.append(entry.key)
        self.scores.sort()
        if len(self.scores) > self.k:
            self.scores.pop()
        return True

    def finished(self, next_key: float) -> bool:
        """Best-first order: once k results exist and the next bound is no
        better than the worst of them, nothing can improve the answer."""
        return len(self.scores) >= self.k and next_key >= self.scores[-1]


Strategy = SkylineStrategy | TopKStrategy


# Third-party strategies only have to implement the scalar protocol
# (point_key / node_key / prune); the batch entry points below fall back to
# per-item loops when the block methods are absent.


def _batch_point_keys(strategy, points: list) -> list[float]:
    method = getattr(strategy, "block_point_keys", None)
    if method is not None:
        return method(points)
    return [strategy.point_key(p) for p in points]


def _batch_node_keys(strategy, rects: list[Rect]) -> list[float]:
    method = getattr(strategy, "block_node_keys", None)
    if method is not None:
        return method(rects)
    return [strategy.node_key(r) for r in rects]


def _batch_prune(strategy, entries: list[HeapEntry]) -> list[bool]:
    method = getattr(strategy, "prune_block", None)
    if method is not None:
        return method(entries)
    return [strategy.prune(e) for e in entries]


def make_root_state(rtree: RTree, strategy: Strategy) -> SearchState:
    """A fresh state whose heap holds only the R-tree root."""
    state = SearchState()
    root = rtree.root
    if root.live_count() == 0:
        return state
    mbr = root.mbr()
    entry = HeapEntry(
        key=strategy.node_key(mbr),
        seq=state.next_seq(),
        path=(),
        node=root,
        point=mbr.lows,
        rect=mbr,
        tie=strategy.node_tie(mbr),
    )
    state.heap.append(entry)
    return state


def run_algorithm1(
    rtree: RTree,
    strategy: Strategy,
    stats: QueryStats,
    reader: BooleanReader | None = None,
    verifier: Callable[[int], bool] | None = None,
    pool: BufferPool | None = None,
    block_category: str = SBLOCK,
    state: SearchState | None = None,
    keep_lists: bool = True,
    tracer: Tracer | None = None,
    ticker: Callable[[], None] | None = None,
) -> SearchState:
    """Run (or resume) Algorithm 1 until the heap empties or top-k finishes.

    Args:
        rtree: The shared partition template.
        strategy: Skyline or top-k preference pruning.
        stats: Mutated in place with counters and peaks.
        reader: Signature reader for boolean pruning; ``None`` disables the
            boolean arm (the Domination baseline, or ``BP = φ``).
        verifier: Minimal-probing hook called on data objects about to be
            reported; returning False discards the object.
        pool: Buffer pool for counted node reads (falls back to raw disk
            reads on the tree's disk).
        block_category: Counter category for node reads (``SBLOCK`` for the
            Signature method, ``DBLOCK`` for Domination).
        state: Resume from a reconstructed state (drill-down / roll-up).
        keep_lists: Maintain ``b_list`` / ``d_list`` (disable to save memory
            when no follow-up query will ever resume from this one).
        tracer: Optional :class:`~repro.obs.trace.Tracer`.  When given, the
            two BBS phases open spans (``bbs:init`` for heap seeding,
            ``bbs:search`` for the progressive loop) and every pruned
            entry, node expansion and reported result emits an event;
            when ``None`` the hooks cost one comparison each.
        ticker: Called once per heap pop; the serving executor uses it for
            deadline/cancellation checks (it raises to abort the query).
            The partially filled ``state``/``stats`` stay consistent — the
            caller just must not report them as a completed answer.
    """
    with (
        tracer.span("bbs:init", resumed=state is not None)
        if tracer is not None
        else nullcontext()
    ):
        if state is None:
            state = make_root_state(rtree, strategy)
        heap = state.heap
        heapq.heapify(heap)
        stats.note_heap(len(heap))

    search_span = (
        tracer.span("bbs:search", heap0=len(heap))
        if tracer is not None
        else nullcontext()
    )
    with search_span:
        while heap:
            if ticker is not None:
                ticker()
            entry = heapq.heappop(heap)
            if strategy.finished(entry.key):
                heapq.heappush(heap, entry)  # keep it for incremental reuse
                break
            # --- prune procedure (paper lines 14-20): preference then
            # boolean.
            if strategy.prune(entry):
                stats.dominance_pruned += 1
                if tracer is not None:
                    tracer.prune("pref", path=entry.path, key=entry.key)
                if keep_lists:
                    state.d_list.append(entry)
                continue
            if reader is not None and not reader.check_path(entry.path):
                stats.boolean_pruned += 1
                if tracer is not None:
                    tracer.prune("bool", path=entry.path, key=entry.key)
                if keep_lists:
                    state.b_list.append(entry)
                continue

            if entry.is_tuple:
                if verifier is not None:
                    stats.verified += 1
                    if not verifier(entry.tid):
                        stats.verify_failed += 1
                        continue
                if strategy.add_result(entry):
                    state.results.append(entry)
                    stats.results += 1
                    if tracer is not None:
                        tracer.event(REPORT, tid=entry.tid, key=entry.key)
                continue

            # --- expand the node: one counted R-tree block read.
            node = entry.node
            assert node is not None and node.page_id is not None
            if pool is not None:
                pool.get(node.page_id, block_category, stats.counters)
            else:
                rtree.disk.read(node.page_id, block_category, stats.counters)
            stats.nodes_expanded += 1
            if tracer is not None:
                tracer.event(EXPAND, path=entry.path, heap=len(heap))

            # Batch the expansion: keys for all live children in one kernel
            # call, then one block domination test.  Entry construction
            # stays in slot order, so ``seq`` is assigned to every live
            # child exactly as the per-child loop did; the prune decisions
            # are order-independent within one expansion because the
            # skyline buffer / top-k scores only change at pops.
            live = list(node.live_entries())
            leaf_points = [
                child.mbr.lows for _, child in live if child.is_leaf_entry
            ]
            inner_rects = [
                child.mbr for _, child in live if not child.is_leaf_entry
            ]
            leaf_keys = iter(
                _batch_point_keys(strategy, leaf_points) if leaf_points else ()
            )
            inner_keys = iter(
                _batch_node_keys(strategy, inner_rects) if inner_rects else ()
            )
            children: list[HeapEntry] = []
            for slot, child in live:
                child_path = entry.path + (slot + 1,)
                if child.is_leaf_entry:
                    point = child.mbr.lows
                    child_entry = HeapEntry(
                        key=next(leaf_keys),
                        seq=state.next_seq(),
                        path=child_path,
                        tid=child.tid,
                        point=point,
                        tie=strategy.point_tie(point),
                    )
                else:
                    child_entry = HeapEntry(
                        key=next(inner_keys),
                        seq=state.next_seq(),
                        path=child_path,
                        node=child.child,
                        point=child.mbr.lows,
                        rect=child.mbr,
                        tie=strategy.node_tie(child.mbr),
                    )
                children.append(child_entry)
            pruned = _batch_prune(strategy, children) if children else []
            for (slot, _), child_entry, is_pruned in zip(
                live, children, pruned
            ):
                if is_pruned:
                    stats.dominance_pruned += 1
                    if tracer is not None:
                        tracer.prune(
                            "pref",
                            path=child_entry.path,
                            key=child_entry.key,
                        )
                    if keep_lists:
                        state.d_list.append(child_entry)
                    continue
                if reader is not None and not reader.check_entry(
                    entry.path, slot + 1
                ):
                    stats.boolean_pruned += 1
                    if tracer is not None:
                        tracer.prune(
                            "bool",
                            path=child_entry.path,
                            key=child_entry.key,
                        )
                    if keep_lists:
                        state.b_list.append(child_entry)
                    continue
                heapq.heappush(heap, child_entry)
            stats.note_heap(len(heap))
    return state
