"""Query processing over P-Cube (paper Section V).

:mod:`repro.query.algorithm1` implements the paper's Algorithm 1: a
best-first branch-and-bound over the R-tree whose ``prune`` procedure
combines *preference pruning* (skyline domination or top-k score bounds)
with *boolean pruning* (signature bit tests), maintaining the ``result``,
``b_list`` and ``d_list`` needed for Lemma 2's incremental drill-down /
roll-up (:mod:`repro.query.engine`).
"""

from repro.query.predicates import BooleanPredicate
from repro.query.ranking import (
    LinearFunction,
    MonotoneFunction,
    RankingFunction,
    SumFunction,
    WeightedSquaredDistance,
)
from repro.query.stats import QueryStats
from repro.query.skyline import skyline_signature
from repro.query.topk import topk_signature
from repro.query.dynamic import dynamic_skyline_signature
from repro.query.hull import lower_hull_signature
from repro.query.engine import PreferenceEngine, QueryResult
from repro.query.sql import SQLSyntaxError, execute as execute_sql, parse_query

__all__ = [
    "BooleanPredicate",
    "LinearFunction",
    "MonotoneFunction",
    "PreferenceEngine",
    "QueryResult",
    "QueryStats",
    "RankingFunction",
    "SumFunction",
    "WeightedSquaredDistance",
    "SQLSyntaxError",
    "dynamic_skyline_signature",
    "execute_sql",
    "lower_hull_signature",
    "parse_query",
    "skyline_signature",
    "topk_signature",
]
