"""Boolean predicates: conjunctions of equality conditions.

The paper's queries constrain the target subset with
``A1 = a1 AND ... AND Ai = ai`` over boolean dimensions; drill-down
strengthens the conjunction by one conjunct, roll-up removes one
(Section V-C).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.cube.cuboid import Cell
from repro.cube.relation import Relation


class BooleanPredicate:
    """An immutable conjunction ``dim = value AND ...`` (possibly empty)."""

    __slots__ = ("_conjuncts",)

    def __init__(self, conjuncts: Mapping[str, Any] | None = None) -> None:
        items = tuple(sorted((conjuncts or {}).items()))
        object.__setattr__(self, "_conjuncts", items)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BooleanPredicate is immutable")

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def conjuncts(self) -> dict[str, Any]:
        return dict(self._conjuncts)

    def dims(self) -> tuple[str, ...]:
        return tuple(dim for dim, _ in self._conjuncts)

    def is_empty(self) -> bool:
        """``BP = φ``: no boolean constraint at all."""
        return not self._conjuncts

    def __len__(self) -> int:
        return len(self._conjuncts)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self._conjuncts)

    def cell(self) -> Cell:
        """The multi-dimensional cube cell this predicate selects."""
        if self.is_empty():
            raise ValueError("the empty predicate selects the apex, not a cell")
        dims, values = zip(*self._conjuncts)
        return Cell(tuple(dims), tuple(values))

    def atomic_cells(self) -> tuple[Cell, ...]:
        """One-dimensional cells whose conjunction equals this predicate."""
        return tuple(
            Cell((dim,), (value,)) for dim, value in self._conjuncts
        )

    def matches(self, relation: Relation, tid: int) -> bool:
        """Ground-truth evaluation against the base table."""
        return all(
            relation.bool_value(tid, dim) == value
            for dim, value in self._conjuncts
        )

    # ------------------------------------------------------------------ #
    # OLAP navigation
    # ------------------------------------------------------------------ #

    def drill_down(self, dim: str, value: Any) -> "BooleanPredicate":
        """Strengthen: add one conjunct (must be a new dimension)."""
        if any(d == dim for d, _ in self._conjuncts):
            raise ValueError(f"dimension {dim!r} is already constrained")
        merged = dict(self._conjuncts)
        merged[dim] = value
        return BooleanPredicate(merged)

    def roll_up(self, dim: str) -> "BooleanPredicate":
        """Relax: drop the conjunct on ``dim``."""
        remaining = {d: v for d, v in self._conjuncts if d != dim}
        if len(remaining) == len(self._conjuncts):
            raise ValueError(f"dimension {dim!r} is not constrained")
        return BooleanPredicate(remaining)

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanPredicate):
            return NotImplemented
        return self._conjuncts == other._conjuncts

    def __hash__(self) -> int:
        return hash(self._conjuncts)

    def __repr__(self) -> str:
        if self.is_empty():
            return "BooleanPredicate(φ)"
        inner = " AND ".join(f"{d}={v!r}" for d, v in self._conjuncts)
        return f"BooleanPredicate({inner})"
