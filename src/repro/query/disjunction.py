"""Disjunctive boolean predicates via signature union (paper Fig. 3b).

Section IV-B.2 defines *two* assembly operators; intersection serves the
conjunctive queries of the evaluation, while union serves disjunctions —
the paper's own example assembles the ``(A=a2 OR B=b2)`` signature.  This
module processes predicates in disjunctive normal form: a list of
conjunctive :class:`~repro.query.predicates.BooleanPredicate` disjuncts.

Two assembly modes, mirroring the conjunctive ones:

* **lazy** — an any-of reader over the per-disjunct readers: exact at leaf
  slots, conservative at internal nodes;
* **eager** — materialise each disjunct's exact signature (recursive
  intersection over its cover) and fold them with the paper's union
  operator; maximal pruning, higher load cost.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.ops import union_all
from repro.core.pcube import EmptyReader, PCube, SignatureAdapter
from repro.cube.relation import Relation
from repro.query.algorithm1 import (
    SearchState,
    SkylineStrategy,
    TopKStrategy,
    run_algorithm1,
)
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


class AnyOfReader:
    """Disjunction of boolean-prune readers (lazy OR)."""

    def __init__(self, readers: Sequence) -> None:
        if not readers:
            raise ValueError("AnyOfReader needs at least one reader")
        self.readers = list(readers)

    @property
    def load_seconds(self) -> float:
        return sum(reader.load_seconds for reader in self.readers)

    @property
    def loads(self) -> int:
        return sum(reader.loads for reader in self.readers)

    def check_entry(self, parent_path, position) -> bool:
        return any(
            reader.check_entry(parent_path, position)
            for reader in self.readers
        )

    def check_path(self, path) -> bool:
        return any(reader.check_path(path) for reader in self.readers)


def matches_dnf(
    relation: Relation,
    disjuncts: Sequence[BooleanPredicate],
    tid: int,
) -> bool:
    """Ground-truth DNF evaluation (any disjunct matches)."""
    return any(disjunct.matches(relation, tid) for disjunct in disjuncts)


def reader_for_dnf(
    pcube: PCube,
    disjuncts: Sequence[BooleanPredicate],
    pool: BufferPool | None = None,
    counters=None,
    eager: bool = False,
):
    """A boolean-prune reader for ``disjunct_1 OR disjunct_2 OR ...``.

    Returns ``None`` when some disjunct is the empty conjunction ``φ``
    (the disjunction is then a tautology: no pruning possible).
    """
    if not disjuncts:
        raise ValueError("reader_for_dnf needs at least one disjunct")
    if any(disjunct.is_empty() for disjunct in disjuncts):
        return None
    readers = []
    for disjunct in disjuncts:
        reader = pcube.reader_for_predicate(
            disjunct.conjuncts, pool, counters, eager=eager
        )
        if isinstance(reader, EmptyReader):
            continue  # an unsatisfiable disjunct contributes nothing
        readers.append(reader)
    if not readers:
        return EmptyReader()
    if eager:
        # Every eager reader is a SignatureAdapter; fold with the paper's
        # union operator into one exact signature (Fig. 3b).
        signatures = [reader.signature for reader in readers]
        return SignatureAdapter(union_all(signatures))
    if len(readers) == 1:
        return readers[0]
    return AnyOfReader(readers)


def _run_dnf(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    disjuncts: Sequence[BooleanPredicate],
    strategy,
    pool: BufferPool | None,
    eager: bool,
) -> tuple[SearchState, QueryStats]:
    stats = QueryStats()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    reader = reader_for_dnf(
        pcube, disjuncts, pool, stats.counters, eager=eager
    )
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=reader,
        pool=pool,
        block_category=SBLOCK,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    if reader is not None:
        stats.sig_load_seconds = reader.load_seconds
    return state, stats


def skyline_dnf(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    disjuncts: Sequence[BooleanPredicate],
    pool: BufferPool | None = None,
    eager_assembly: bool = False,
) -> tuple[list[int], QueryStats]:
    """Skyline over the union of the disjuncts' subsets."""
    state, stats = _run_dnf(
        relation,
        rtree,
        pcube,
        disjuncts,
        SkylineStrategy(dims=rtree.dims),
        pool,
        eager_assembly,
    )
    return [e.tid for e in state.results if e.tid is not None], stats


def topk_dnf(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    fn: RankingFunction,
    k: int,
    disjuncts: Sequence[BooleanPredicate],
    pool: BufferPool | None = None,
    eager_assembly: bool = False,
) -> tuple[list[tuple[int, float]], QueryStats]:
    """Top-k over the union of the disjuncts' subsets."""
    state, stats = _run_dnf(
        relation,
        rtree,
        pcube,
        disjuncts,
        TopKStrategy(fn, k),
        pool,
        eager_assembly,
    )
    ranked = [(e.tid, e.key) for e in state.results if e.tid is not None]
    return ranked, stats
