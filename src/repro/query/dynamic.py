"""Dynamic skyline queries (paper Section VII extension).

    "Algorithm 1 can also be easily extended to support other preference
    queries, such as dynamic skyline queries [9] ..."

A *dynamic* skyline is the skyline in the transformed space
``x ↦ |x − q|`` for a user-supplied query point ``q``: a tuple is an
answer iff no other tuple is at least as close to ``q`` in every dimension
and strictly closer in one.  BBS supports it by transforming entries on the
fly [9], and so does our framework: the image of an MBR under the
transform is again a box (per dimension, ``|x − q_d|`` over an interval is
an interval), so the transformed low corner plays exactly the role the
static corner plays in :class:`~repro.query.algorithm1.SkylineStrategy` —
both the heap key and the domination probe.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.pcube import PCube
from repro.cube.relation import Relation
from repro.kernels import backend as kernel_backend
from repro.kernels.dominate import DominationBuffer, dominated_mask
from repro.kernels.mindist import (
    sum_block,
    transform_points_block,
    transform_rect_lowers_block,
)
from repro.query.algorithm1 import HeapEntry, SearchState, run_algorithm1
from repro.query.predicates import BooleanPredicate
from repro.query.stats import QueryStats
from repro.rtree.geometry import Rect
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


def transform_point(
    point: Sequence[float], query_point: Sequence[float]
) -> tuple[float, ...]:
    """The dynamic-skyline coordinate transform ``x ↦ |x − q|``."""
    return tuple(abs(x - q) for x, q in zip(point, query_point))


def transform_rect_lower(
    rect: Rect, query_point: Sequence[float]
) -> tuple[float, ...]:
    """Low corner of a rectangle's image under the transform.

    Per dimension the image of ``[lo, hi]`` is
    ``[dist(q, [lo, hi]), max(|lo − q|, |hi − q|)]``; only the low corner
    matters for pruning.
    """
    corner = []
    for lo, hi, q in zip(rect.lows, rect.highs, query_point):
        if q < lo:
            corner.append(lo - q)
        elif q > hi:
            corner.append(q - hi)
        else:
            corner.append(0.0)
    return tuple(corner)


class DynamicSkylineStrategy:
    """Skyline domination in the ``|x − q|`` space.

    Entries keep their *original* points; the strategy transforms on the
    fly, so the R-tree, signatures and paths are untouched — the point of
    the Section VII remark.
    """

    def __init__(self, query_point: Sequence[float]) -> None:
        self.query_point = tuple(float(q) for q in query_point)
        if not self.query_point:
            raise ValueError("query point must have at least one dimension")
        self._buffer = DominationBuffer(len(self.query_point))

    @property
    def result_points(self) -> list[tuple[float, ...]]:
        """Discovered skyline points (transformed), report order."""
        return self._buffer.points()

    def node_key(self, rect: Rect) -> float:
        return sum(transform_rect_lower(rect, self.query_point))

    def point_key(self, point: Sequence[float]) -> float:
        return sum(transform_point(point, self.query_point))

    def block_point_keys(
        self, points: Sequence[Sequence[float]]
    ) -> list[float]:
        return sum_block(transform_points_block(points, self.query_point))

    def block_node_keys(self, rects: Sequence[Rect]) -> list[float]:
        return sum_block(
            transform_rect_lowers_block(
                [r.lows for r in rects],
                [r.highs for r in rects],
                self.query_point,
            )
        )

    def node_tie(self, rect: Rect) -> tuple[float, ...]:
        return transform_rect_lower(rect, self.query_point)

    def point_tie(self, point: Sequence[float]) -> tuple[float, ...]:
        return transform_point(point, self.query_point)

    def _probe(self, entry: HeapEntry) -> tuple[float, ...]:
        assert entry.point is not None
        if entry.is_tuple:
            return transform_point(entry.point, self.query_point)
        # A node entry carries the MBR its parent stored for it — the
        # interval information the transform needs, with no extra read.
        assert entry.rect is not None
        return transform_rect_lower(entry.rect, self.query_point)

    def prune(self, entry: HeapEntry) -> bool:
        return self._buffer.dominates_point(self._probe(entry))

    def prune_block(self, entries: Sequence[HeapEntry]) -> list[bool]:
        return self._buffer.dominates_block(
            [self._probe(e) for e in entries]
        )

    def add_result(self, entry: HeapEntry) -> bool:
        assert entry.point is not None
        self._buffer.add(transform_point(entry.point, self.query_point))
        return True

    def finished(self, next_key: float) -> bool:
        return False


def dynamic_skyline_signature(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    query_point: Sequence[float],
    predicate: BooleanPredicate | None = None,
    pool: BufferPool | None = None,
    ticker=None,
) -> tuple[list[int], QueryStats, SearchState]:
    """Dynamic skyline with boolean predicates via signatures.

    Returns the tuples not dynamically dominated (w.r.t. ``query_point``)
    within the predicate's subset, with the usual stats.
    """
    if len(query_point) != rtree.dims:
        raise ValueError(
            f"query point has {len(query_point)} dims, tree has {rtree.dims}"
        )
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    reader = None
    if predicate is not None and not predicate.is_empty():
        reader = pcube.reader_for_predicate(
            predicate.conjuncts, pool, stats.counters
        )
    strategy = DynamicSkylineStrategy(query_point)
    state = run_algorithm1(
        rtree,
        strategy,
        stats,
        reader=reader,
        pool=pool,
        block_category=SBLOCK,
        ticker=ticker,
    )
    stats.elapsed_seconds = time.perf_counter() - started
    if reader is not None:
        stats.sig_load_seconds = reader.load_seconds
    tids = [entry.tid for entry in state.results if entry.tid is not None]
    return tids, stats, state


def naive_dynamic_skyline(
    points: Sequence[tuple[int, Sequence[float]]],
    query_point: Sequence[float],
) -> list[int]:
    """Ground-truth dynamic skyline (for tests)."""
    raw = [tuple(point) for _, point in points]
    transformed = list(
        zip(
            (tid for tid, _ in points),
            transform_points_block(raw, query_point),
        )
    )
    dominated = dominated_mask(transformed)
    return [
        tid for (tid, _), is_dominated in zip(transformed, dominated)
        if not is_dominated
    ]
