"""Convex hull queries (paper Section VII extension).

    "Algorithm 1 can also be easily extended to support other preference
    queries, such as ... convex hull queries [21]."

The preference-relevant part of a convex hull is its *lower-left chain*:
the points that minimise **some** linear function with non-negative
weights — exactly the candidates a top-1 query with an arbitrary linear
preference could return.  Böhm & Kriegel [21] compute hulls over large
databases by branch-and-bound direction searches; we realise the same idea
directly on Algorithm 1 (2-D): every extreme-point probe is a top-1 run
with a :class:`~repro.query.ranking.LinearFunction`, so it inherits both
prunings — including signature-based boolean pruning, which [21] lacked.

The recursion is quickhull-style: find the two axis extremes, then for
each tentative edge search for a point strictly below it (minimising the
edge's inward normal); split until no point lies below any edge.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.pcube import PCube
from repro.cube.relation import Relation
from repro.kernels import backend as kernel_backend
from repro.query.algorithm1 import TopKStrategy, run_algorithm1
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import LinearFunction
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK

#: Tolerance for "strictly below the edge" tests.
_EPSILON = 1e-12


def lower_hull_signature(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    predicate: BooleanPredicate | None = None,
    pool: BufferPool | None = None,
    ticker=None,
) -> tuple[list[int], QueryStats]:
    """The lower-left convex hull of the predicate's subset (2-D only).

    Returns hull-vertex tids ordered by increasing x (ties broken towards
    smaller y), plus stats aggregated over every extreme-point search.
    Collinear interior points are not reported.
    """
    if rtree.dims != 2:
        raise ValueError("lower_hull_signature supports 2-D preference spaces")
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    started = time.perf_counter()
    reader = None
    if predicate is not None and not predicate.is_empty():
        reader = pcube.reader_for_predicate(
            predicate.conjuncts, pool, stats.counters
        )

    def extreme(weights: Sequence[float]) -> tuple[int, tuple[float, float]] | None:
        """argmin of a linear function over the subset (one top-1 search)."""
        strategy = TopKStrategy(LinearFunction(weights), k=1)
        state = run_algorithm1(
            rtree,
            strategy,
            stats,
            reader=reader,
            pool=pool,
            block_category=SBLOCK,
            keep_lists=False,
            ticker=ticker,
        )
        if not state.results:
            return None
        entry = state.results[0]
        assert entry.tid is not None and entry.point is not None
        return entry.tid, (entry.point[0], entry.point[1])

    # Axis extremes with a slight pull towards the other axis so that ties
    # resolve to the hull's corner points.
    left = extreme((1.0, 1e-9))
    bottom = extreme((1e-9, 1.0))
    if left is None or bottom is None:
        stats.elapsed_seconds = time.perf_counter() - started
        return [], stats

    hull: list[tuple[int, tuple[float, float]]] = []

    def expand(
        a: tuple[int, tuple[float, float]],
        b: tuple[int, tuple[float, float]],
    ) -> None:
        """Emit the hull chain between established vertices a and b."""
        (_, (ax, ay)), (_, (bx, by)) = a, b
        # Inward normal of the edge a→b for a lower-left chain: both
        # components non-negative because ax ≤ bx and ay ≥ by.
        normal = (ay - by, bx - ax)
        if normal[0] <= 0 and normal[1] <= 0:
            return  # degenerate edge (coincident points)
        candidate = extreme(normal)
        if candidate is None:
            return
        cid, (cx, cy) = candidate
        edge_value = normal[0] * ax + normal[1] * ay
        candidate_value = normal[0] * cx + normal[1] * cy
        if candidate_value >= edge_value - _EPSILON or cid in (a[0], b[0]):
            return  # nothing strictly below: a→b is a hull edge
        expand(a, candidate)
        hull.append(candidate)
        expand(candidate, b)

    hull.append(left)
    # Distinct extreme coordinates imply left.x < bottom.x and
    # left.y > bottom.y (each extreme's tie-break would otherwise have
    # picked the other point), so the edge normal below is positive.
    if left[1] != bottom[1]:
        expand(left, bottom)
        hull.append(bottom)

    stats.elapsed_seconds = time.perf_counter() - started
    stats.results = len(hull)
    if reader is not None:
        stats.sig_load_seconds = reader.load_seconds
    return [tid for tid, _ in hull], stats


def naive_lower_hull(
    points: Sequence[tuple[int, Sequence[float]]]
) -> list[int]:
    """Ground-truth 2-D lower-left hull (for tests).

    Andrew's monotone chain restricted to the chain from the minimal-x
    point to the minimal-y point, with collinear points dropped and ties
    broken exactly like the search (smaller y at equal x, smaller x at
    equal y).
    """
    if not points:
        return []
    best_by_coord: dict[tuple[float, float], int] = {}
    for tid, point in sorted(points, key=lambda item: item[0]):
        best_by_coord.setdefault((point[0], point[1]), tid)
    coords = sorted(best_by_coord)
    # Walk the lower hull left to right.
    chain: list[tuple[float, float]] = []
    for point in coords:
        while len(chain) >= 2:
            (ox, oy), (px, py) = chain[-2], chain[-1]
            cross = (px - ox) * (point[1] - oy) - (py - oy) * (point[0] - ox)
            # Tolerant collinearity test, mirroring the search's epsilon:
            # float residues on exactly collinear inputs must still pop.
            if cross <= _EPSILON:
                chain.pop()
            else:
                break
        chain.append(point)
    # Restrict to the decreasing-y prefix (the lower-LEFT chain: once y
    # starts rising we are past the minimal-y corner).
    min_y = min(y for _, y in coords)
    result: list[tuple[float, float]] = []
    for point in chain:
        result.append(point)
        if point[1] == min_y:
            break
    return [best_by_coord[point] for point in result]
