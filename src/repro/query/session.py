"""Query sessions: one query surface, bindable to live or snapshot state.

A :class:`QuerySession` owns no mutable state of its own — it binds a
(relation, R-tree, P-Cube) triple, a buffer-pool policy and optional
serving hooks (epoch tag, cancellation ticker), and every query method
produces a fresh :class:`~repro.query.engine.QueryResult`.  The same class
therefore serves two deployments:

* **live / cold-pool** — bound to the live structures with no shared pool;
  each query runs on a private :class:`~repro.storage.buffer.BufferPool`,
  so disk-access counts stay a pure function of the query (the
  paper-comparable mode :class:`~repro.query.engine.PreferenceEngine`
  exposes).
* **snapshot / shared-pool** — built via :meth:`QuerySession.for_snapshot`
  from a pinned :class:`~repro.core.epoch.Snapshot`, usually with a shared
  pool.  Shared pools are accessed through a per-query
  :class:`~repro.storage.buffer.PoolView`, so ``QueryStats`` records this
  query's hit/miss delta; the result's stats carry the snapshot epoch, and
  the ticker (the serving executor's deadline/cancel probe) is invoked on
  every Algorithm 1 heap pop.

Because snapshots are immutable and pools are thread-safe, any number of
sessions — and any number of queries on one session — may run concurrently
from different threads.
"""

from __future__ import annotations

import heapq
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.kernels import backend as kernel_backend
from repro.obs.trace import Tracer
from repro.query.algorithm1 import (
    SearchState,
    SkylineStrategy,
    TopKStrategy,
    run_algorithm1,
)
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.stats import QueryStats
from repro.rtree.geometry import dominates
from repro.storage.buffer import BufferPool, PoolView
from repro.storage.counters import BTABLE, SBLOCK
from repro.storage.errors import StorageFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.epoch import Snapshot
    from repro.serve.resilience import BreakerBoard, DegradationPolicy


@dataclass
class QueryResult:
    """A completed query plus the state follow-up queries resume from.

    ``resumable`` marks whether ``state`` really carries Lemma 2 search
    state: results produced by Algorithm 1 are resumable; answers served
    by a routed baseline engine or replayed from the result cache are not
    (their ``state`` is empty, and drilling down from them would silently
    return nothing).
    """

    kind: str  # "skyline" | "topk" | "dynamic_skyline" | "lower_hull"
    predicate: BooleanPredicate
    tids: list[int]
    scores: list[float] | None
    stats: QueryStats
    state: SearchState
    fn: RankingFunction | None = None
    k: int | None = None
    preference_by: tuple[str, ...] | None = None
    resumable: bool = True

    def __len__(self) -> int:
        return len(self.tids)


class QuerySession:
    """A stateless query surface over one version of the system.

    Args:
        relation, rtree, pcube: The structures to query — either the live
            objects or a snapshot's frozen projections (both satisfy the
            same read protocol).
        pool: A shared :class:`BufferPool` to run against; each query
            observes it through a private :class:`PoolView`.  ``None``
            (the default) gives every query a fresh cold pool of
            ``pool_capacity`` pages instead.
        pool_capacity: Cold-pool size when ``pool`` is ``None``.
        eager_assembly: Exact recursive intersection for multi-predicate
            signatures instead of the lazy AND.
        epoch: Stamped onto every result's ``stats.epoch`` and the query
            span (serving observability); ``None`` for live sessions.
        ticker: Invoked once per Algorithm 1 heap pop; raises to abort the
            query (deadline/cancellation in the serving executor).
        deadline_at: ``time.perf_counter()`` instant this session's queries
            must finish by.  Storage retries spend from what remains of it
            (a backoff that would outspend the budget is skipped and the
            fault surfaces immediately); the ticker still enforces the
            deadline itself.
        breakers: A :class:`~repro.serve.resilience.BreakerBoard` shared
            across the serving deployment; partial loads consult it and an
            open breaker short-circuits straight to the degraded path.
        degradation: Enables the tier-3 boolean-first fallback: a
            :class:`~repro.serve.resilience.DegradationPolicy` whose
            ``allow_boolean_first`` is true makes skyline/top-k queries
            answer via a signature-free relation scan when even the search
            structures fault, instead of propagating the storage error.
            ``None`` (the default, and the paper-comparable mode) keeps
            tiers 1–2 only.
    """

    def __init__(
        self,
        relation,
        rtree,
        pcube,
        pool: BufferPool | None = None,
        pool_capacity: int = 4096,
        eager_assembly: bool = False,
        epoch: int | None = None,
        ticker: Callable[[], None] | None = None,
        deadline_at: float | None = None,
        breakers: "BreakerBoard | None" = None,
        degradation: "DegradationPolicy | None" = None,
    ) -> None:
        self.relation = relation
        self.rtree = rtree
        self.pcube = pcube
        self.pool = pool
        self.pool_capacity = pool_capacity
        self.eager_assembly = eager_assembly
        self.epoch = epoch
        self.ticker = ticker
        self.deadline_at = deadline_at
        self.breakers = breakers
        self.degradation = degradation
        # Router-owned assembled-signature memo (a ResultCache); attached
        # per query by QueryRouter.route, never set for unrouted sessions.
        self.signature_memo = None

    @classmethod
    def for_snapshot(
        cls,
        snapshot: "Snapshot",
        pool: BufferPool | None = None,
        pool_capacity: int = 4096,
        eager_assembly: bool = False,
        ticker: Callable[[], None] | None = None,
        deadline_at: float | None = None,
        breakers: "BreakerBoard | None" = None,
        degradation: "DegradationPolicy | None" = None,
    ) -> "QuerySession":
        """Bind a session to a pinned snapshot's frozen structures.

        The caller keeps the snapshot pinned for the session's lifetime
        (the session itself never talks to the epoch manager).
        """
        return cls(
            snapshot.relation,
            snapshot.rtree,
            snapshot.pcube,
            pool=pool,
            pool_capacity=pool_capacity,
            eager_assembly=eager_assembly,
            epoch=snapshot.epoch,
            deadline_at=deadline_at,
            breakers=breakers,
            degradation=degradation,
        ).with_ticker(ticker)

    def with_ticker(self, ticker: Callable[[], None] | None) -> "QuerySession":
        """Set the cancellation probe (chainable; used by the executor)."""
        self.ticker = ticker
        return self

    # ------------------------------------------------------------------ #
    # pool policy
    # ------------------------------------------------------------------ #

    def _query_pool(self) -> BufferPool | PoolView:
        """Cold private pool, or a per-query view of the shared one."""
        if self.pool is None:
            return BufferPool(self.rtree.disk, capacity=self.pool_capacity)
        return PoolView(self.pool)

    def _finish_pool(self, pool: BufferPool | PoolView, stats: QueryStats) -> None:
        """Record this query's buffer delta and drop any leftover pins."""
        stats.pool_hits = pool.hits
        stats.pool_misses = pool.misses
        if isinstance(pool, PoolView):
            pool.release()

    # ------------------------------------------------------------------ #
    # standard queries
    # ------------------------------------------------------------------ #

    def _budget(self):
        """The retry budget for one query starting now (or ``None``)."""
        if self.deadline_at is None:
            return None
        from repro.serve.resilience import RetryBudget

        return RetryBudget(self.deadline_at)

    def _reader(
        self, predicate: BooleanPredicate, pool, stats, tracer=None, budget=None
    ):
        if predicate.is_empty():
            return None
        memo = self.signature_memo
        memo_key: tuple[str, ...] | None = None
        if memo is not None and self.eager_assembly and self.epoch is not None:
            memo_key = tuple(
                f"{dim}={value!r}" for dim, value in predicate
            )
            cached = memo.get_signature(memo_key, self.epoch)
            if cached is not None:
                return cached
        reader = self.pcube.reader_for_predicate(
            predicate.conjuncts,
            pool,
            stats.counters,
            eager=self.eager_assembly,
            tracer=tracer,
            budget=budget,
            breakers=self.breakers,
            epoch=self.epoch,
        )
        if memo_key is not None and self._memoizable(reader):
            memo.put_signature(memo_key, self.epoch, reader)
        return reader

    @staticmethod
    def _memoizable(reader) -> bool:
        """Only clean, stateless assembled readers may be shared across
        queries: :class:`~repro.core.pcube.SignatureAdapter` (an immutable
        assembled signature) and :class:`~repro.core.pcube.EmptyReader`.
        Lazy readers count per-query I/O and degraded readers carry fault
        state, so neither is safe to reuse."""
        from repro.core.pcube import EmptyReader, SignatureAdapter

        if not isinstance(reader, (SignatureAdapter, EmptyReader)):
            return False
        return not getattr(reader, "degraded", False) and not getattr(
            reader, "failed_loads", 0
        )

    def skyline(
        self,
        predicate: BooleanPredicate | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """A standard skyline query (Algorithm 1 from the root).

        ``preference_by`` restricts the skyline to a subset of preference
        dimensions by name (Section III's ``preference by N'1, ..., N'j``).
        Pass a :class:`~repro.obs.trace.Tracer` to capture the span tree
        and prune/load events of the execution.
        """
        predicate = predicate or BooleanPredicate()
        return self._run(
            "skyline",
            predicate,
            state=None,
            preference_by=preference_by,
            tracer=tracer,
        )

    def topk(
        self,
        fn: RankingFunction,
        k: int,
        predicate: BooleanPredicate | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """A standard top-k query."""
        predicate = predicate or BooleanPredicate()
        return self._run(
            "topk", predicate, state=None, fn=fn, k=k, tracer=tracer
        )

    def dynamic_skyline(
        self,
        query_point,
        predicate: BooleanPredicate | None = None,
    ) -> QueryResult:
        """A dynamic skyline query (Section VII extension): the skyline in
        the ``|x − query_point|`` space."""
        from repro.query.dynamic import dynamic_skyline_signature

        predicate = predicate or BooleanPredicate()
        pool = self._query_pool()
        tids, stats, state = dynamic_skyline_signature(
            self.relation,
            self.rtree,
            self.pcube,
            query_point,
            predicate,
            pool=pool,
            ticker=self.ticker,
        )
        stats.epoch = self.epoch
        self._stamp_tier(stats)
        self._finish_pool(pool, stats)
        return QueryResult(
            kind="dynamic_skyline",
            predicate=predicate,
            tids=tids,
            scores=None,
            stats=stats,
            state=state,
        )

    def lower_hull(
        self, predicate: BooleanPredicate | None = None
    ) -> QueryResult:
        """A 2-D lower-left convex hull query (Section VII extension)."""
        from repro.query.hull import lower_hull_signature

        predicate = predicate or BooleanPredicate()
        pool = self._query_pool()
        tids, stats = lower_hull_signature(
            self.relation,
            self.rtree,
            self.pcube,
            predicate,
            pool=pool,
            ticker=self.ticker,
        )
        stats.epoch = self.epoch
        self._stamp_tier(stats)
        self._finish_pool(pool, stats)
        return QueryResult(
            kind="lower_hull",
            predicate=predicate,
            tids=tids,
            scores=None,
            stats=stats,
            state=SearchState(),
        )

    # ------------------------------------------------------------------ #
    # incremental queries (Lemma 2)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_incremental(previous: QueryResult) -> None:
        if previous.kind not in ("skyline", "topk"):
            raise ValueError(
                f"drill-down/roll-up resume {previous.kind!r} queries is not "
                "supported; only skyline and topk keep Lemma 2 state"
            )
        if previous.stats.tier == "boolean-first":
            raise ValueError(
                "cannot drill-down/roll-up from a boolean-first degraded "
                "result: the scan fallback keeps no Lemma 2 search state; "
                "re-run the query from scratch"
            )
        if not previous.resumable:
            raise ValueError(
                "cannot drill-down/roll-up from a routed or cached result: "
                "it carries no Lemma 2 search state; re-run the query "
                "through the session (or router) from scratch"
            )

    def drill_down(
        self,
        previous: QueryResult,
        dim: str,
        value: Any,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """Strengthen the previous query's predicate by one conjunct."""
        self._check_incremental(previous)
        predicate = previous.predicate.drill_down(dim, value)
        carried = (
            previous.state.results
            + previous.state.d_list
            + previous.state.heap
        )
        dominated = {id(entry) for entry in previous.state.d_list}
        return self._run(
            previous.kind,
            predicate,
            state=("drill", carried, list(previous.state.b_list), dominated),
            fn=previous.fn,
            k=previous.k,
            preference_by=previous.preference_by,
            tracer=tracer,
        )

    def roll_up(
        self, previous: QueryResult, dim: str, tracer: Tracer | None = None
    ) -> QueryResult:
        """Relax the previous query's predicate by removing one conjunct."""
        self._check_incremental(previous)
        predicate = previous.predicate.roll_up(dim)
        carried = (
            previous.state.results
            + previous.state.b_list
            + previous.state.heap
        )
        return self._run(
            previous.kind,
            predicate,
            state=("roll", carried, list(previous.state.d_list), frozenset()),
            fn=previous.fn,
            k=previous.k,
            preference_by=previous.preference_by,
            tracer=tracer,
        )

    # ------------------------------------------------------------------ #
    # shared runner
    # ------------------------------------------------------------------ #

    def _stamp_tier(self, stats: QueryStats) -> None:
        """Record which degradation tier answered (tiers 1–2; the scan
        fallback stamps tier 3 itself)."""
        stats.tier = "conservative" if stats.degraded else "signature"

    def _run(
        self,
        kind: str,
        predicate: BooleanPredicate,
        state,
        fn: RankingFunction | None = None,
        k: int | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        try:
            return self._run_signature(
                kind,
                predicate,
                state,
                fn=fn,
                k=k,
                preference_by=preference_by,
                tracer=tracer,
            )
        except StorageFault as fault:
            if (
                self.degradation is None
                or not self.degradation.allow_boolean_first
                or kind not in ("skyline", "topk")
            ):
                raise
            # Tier 3: even the search structures fault — answer exactly
            # from a signature-free relation scan, chaining the storage
            # error so callers can see what forced the fallback.
            try:
                return self._run_boolean_first(
                    kind,
                    predicate,
                    fn=fn,
                    k=k,
                    preference_by=preference_by,
                    tracer=tracer,
                    cause=fault,
                )
            except StorageFault as exc:
                raise exc from fault

    def _run_signature(
        self,
        kind: str,
        predicate: BooleanPredicate,
        state,
        fn: RankingFunction | None = None,
        k: int | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        stats = QueryStats()
        stats.epoch = self.epoch
        stats.kernel_backend = kernel_backend()
        budget = self._budget()
        pool = self._query_pool()
        reader = None
        if tracer is not None and tracer.counters is None:
            tracer.counters = stats.counters
        span_attrs = {
            "predicate": repr(predicate),
            "incremental": state is not None,
        }
        if self.epoch is not None:
            span_attrs["epoch"] = self.epoch
        query_span = (
            tracer.span(f"query:{kind}", **span_attrs)
            if tracer is not None
            else nullcontext()
        )
        try:
            with query_span:
                started = time.perf_counter()
                with (
                    tracer.span("reader:setup")
                    if tracer is not None
                    else nullcontext()
                ):
                    reader = self._reader(
                        predicate, pool, stats, tracer, budget=budget
                    )
                if kind == "skyline":
                    subspace = None
                    if preference_by is not None:
                        subspace = tuple(
                            self.relation.schema.preference_position(name)
                            for name in preference_by
                        )
                    strategy: SkylineStrategy | TopKStrategy = SkylineStrategy(
                        self.rtree.dims, subspace=subspace
                    )
                else:
                    assert fn is not None and k is not None
                    strategy = TopKStrategy(fn, k)

                resume_state: SearchState | None = None
                if state is not None:
                    mode, carried, kept_list, dominated = state
                    resume_state = SearchState()
                    if mode == "drill":
                        # still fail the stronger BP
                        resume_state.b_list = kept_list
                    else:
                        resume_state.d_list = kept_list  # still dominated
                    resume_state.seq = max(
                        (entry.seq for entry in carried), default=0
                    )
                    with (
                        tracer.span("resume:prefilter", mode=mode)
                        if tracer is not None
                        else nullcontext()
                    ):
                        for entry in carried:
                            # Pre-filter with the new predicate's signature,
                            # as the paper suggests, to keep the rebuilt heap
                            # small.
                            if reader is not None and not reader.check_path(
                                entry.path
                            ):
                                resume_state.b_list.append(entry)
                                stats.boolean_pruned += 1
                                if tracer is not None:
                                    # A carried entry the old query already
                                    # preference-pruned that the new
                                    # signature rejects too fails both arms.
                                    arm = (
                                        "both"
                                        if id(entry) in dominated
                                        else "bool"
                                    )
                                    tracer.prune(
                                        arm, path=entry.path, key=entry.key
                                    )
                            else:
                                resume_state.heap.append(entry)

                final_state = run_algorithm1(
                    self.rtree,
                    strategy,
                    stats,
                    reader=reader,
                    pool=pool,
                    block_category=SBLOCK,
                    state=resume_state,
                    tracer=tracer,
                    ticker=self.ticker,
                )
                stats.elapsed_seconds = time.perf_counter() - started
        finally:
            self._finish_pool(pool, stats)
            if reader is not None:
                stats.sig_load_seconds = reader.load_seconds
                stats.fault_retries = getattr(reader, "retries", 0)
                stats.failed_loads = getattr(reader, "failed_loads", 0)
                stats.degraded_checks = getattr(reader, "degraded_checks", 0)
                stats.breaker_skips = getattr(reader, "breaker_skips", 0)
                stats.degraded = bool(getattr(reader, "degraded", False))
        self._stamp_tier(stats)

        tids = [e.tid for e in final_state.results if e.tid is not None]
        scores = (
            [e.key for e in final_state.results if e.tid is not None]
            if kind == "topk"
            else None
        )
        return QueryResult(
            kind=kind,
            predicate=predicate,
            tids=tids,
            scores=scores,
            stats=stats,
            state=final_state,
            fn=fn,
            k=k,
            preference_by=preference_by,
        )

    # ------------------------------------------------------------------ #
    # tier 3: signature-free boolean-first fallback
    # ------------------------------------------------------------------ #

    def _run_boolean_first(
        self,
        kind: str,
        predicate: BooleanPredicate,
        fn: RankingFunction | None = None,
        k: int | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
        cause: Exception | None = None,
    ) -> QueryResult:
        """Answer a skyline/top-k exactly without touching any signature
        or R-tree page: scan the (snapshot's) relation, filter by the
        predicate, run the preference step in memory.

        Results are reported in Algorithm 1's best-first order — skyline
        candidates sorted by ``(Σ projected coords, projected point, tid)``
        with BBS-style domination against already-reported points, top-k by
        ascending ``(score, tid)`` — so a degraded answer is byte-identical
        to the serial engine's.  The scan is counted (``BTABLE``) and the
        ticker still fires per tuple, so deadlines and cancellation apply.
        """
        stats = QueryStats()
        stats.epoch = self.epoch
        stats.tier = "boolean-first"
        stats.degraded = True
        span_attrs: dict[str, Any] = {
            "predicate": repr(predicate),
            "tier": "boolean-first",
        }
        if cause is not None:
            span_attrs["cause"] = type(cause).__name__
        if self.epoch is not None:
            span_attrs["epoch"] = self.epoch
        fallback_span = (
            tracer.span(f"query:{kind}:boolean-first", **span_attrs)
            if tracer is not None
            else nullcontext()
        )
        with fallback_span:
            started = time.perf_counter()
            empty = predicate.is_empty()
            candidates: list[int] = []
            for tid in self.relation.scan(stats.counters, BTABLE):
                if self.ticker is not None:
                    self.ticker()
                if empty or predicate.matches(self.relation, tid):
                    candidates.append(tid)
            stats.note_heap(len(candidates))
            scores: list[float] | None = None
            if kind == "skyline":
                subspace: tuple[int, ...] | None = None
                if preference_by is not None:
                    subspace = tuple(
                        self.relation.schema.preference_position(name)
                        for name in preference_by
                    )

                def project(point) -> tuple[float, ...]:
                    if subspace is None:
                        return tuple(point)
                    return tuple(point[d] for d in subspace)

                projected = sorted(
                    ((tid, project(self.relation.pref_point(tid))) for tid in candidates),
                    key=lambda item: (sum(item[1]), item[1], item[0]),
                )
                result_points: list[tuple[float, ...]] = []
                tids: list[int] = []
                for tid, point in projected:
                    if any(dominates(s, point) for s in result_points):
                        stats.dominance_pruned += 1
                        continue
                    result_points.append(point)
                    tids.append(tid)
            else:
                assert fn is not None and k is not None
                scored = (
                    (fn.score(self.relation.pref_point(tid)), tid)
                    for tid in candidates
                )
                best = heapq.nsmallest(k, scored)
                tids = [tid for _, tid in best]
                scores = [score for score, _ in best]
            stats.results = len(tids)
            stats.elapsed_seconds = time.perf_counter() - started
        return QueryResult(
            kind=kind,
            predicate=predicate,
            tids=tids,
            scores=scores,
            stats=stats,
            state=SearchState(),
            fn=fn,
            k=k,
            preference_by=preference_by,
        )
