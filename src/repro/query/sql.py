"""A SQL-style front end for the paper's query notation (Section III).

The paper writes preference queries as::

    select top-k from R
    where A1 = a1 and ... and Ai = ai
    order by f(N1, N2, ..., Nj)

    select skylines from R
    where A1 = a1 and ... and Ai = ai
    preference by N1, N2, ..., Nj

This module parses exactly that surface (case-insensitive, whitespace
tolerant) and executes it on a :class:`~repro.query.engine.PreferenceEngine`.
``ORDER BY`` accepts any sum of per-dimension terms — ``price``,
``0.5 * mileage``, ``(price - 15000)^2``, ``0.3*(mileage - 30000)^2`` —
covering the paper's Example 1 and Figure 13 function families; the mix is
compiled to a :class:`~repro.query.ranking.SeparableFunction` with exact
MBR lower bounds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.query.engine import PreferenceEngine, QueryResult
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import SeparableFunction


class SQLSyntaxError(ValueError):
    """Raised when a query string does not match the supported grammar."""


@dataclass
class ParsedQuery:
    """The structured form of one query string."""

    kind: str  # "topk" | "skyline"
    k: int | None = None
    where: dict[str, Any] = field(default_factory=dict)
    order_terms: list[tuple[str, str, float, float]] = field(
        default_factory=list
    )  # (dim_name, kind, coeff, target)
    preference_by: tuple[str, ...] | None = None


# --------------------------------------------------------------------------- #
# tokenizer helpers
# --------------------------------------------------------------------------- #

_NUMBER = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"
_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"
_VALUE = rf"(?:'[^']*'|\"[^\"]*\"|{_NUMBER}|{_IDENT})"

_HEAD = re.compile(
    r"^\s*select\s+(?:(top)[\s-]*(\d+)|(skylines?))\s+from\s+(\w+)\s*(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_WHERE = re.compile(
    r"^where\s+(.*?)(?=(?:\s+order\s+by\s)|(?:\s+preference\s+by\s)|$)",
    re.IGNORECASE | re.DOTALL,
)
_ORDER = re.compile(r"\border\s+by\s+(.*)$", re.IGNORECASE | re.DOTALL)
_PREFERENCE = re.compile(
    r"\bpreference\s+by\b\s*(.*)$", re.IGNORECASE | re.DOTALL
)
_CONJUNCT = re.compile(
    rf"^\s*({_IDENT})\s*=\s*({_VALUE})\s*$", re.DOTALL
)
_SQUARED_TERM = re.compile(
    rf"^\s*(?:({_NUMBER})\s*\*\s*)?\(\s*({_IDENT})\s*-\s*({_NUMBER})\s*\)\s*"
    rf"(?:\^\s*2|\*\*\s*2)\s*$",
    re.DOTALL,
)
_LINEAR_TERM = re.compile(
    rf"^\s*(?:({_NUMBER})\s*\*\s*)?({_IDENT})\s*$", re.DOTALL
)


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    if raw[0] in "'\"" and raw[-1] == raw[0]:
        return raw[1:-1]
    try:
        as_float = float(raw)
    except ValueError:
        return raw  # a bare identifier: treat as a string value (a1, b2...)
    if as_float.is_integer() and "." not in raw and "e" not in raw.lower():
        return int(raw)
    return as_float


def _split_top_level_plus(expression: str) -> list[str]:
    """Split on '+' outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in expression:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise SQLSyntaxError("unbalanced parentheses in ORDER BY")
        if char == "+" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SQLSyntaxError("unbalanced parentheses in ORDER BY")
    parts.append("".join(current))
    return parts


def parse_query(text: str) -> ParsedQuery:
    """Parse one query string into its structured form.

    Raises:
        SQLSyntaxError: with a description of what failed to parse.
    """
    head = _HEAD.match(text)
    if head is None:
        raise SQLSyntaxError(
            "query must start with 'SELECT TOP k FROM R' or "
            "'SELECT SKYLINES FROM R'"
        )
    top, k_raw, _skyline, _table, tail = head.groups()
    parsed = ParsedQuery(kind="topk" if top else "skyline")
    if top:
        parsed.k = int(k_raw)
        if parsed.k < 1:
            raise SQLSyntaxError("TOP k needs k >= 1")
    tail = tail.strip()

    where = _WHERE.match(tail)
    if where is not None:
        for conjunct in re.split(r"\s+and\s+", where.group(1), flags=re.IGNORECASE):
            match = _CONJUNCT.match(conjunct)
            if match is None:
                raise SQLSyntaxError(
                    f"cannot parse WHERE conjunct {conjunct.strip()!r} "
                    "(expected 'dim = value')"
                )
            dim, value = match.group(1), _parse_value(match.group(2))
            if dim in parsed.where:
                raise SQLSyntaxError(f"dimension {dim!r} constrained twice")
            parsed.where[dim] = value

    order = _ORDER.search(tail)
    preference = _PREFERENCE.search(tail)
    if parsed.kind == "topk":
        if order is None:
            raise SQLSyntaxError("TOP-k queries need an ORDER BY clause")
        if preference is not None:
            raise SQLSyntaxError("TOP-k queries take ORDER BY, not PREFERENCE BY")
        for raw_term in _split_top_level_plus(order.group(1).strip()):
            squared = _SQUARED_TERM.match(raw_term)
            if squared is not None:
                coeff, dim, target = squared.groups()
                parsed.order_terms.append(
                    (dim, "squared", float(coeff or 1.0), float(target))
                )
                continue
            linear = _LINEAR_TERM.match(raw_term)
            if linear is not None:
                coeff, dim = linear.groups()
                parsed.order_terms.append(
                    (dim, "linear", float(coeff or 1.0), 0.0)
                )
                continue
            raise SQLSyntaxError(
                f"cannot parse ORDER BY term {raw_term.strip()!r} (expected "
                "'[c *] dim' or '[c *] (dim - t)^2')"
            )
    else:
        if order is not None:
            raise SQLSyntaxError(
                "skyline queries take PREFERENCE BY, not ORDER BY"
            )
        if preference is not None:
            names = [
                name.strip()
                for name in preference.group(1).split(",")
                if name.strip()
            ]
            if not names:
                raise SQLSyntaxError("PREFERENCE BY needs dimension names")
            if len(set(names)) != len(names):
                raise SQLSyntaxError("PREFERENCE BY repeats a dimension")
            parsed.preference_by = tuple(names)
    return parsed


def execute(engine: PreferenceEngine, text: str) -> QueryResult:
    """Parse and run a query against a built system."""
    parsed = parse_query(text)
    schema = engine.relation.schema

    for dim in parsed.where:
        schema.boolean_position(dim)  # raises KeyError on unknown dims
    predicate = BooleanPredicate(parsed.where)

    if parsed.kind == "skyline":
        return engine.skyline(predicate, preference_by=parsed.preference_by)

    terms = [
        (schema.preference_position(dim), kind, coeff, target)
        for dim, kind, coeff, target in parsed.order_terms
    ]
    fn = SeparableFunction(terms)
    assert parsed.k is not None
    return engine.topk(fn, parsed.k, predicate)
