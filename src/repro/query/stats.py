"""Per-query statistics: the quantities the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.counters import (
    BINDEX,
    BTABLE,
    DBLOCK,
    DBOOL,
    SBLOCK,
    SSIG,
    IOCounters,
)


@dataclass
class MaintenanceStats:
    """Maintenance-side tallies: WAL traffic and crash-recovery work.

    Attributes:
        wal_records: Intent / changes / cell records journalled.
        wal_commits: Operations whose WAL region was truncated (committed).
        recoveries: ``recover()`` calls that found an interrupted operation.
        replayed_cells: Cells re-stored by roll-forward replay.
        reindexes: Recoveries that fell back to the full deterministic
            rebuild (R-tree reset + every cell regenerated).
        rows_repaired: Buffered heap rows recovery had to re-page.
        wal_tail_truncated: Torn/corrupt tail record pages recovery
            truncated (the default torn-write repair).
        wal_segments_sealed: WAL segments rotated into the sealed archive.
        wal_segments_pruned: Sealed segments dropped once a checkpoint
            made their history redundant.
    """

    wal_records: int = 0
    wal_commits: int = 0
    recoveries: int = 0
    replayed_cells: int = 0
    reindexes: int = 0
    rows_repaired: int = 0
    wal_tail_truncated: int = 0
    wal_segments_sealed: int = 0
    wal_segments_pruned: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "wal_records": self.wal_records,
            "wal_commits": self.wal_commits,
            "recoveries": self.recoveries,
            "replayed_cells": self.replayed_cells,
            "reindexes": self.reindexes,
            "rows_repaired": self.rows_repaired,
            "wal_tail_truncated": self.wal_tail_truncated,
            "wal_segments_sealed": self.wal_segments_sealed,
            "wal_segments_pruned": self.wal_segments_pruned,
        }


@dataclass
class QueryStats:
    """Everything a single query execution is measured by.

    Attributes:
        counters: Tagged disk accesses (Figures 9 and 15).
        peak_heap: Maximum candidate-heap size observed (Figure 10); for
            the Boolean-first baseline this is its retrieved candidate-set
            size, the memory its in-memory preference step holds.
        nodes_expanded: R-tree nodes whose children were generated.
        results: Number of answers produced.
        boolean_pruned / dominance_pruned: Entries cut by each prune arm.
        verified / verify_failed: Minimal-probing boolean verifications
            (Domination baseline).
        sig_load_seconds: Time spent loading partial signatures (Fig. 15).
        elapsed_seconds: End-to-end execution time.
        fault_retries: Transient-fault retries the signature loads needed.
        failed_loads: Partial loads abandoned after retries (each one put a
            cell into conservative mode).
        degraded_checks: Bit tests answered conservatively or via the
            base-relation fallback because a partial was unreadable.
        breaker_skips: Partial loads short-circuited by an open circuit
            breaker (degraded with zero I/O on the bad pages).
        degraded: Whether this query ran with any signature degraded — the
            per-query "degraded query" flag robustness benchmarks count.
        tier: Which rung of the degradation chain produced the answer —
            ``"signature"`` (fault-free fast path), ``"conservative"``
            (degraded readers) or ``"boolean-first"`` (signature-free scan
            fallback); ``None`` until the query completes.
        epoch: The snapshot epoch the query ran against (``None`` for
            live-structure queries, i.e. everything paper-comparable).
        queue_wait_seconds: Time the query sat in the serving executor's
            admission queue before a worker picked it up.
        pool_hits / pool_misses: This query's buffer-pool delta — meaningful
            in shared-pool serving mode where ``counters`` alone would hide
            how much another query's footprint helped.
        route: The engine the adaptive router served this answer with
            (``None`` when the query ran unrouted).
        fallbacks: How many engines failed before ``route`` answered.
        cache_outcome: The router cache's verdict — ``"hit"``, ``"miss"``,
            ``"bypass"`` (breaker-forced) or ``None`` (cache not consulted).
        kernel_backend: Which batch-kernel backend (``"python"`` /
            ``"numpy"``) executed the query's hot loops, stamped by the
            query entry points.  A CPU implementation detail, so — like the
            serving-side fields — excluded from :meth:`summary`: counted
            I/O is backend-invariant by construction.

    The serving-side attributes (``epoch``, ``queue_wait_seconds``,
    ``pool_hits``, ``pool_misses``, the routing trio ``route`` /
    ``fallbacks`` / ``cache_outcome``, and ``kernel_backend``) are
    deliberately *not* part of :meth:`summary`, which feeds
    paper-comparable benchmark baselines.
    """

    counters: IOCounters = field(default_factory=IOCounters)
    peak_heap: int = 0
    nodes_expanded: int = 0
    results: int = 0
    boolean_pruned: int = 0
    dominance_pruned: int = 0
    verified: int = 0
    verify_failed: int = 0
    sig_load_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    fault_retries: int = 0
    failed_loads: int = 0
    degraded_checks: int = 0
    breaker_skips: int = 0
    degraded: bool = False
    tier: str | None = None
    epoch: int | None = None
    queue_wait_seconds: float = 0.0
    pool_hits: int = 0
    pool_misses: int = 0
    route: str | None = None
    fallbacks: int = 0
    cache_outcome: str | None = None
    kernel_backend: str | None = None

    def note_heap(self, size: int) -> None:
        if size > self.peak_heap:
            self.peak_heap = size

    # Convenience accessors for the figure series ----------------------- #

    @property
    def ssig(self) -> int:
        return self.counters.get(SSIG)

    @property
    def sblock(self) -> int:
        return self.counters.get(SBLOCK)

    @property
    def dblock(self) -> int:
        return self.counters.get(DBLOCK)

    @property
    def dbool(self) -> int:
        return self.counters.get(DBOOL)

    @property
    def bindex(self) -> int:
        return self.counters.get(BINDEX)

    @property
    def btable(self) -> int:
        return self.counters.get(BTABLE)

    def total_io(self) -> int:
        return self.counters.total()

    def modeled_seconds(self, seconds_per_io: float = 0.005) -> float:
        """Execution time under a disk-latency model.

        The simulator's structures are memory resident, so raw
        ``elapsed_seconds`` measures Python work, not the disk time that
        dominated the paper's 2008 testbed.  Charging each counted page
        access a fixed latency (default 5 ms, a 2008-era random read)
        recovers an I/O-bound execution time; benchmarks report both.
        """
        if seconds_per_io < 0:
            raise ValueError("seconds_per_io must be non-negative")
        return self.elapsed_seconds + seconds_per_io * self.total_io()

    def summary(self) -> dict[str, float]:
        summary = {
            "elapsed_seconds": self.elapsed_seconds,
            "total_io": self.total_io(),
            "peak_heap": self.peak_heap,
            "results": self.results,
            **{k: v for k, v in self.counters},
        }
        if self.degraded or self.fault_retries or self.degraded_checks:
            summary["degraded"] = int(self.degraded)
            summary["fault_retries"] = self.fault_retries
            summary["failed_loads"] = self.failed_loads
            summary["degraded_checks"] = self.degraded_checks
            summary["breaker_skips"] = self.breaker_skips
        return summary
