"""Skyline queries with boolean predicates — the Signature method."""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core.pcube import PCube
from repro.kernels import backend as kernel_backend
from repro.obs.trace import Tracer
from repro.cube.relation import Relation
from repro.query.algorithm1 import SearchState, SkylineStrategy, run_algorithm1
from repro.query.predicates import BooleanPredicate
from repro.query.stats import QueryStats
from repro.rtree.rtree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import SBLOCK


def skyline_signature(
    relation: Relation,
    rtree: RTree,
    pcube: PCube,
    predicate: BooleanPredicate | None = None,
    pool: BufferPool | None = None,
    eager_assembly: bool = False,
    keep_lists: bool = True,
    preference_by: tuple[str, ...] | None = None,
    tracer: Tracer | None = None,
) -> tuple[list[int], QueryStats, SearchState]:
    """The paper's skyline query processing (Algorithm 1 + signatures).

    Args:
        relation: Base table (only consulted for dimensionality here; the
            search runs entirely on the R-tree and signatures).
        rtree: Shared partition template.
        pcube: The signature cube.
        predicate: Boolean conjunction; ``None``/empty disables boolean
            pruning (plain BBS behaviour, still I/O optimal).
        pool: Buffer pool; a fresh (cold) one is created when omitted.
        eager_assembly: Assemble multi-predicate signatures with the exact
            recursive intersection up front instead of the lazy AND.
        keep_lists: Maintain the Lemma 2 lists for drill-down / roll-up.
        preference_by: Optional subset of preference-dimension *names* to
            compute the skyline over (Section III's ``preference by N'1,
            ..., N'j``); default is all preference dimensions.

    Returns:
        ``(tids, stats, state)`` — skyline tids in discovery (key) order.
    """
    stats = QueryStats()
    stats.kernel_backend = kernel_backend()
    if pool is None:
        pool = BufferPool(rtree.disk, capacity=4096)
    if tracer is not None and tracer.counters is None:
        tracer.counters = stats.counters
    query_span = (
        tracer.span("query:skyline") if tracer is not None else nullcontext()
    )
    with query_span:
        started = time.perf_counter()
        reader = None
        if predicate is not None and not predicate.is_empty():
            with (
                tracer.span("reader:setup")
                if tracer is not None
                else nullcontext()
            ):
                reader = pcube.reader_for_predicate(
                    predicate.conjuncts,
                    pool,
                    stats.counters,
                    eager=eager_assembly,
                    tracer=tracer,
                )
        subspace = None
        if preference_by is not None:
            subspace = tuple(
                relation.schema.preference_position(name)
                for name in preference_by
            )
        strategy = SkylineStrategy(dims=rtree.dims, subspace=subspace)
        state = run_algorithm1(
            rtree,
            strategy,
            stats,
            reader=reader,
            pool=pool,
            block_category=SBLOCK,
            keep_lists=keep_lists,
            tracer=tracer,
        )
        stats.elapsed_seconds = time.perf_counter() - started
    if reader is not None:
        stats.sig_load_seconds = reader.load_seconds
    tids = [entry.tid for entry in state.results if entry.tid is not None]
    return tids, stats, state
