"""The preference engine: standard queries plus Lemma 2 drill-down/roll-up.

Section V-C: drill-down and roll-up queries always follow a standard query,
so the engine can rebuild the candidate heap from the previous query's
``result``, ``d_list`` and ``b_list`` instead of searching from the root:

* drill-down (stronger predicate): ``c_heap = result ∪ d_list`` — entries
  that failed the *old* boolean predicate keep failing the stronger one, so
  ``b_list`` stays pruned; entries dominated by old results must be
  reconsidered because their dominators may now fail the new predicate;
* roll-up (weaker predicate): ``c_heap = result ∪ b_list`` — old results
  still qualify, so everything they dominated stays dominated, while
  boolean-pruned entries may now qualify.

As the paper suggests, the engine pre-filters carried entries with the new
predicate's signature before inserting them (failures go straight to the
new ``b_list``).  Top-k searches terminate early and may leave pending heap
entries; those are carried over too (they were neither pruned nor reported).

The execution machinery lives in :class:`~repro.query.session.QuerySession`;
this engine is the paper-comparable facade over it — bound to the *live*
structures, one fresh cold buffer pool per query, so per-query disk-access
counts stay a pure function of the query, like the paper's figures assume.
Concurrent serving binds sessions to pinned snapshots instead (see
``repro.serve``).
"""

from __future__ import annotations

from typing import Any

from repro.core.pcube import PCube
from repro.obs.trace import Tracer
from repro.cube.relation import Relation
from repro.query.predicates import BooleanPredicate
from repro.query.ranking import RankingFunction
from repro.query.session import QueryResult, QuerySession
from repro.rtree.rtree import RTree

__all__ = ["PreferenceEngine", "QueryResult"]


class PreferenceEngine:
    """Facade over a relation, its R-tree template and its P-Cube.

    Args:
        relation, rtree, pcube: The built system.
        pool_capacity: Buffer-pool pages per query; each query starts cold
            (fresh pool) so per-query disk-access counts are comparable,
            like the paper's.
        eager_assembly: Use exact recursive intersection for
            multi-predicate signatures instead of the lazy AND.
        degradation: Optional
            :class:`~repro.serve.resilience.DegradationPolicy` enabling
            the exact boolean-first scan fallback when storage faults
            escape even the conservative readers.  ``None`` (the default,
            paper-comparable) lets such faults propagate as typed errors.
    """

    def __init__(
        self,
        relation: Relation,
        rtree: RTree,
        pcube: PCube,
        pool_capacity: int = 4096,
        eager_assembly: bool = False,
        degradation=None,
    ) -> None:
        self.relation = relation
        self.rtree = rtree
        self.pcube = pcube
        self.pool_capacity = pool_capacity
        self.eager_assembly = eager_assembly
        self._session = QuerySession(
            relation,
            rtree,
            pcube,
            pool=None,  # cold pool per query: the paper-comparable mode
            pool_capacity=pool_capacity,
            eager_assembly=eager_assembly,
            degradation=degradation,
        )

    # ------------------------------------------------------------------ #
    # standard queries
    # ------------------------------------------------------------------ #

    def skyline(
        self,
        predicate: BooleanPredicate | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """A standard skyline query (Algorithm 1 from the root).

        ``preference_by`` restricts the skyline to a subset of preference
        dimensions by name (Section III's ``preference by N'1, ..., N'j``).
        Pass a :class:`~repro.obs.trace.Tracer` to capture the span tree
        and prune/load events of the execution.
        """
        return self._session.skyline(
            predicate, preference_by=preference_by, tracer=tracer
        )

    def topk(
        self,
        fn: RankingFunction,
        k: int,
        predicate: BooleanPredicate | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """A standard top-k query."""
        return self._session.topk(fn, k, predicate, tracer=tracer)

    def dynamic_skyline(
        self,
        query_point,
        predicate: BooleanPredicate | None = None,
    ) -> QueryResult:
        """A dynamic skyline query (Section VII extension): the skyline in
        the ``|x − query_point|`` space."""
        return self._session.dynamic_skyline(query_point, predicate)

    def lower_hull(
        self, predicate: BooleanPredicate | None = None
    ) -> QueryResult:
        """A 2-D lower-left convex hull query (Section VII extension)."""
        return self._session.lower_hull(predicate)

    # ------------------------------------------------------------------ #
    # incremental queries (Lemma 2)
    # ------------------------------------------------------------------ #

    def drill_down(
        self,
        previous: QueryResult,
        dim: str,
        value: Any,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        """Strengthen the previous query's predicate by one conjunct."""
        return self._session.drill_down(previous, dim, value, tracer=tracer)

    def roll_up(
        self, previous: QueryResult, dim: str, tracer: Tracer | None = None
    ) -> QueryResult:
        """Relax the previous query's predicate by removing one conjunct."""
        return self._session.roll_up(previous, dim, tracer=tracer)
