"""Vectorized block-vs-skyline-buffer domination.

Domination (minimising: ≤ everywhere, < somewhere) is pure comparison, so
the two backends are trivially bit-identical; what the vectorized path buys
is evaluating a whole buffer (or a whole block of probes) per C call
instead of per Python iteration — the dominant cost of BBS pops and of the
in-memory skyline filters once skylines grow.

Tie semantics are inherited, not reimplemented: these kernels only answer
"is this probe dominated", while the PR-2 lexicographic tie-break lives in
``HeapEntry.__lt__`` on the exact same float tuples both backends produce.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.backend import np, using_numpy
from repro.rtree.geometry import dominates

#: Buffer rows compared per chunk when probing one point (lets the common
#: "dominated early" case exit without scanning the whole buffer).
_PROBE_CHUNK = 512
#: Element budget for (buffer, probes, dims) broadcast tensors.
_TENSOR_BUDGET = 1 << 20
#: First dominator-chunk size for block probes (most probes die here).
_SEED_CHUNK = 16


class DominationBuffer:
    """An insertion-ordered buffer of candidate dominators.

    The skyline strategies grow one as results are discovered; SFS grows
    one during its filter pass.  The backend is captured at construction so
    a buffer never changes representation mid-query.
    """

    __slots__ = ("dims", "_points", "_arr", "_n", "_numpy")

    def __init__(
        self,
        dims: int,
        points: Sequence[Sequence[float]] = (),
        use_numpy: bool | None = None,
    ) -> None:
        if dims < 1:
            raise ValueError("dims must be at least 1")
        self.dims = dims
        self._points: list[tuple[float, ...]] = []
        self._numpy = using_numpy() if use_numpy is None else use_numpy
        self._arr = None
        self._n = 0
        for point in points:
            self.add(point)

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> list[tuple[float, ...]]:
        """The buffered points, insertion order (a copy)."""
        return list(self._points)

    def add(self, point: Sequence[float]) -> None:
        point = tuple(point)
        if len(point) != self.dims:
            raise ValueError(
                f"point has {len(point)} dims, buffer expects {self.dims}"
            )
        self._points.append(point)
        if not self._numpy:
            return
        if self._arr is None:
            self._arr = np.empty((16, self.dims), dtype=np.float64)
        elif self._n == len(self._arr):
            grown = np.empty(
                (2 * len(self._arr), self.dims), dtype=np.float64
            )
            grown[: self._n] = self._arr[: self._n]
            self._arr = grown
        self._arr[self._n] = point
        self._n += 1

    def dominates_point(self, probe: Sequence[float]) -> bool:
        """Whether any buffered point dominates ``probe``."""
        if not self._points:
            return False
        if not self._numpy:
            return any(dominates(s, probe) for s in self._points)
        arr, n = self._arr, self._n
        for start in range(0, n, _PROBE_CHUNK):
            block = arr[start : min(start + _PROBE_CHUNK, n)]
            le = np.ones(len(block), dtype=bool)
            lt = np.zeros(len(block), dtype=bool)
            for d in range(self.dims):
                col = block[:, d]
                v = probe[d]
                le &= col <= v
                lt |= col < v
            le &= lt
            if bool(le.any()):
                return True
        return False

    def dominates_block(
        self, probes: Sequence[Sequence[float]]
    ) -> list[bool]:
        """Per-probe: is it dominated by any buffered point?"""
        m = len(probes)
        if m == 0:
            return []
        if not self._points:
            return [False] * m
        if not self._numpy:
            return [
                any(dominates(s, probe) for s in self._points)
                for probe in probes
            ]
        p = np.asarray(probes, dtype=np.float64)
        out = np.zeros(m, dtype=bool)
        arr, n = self._arr, self._n
        # Escalating chunks with probe compression: the scalar loop
        # short-circuits after a handful of comparisons for a typical
        # dominated probe, so the vector path starts with a small buffer
        # prefix (which kills most probes in one cheap op), drops the
        # dead, and grows the chunk as survivors thin out.
        alive = np.arange(m)
        start = 0
        chunk = _SEED_CHUNK
        while start < n and alive.size:
            stop = min(start + chunk, n)
            hit = _block_dominates(
                arr[start:stop], p[alive], self.dims
            )
            if bool(hit.any()):
                out[alive[hit]] = True
                alive = alive[~hit]
            start = stop
            chunk = max(
                chunk * 4,
                _TENSOR_BUDGET // max(1, alive.size * self.dims),
            )
        return out.tolist()


def _block_dominates(block, probes, dims, other=None):
    """``hit[j]``: some ``block`` row dominates ``probes`` row j.

    Per-dimension 2-D comparisons instead of one (block, probes, dims)
    tensor — the short last axis makes 3-D reductions the slowest op in
    the whole stack, while d boolean matrix ops stream at memory speed.
    ``other`` optionally masks (block, probe) pairs allowed to dominate.
    """
    le = np.ones((len(block), len(probes)), dtype=bool)
    lt = np.zeros_like(le)
    for d in range(dims):
        bd = block[:, d][:, None]
        pd = probes[:, d][None, :]
        le &= bd <= pd
        lt |= bd < pd
    le &= lt
    if other is not None:
        le &= other
    return le.any(axis=0)


def prefix_dominated_mask(points) -> list[bool]:
    """``mask[j]``: some *earlier* row of ``points`` dominates row j.

    The in-chunk step of chunked SFS: by transitivity, "dominated by an
    earlier survivor" equals "dominated by an earlier *admitted* point",
    so the sequential admission loop can be replaced by one pairwise
    upper-triangle test over a chunk's block-survivors.
    """
    n = len(points)
    if n <= 1:
        return [False] * n
    if not using_numpy():
        return [
            any(dominates(points[i], points[j]) for i in range(j))
            for j in range(n)
        ]
    x = np.asarray(points, dtype=np.float64)
    earlier = np.tri(n, k=-1, dtype=bool).T  # [i, j] = i < j
    return _block_dominates(x, x, x.shape[1], other=earlier).tolist()


def dominated_mask(
    points: Sequence[tuple[int, Sequence[float]]]
) -> list[bool]:
    """Pairwise domination over ``(tid, point)`` pairs.

    ``mask[i]`` is True iff some pair with a *different tid* dominates pair
    ``i`` — exactly the naive-skyline membership test (self-pairs and
    same-tid duplicates are excluded, matching the scalar reference).
    """
    n = len(points)
    if n == 0:
        return []
    if not using_numpy():
        return [
            any(
                dominates(other, point)
                for other_tid, other in points
                if other_tid != tid
            )
            for tid, point in points
        ]
    tids = np.asarray([tid for tid, _ in points], dtype=np.int64)
    x = np.asarray([tuple(p) for _, p in points], dtype=np.float64)
    dims = x.shape[1]
    out = np.zeros(n, dtype=bool)
    # Same compression trick as DominationBuffer.dominates_block: sweep
    # dominator chunks over the (shrinking) set of not-yet-dominated
    # probes, growing the chunk as probes die.
    alive = np.arange(n)
    start = 0
    chunk = max(_SEED_CHUNK, _TENSOR_BUDGET // max(1, n * dims))
    while start < n and alive.size:
        stop = min(start + chunk, n)
        other = tids[start:stop, None] != tids[alive]
        hit = _block_dominates(
            x[start:stop], x[alive], dims, other=other
        )
        if bool(hit.any()):
            out[alive[hit]] = True
            alive = alive[~hit]
        start = stop
        chunk = max(
            chunk, _TENSOR_BUDGET // max(1, alive.size * dims)
        )
    return out.tolist()
