"""Word-parallel signature algebra: AND/OR/popcount over uint64 buffers.

Signature nodes are :class:`~repro.bitmap.bitarray.BitArray` values backed
by Python integers.  For assembly over *many* nodes at once (cuboid
union/intersection, set-bit diagnostics) these kernels pack the masks into
a ``(k, W)`` little-endian uint64 matrix and reduce word-parallel; the
packing round-trips through ``BitArray.to_words()/from_words()`` and
:func:`bitarray_words` views the packed bytes zero-copy.

Integer bitwise ops in CPython are already C-speed, so the numpy path only
engages above a small size threshold; both paths are exact and the parity
suite pins them against each other.
"""

from __future__ import annotations

from functools import reduce
from operator import and_, or_
from typing import Iterable, Sequence

from repro.bitmap.bitarray import BitArray, WORD_BITS, word_count
from repro.kernels.backend import np, using_numpy

#: Total packed words below which the scalar reduction is simply faster.
_NUMPY_THRESHOLD = 256


def _word_matrix(masks: Sequence[int], nbits: int):
    """Pack integer masks into a little-endian ``(k, W)`` uint64 matrix."""
    nwords = word_count(nbits)
    data = b"".join(
        mask.to_bytes(nwords * 8, "little") for mask in masks
    )
    return np.frombuffer(data, dtype="<u8").reshape(len(masks), nwords)


def _words_to_mask(words) -> int:
    return int.from_bytes(words.tobytes(), "little")


def bitarray_words(bits: BitArray):
    """A zero-copy little-endian uint64 view of a bit array's payload."""
    nwords = word_count(bits.nbits)
    data = bits.to_bytes()
    if len(data) != nwords * 8:
        data = data.ljust(nwords * 8, b"\x00")
    return np.frombuffer(data, dtype="<u8")


def words_to_bitarray(words, nbits: int) -> BitArray:
    """Inverse of :func:`bitarray_words` (validates width)."""
    return BitArray.from_words(nbits, [int(w) for w in words])


def or_masks(masks: Sequence[int], nbits: int) -> int:
    """Bitwise OR of integer masks (word-parallel above the threshold)."""
    if not masks:
        return 0
    if (
        not using_numpy()
        or len(masks) * word_count(nbits) < _NUMPY_THRESHOLD
    ):
        return reduce(or_, masks)
    matrix = _word_matrix(masks, nbits)
    return _words_to_mask(np.bitwise_or.reduce(matrix, axis=0))


def and_masks(masks: Sequence[int], nbits: int) -> int:
    """Bitwise AND of one or more integer masks."""
    if not masks:
        raise ValueError("and_masks of an empty sequence")
    if (
        not using_numpy()
        or len(masks) * word_count(nbits) < _NUMPY_THRESHOLD
    ):
        return reduce(and_, masks)
    matrix = _word_matrix(masks, nbits)
    return _words_to_mask(np.bitwise_and.reduce(matrix, axis=0))


def popcount_masks(masks: Iterable[int], nbits: int) -> int:
    """Total set bits across integer masks (``np.bitwise_count`` path)."""
    masks = list(masks)
    if not masks:
        return 0
    if (
        not using_numpy()
        or len(masks) * word_count(nbits) < _NUMPY_THRESHOLD
    ):
        return sum(mask.bit_count() for mask in masks)
    matrix = _word_matrix(masks, nbits)
    return int(np.bitwise_count(matrix).sum())


def popcount_bitarrays(arrays: Iterable[BitArray]) -> int:
    """Total set bits across bit arrays (widths may differ)."""
    total = 0
    by_width: dict[int, list[int]] = {}
    for bits in arrays:
        by_width.setdefault(bits.nbits, []).append(bits.mask)
    for nbits, masks in by_width.items():
        total += popcount_masks(masks, nbits)
    return total


__all__ = [
    "WORD_BITS",
    "and_masks",
    "bitarray_words",
    "or_masks",
    "popcount_bitarrays",
    "popcount_masks",
    "word_count",
    "words_to_bitarray",
]
