"""Vectorized batch primitives for the storage→query hot path.

Three kernel families, each with a scalar reference and a numpy block
implementation selected by ``REPRO_KERNELS=python|numpy`` (see
:mod:`repro.kernels.backend`):

* :mod:`repro.kernels.dominate` — block-vs-skyline-buffer domination;
* :mod:`repro.kernels.mindist` — batch heap keys (coordinate sums, linear
  and distance scores, rectangle lower bounds, MINDIST, the dynamic
  transform);
* :mod:`repro.kernels.sigops` — word-parallel AND/OR/popcount over packed
  uint64 signature buffers.

Both backends are bit-identical by construction: vector paths accumulate
per dimension in the scalar loops' order, comparisons are exact, and the
Hypothesis parity suite plus the engine differential tests pin it.
"""

from repro.kernels.backend import (
    BACKENDS,
    NUMPY,
    PYTHON,
    backend,
    set_backend,
    use_backend,
    using_numpy,
)

__all__ = [
    "BACKENDS",
    "NUMPY",
    "PYTHON",
    "backend",
    "set_backend",
    "use_backend",
    "using_numpy",
]
