"""The kernel backend switch: ``REPRO_KERNELS=python|numpy``.

Every batch kernel in :mod:`repro.kernels` has two implementations with
bit-identical results:

* ``python`` — scalar reference loops, one tuple at a time, exactly the
  arithmetic the paper-faithful code has always used;
* ``numpy`` — vectorized block evaluation that accumulates *per dimension
  in the same order* as the scalar loops, so IEEE-754 rounding agrees to
  the last ulp and answers (and counted I/O) are byte-identical.

The backend is resolved lazily from the ``REPRO_KERNELS`` environment
variable (default ``numpy`` when numpy is importable) and can be switched
at runtime with :func:`set_backend` or the :func:`use_backend` context
manager — the differential tests and ``python -m repro.bench --kernels``
run both backends in one process.

Switching applies to kernels *created afterwards*: stateful objects such
as :class:`repro.kernels.dominate.DominationBuffer` capture the backend at
construction so a query never changes representation mid-flight.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped envs
    np = None  # type: ignore[assignment]

PYTHON = "python"
NUMPY = "numpy"
BACKENDS = (PYTHON, NUMPY)

_lock = threading.Lock()
_backend: str | None = None  # resolved lazily from the environment


def _resolve_default() -> str:
    name = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if not name:
        return NUMPY if np is not None else PYTHON
    return _validate(name)


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"REPRO_KERNELS must be one of {BACKENDS}, got {name!r}"
        )
    if name == NUMPY and np is None:
        raise RuntimeError(
            "REPRO_KERNELS=numpy requested but numpy is not importable"
        )
    return name


def backend() -> str:
    """The active kernel backend name (``"python"`` or ``"numpy"``)."""
    global _backend
    if _backend is None:
        with _lock:
            if _backend is None:
                _backend = _resolve_default()
    return _backend


def using_numpy() -> bool:
    """Whether block kernels should take their vectorized path."""
    return backend() == NUMPY


def set_backend(name: str) -> str:
    """Switch the process-wide backend; returns the previous one."""
    global _backend
    name = _validate(name.strip().lower())
    with _lock:
        previous = _backend if _backend is not None else _resolve_default()
        _backend = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch backends (differential tests, ``--kernels``)."""
    previous = set_backend(name)
    try:
        yield backend()
    finally:
        set_backend(previous)
