"""Batch lower-bound and score kernels for heap insertion (BBS / top-k).

Every function evaluates one scalar formula over a *block* of points or
rectangles and returns plain Python floats.  The vectorized path
accumulates per dimension in the exact order of the scalar reference —
``total = 0.0; for d: total += term_d`` — because Python's ``sum()`` folds
left-to-right from 0 and float addition is not associative.  Term
expressions keep the reference's grouping too (``w * delta * delta`` is
``(w·Δ)·Δ``, ``w * (x - t) ** 2`` is ``w·(Δ²)``), so both backends agree
bit-for-bit and heap orders (hence counted I/O) never diverge.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.backend import np, using_numpy

Rows = Sequence[Sequence[float]]


def _matrix(rows: Rows):
    """A float64 (n, d) matrix over a non-empty block of same-width rows.

    Already-columnar input (an ndarray straight out of
    :class:`repro.cube.columnar.ColumnarProjection`) passes through
    without a copy — the point of handing matrices down the stack.
    """
    if isinstance(rows, np.ndarray) and rows.dtype == np.float64:
        return rows
    return np.asarray(rows, dtype=np.float64)


# --------------------------------------------------------------------------- #
# skyline keys: d(n) = Σ lows  (and plain coordinate sums)
# --------------------------------------------------------------------------- #


def sum_block(rows: Rows) -> list[float]:
    """``[sum(row) for row in rows]`` — the skyline heap key d(n)."""
    if len(rows) == 0 or not using_numpy():
        return [sum(row) for row in rows]
    x = _matrix(rows)
    total = np.zeros(len(rows), dtype=np.float64)
    for d in range(x.shape[1]):
        total += x[:, d]
    return total.tolist()


# --------------------------------------------------------------------------- #
# linear functions: f = Σ w_d x_d
# --------------------------------------------------------------------------- #


def linear_score_block(
    weights: Sequence[float], rows: Rows
) -> list[float]:
    """``LinearFunction.score`` over a block of points."""
    if len(rows) == 0 or not using_numpy():
        return [
            sum(w * x for w, x in zip(weights, row)) for row in rows
        ]
    x = _matrix(rows)
    total = np.zeros(len(rows), dtype=np.float64)
    for d, w in enumerate(weights):
        total += w * x[:, d]
    return total.tolist()


def linear_lower_bound_block(
    weights: Sequence[float], lows: Rows, highs: Rows
) -> list[float]:
    """``LinearFunction.lower_bound`` over a block of rectangles."""
    if len(lows) == 0 or not using_numpy():
        return [
            sum(
                w * (lo if w >= 0 else hi)
                for w, lo, hi in zip(weights, row_lo, row_hi)
            )
            for row_lo, row_hi in zip(lows, highs)
        ]
    lo = _matrix(lows)
    hi = _matrix(highs)
    total = np.zeros(len(lows), dtype=np.float64)
    for d, w in enumerate(weights):
        total += w * (lo[:, d] if w >= 0 else hi[:, d])
    return total.tolist()


# --------------------------------------------------------------------------- #
# weighted squared distance: f = Σ w_d (x_d − t_d)²  (Example 1 / MINDIST)
# --------------------------------------------------------------------------- #


def wsd_score_block(
    weights: Sequence[float], target: Sequence[float], rows: Rows
) -> list[float]:
    """``WeightedSquaredDistance.score`` over a block of points."""
    if len(rows) == 0 or not using_numpy():
        return [
            sum(
                w * (x - t) ** 2
                for w, x, t in zip(weights, row, target)
            )
            for row in rows
        ]
    x = _matrix(rows)
    total = np.zeros(len(rows), dtype=np.float64)
    for d, (w, t) in enumerate(zip(weights, target)):
        delta = x[:, d] - t
        total += w * (delta * delta)
    return total.tolist()


def wsd_lower_bound_block(
    weights: Sequence[float],
    target: Sequence[float],
    lows: Rows,
    highs: Rows,
) -> list[float]:
    """``WeightedSquaredDistance.lower_bound`` over a block of rectangles.

    The scalar reference skips in-range dimensions; adding an exact 0.0
    term instead is bit-identical (x + 0.0 == x for finite x ≥ 0 sums).
    """

    def scalar(row_lo, row_hi):
        total = 0.0
        for w, t, lo, hi in zip(weights, target, row_lo, row_hi):
            if t < lo:
                delta = lo - t
            elif t > hi:
                delta = t - hi
            else:
                continue
            total += w * delta * delta
        return total

    if len(lows) == 0 or not using_numpy():
        return [scalar(lo, hi) for lo, hi in zip(lows, highs)]
    lo = _matrix(lows)
    hi = _matrix(highs)
    total = np.zeros(len(lows), dtype=np.float64)
    for d, (w, t) in enumerate(zip(weights, target)):
        delta = np.where(
            t < lo[:, d],
            lo[:, d] - t,
            np.where(t > hi[:, d], t - hi[:, d], 0.0),
        )
        total += w * delta * delta
    return total.tolist()


# --------------------------------------------------------------------------- #
# separable functions: per-term linear / squared mixes
# --------------------------------------------------------------------------- #


def separable_score_block(
    terms: Sequence[tuple[int, str, float, float]], rows: Rows
) -> list[float]:
    """``SeparableFunction.score`` over a block of points."""
    if len(rows) == 0 or not using_numpy():
        out = []
        for row in rows:
            total = 0.0
            for dim, kind, coeff, target in terms:
                value = row[dim]
                if kind == "linear":
                    total += coeff * value
                else:
                    total += coeff * (value - target) ** 2
            out.append(total)
        return out
    x = _matrix(rows)
    total = np.zeros(len(rows), dtype=np.float64)
    for dim, kind, coeff, target in terms:
        col = x[:, dim]
        if kind == "linear":
            total += coeff * col
        else:
            delta = col - target
            total += coeff * (delta * delta)
    return total.tolist()


def separable_lower_bound_block(
    terms: Sequence[tuple[int, str, float, float]],
    lows: Rows,
    highs: Rows,
) -> list[float]:
    """``SeparableFunction.lower_bound`` over a block of rectangles."""

    def scalar(row_lo, row_hi):
        total = 0.0
        for dim, kind, coeff, target in terms:
            lo, hi = row_lo[dim], row_hi[dim]
            if kind == "linear":
                total += coeff * (lo if coeff >= 0 else hi)
            else:
                if target < lo:
                    delta = lo - target
                elif target > hi:
                    delta = target - hi
                else:
                    delta = 0.0
                total += coeff * delta * delta
        return total

    if len(lows) == 0 or not using_numpy():
        return [scalar(lo, hi) for lo, hi in zip(lows, highs)]
    lo = _matrix(lows)
    hi = _matrix(highs)
    total = np.zeros(len(lows), dtype=np.float64)
    for dim, kind, coeff, target in terms:
        if kind == "linear":
            total += coeff * (lo[:, dim] if coeff >= 0 else hi[:, dim])
        else:
            delta = np.where(
                target < lo[:, dim],
                lo[:, dim] - target,
                np.where(target > hi[:, dim], target - hi[:, dim], 0.0),
            )
            total += coeff * delta * delta
    return total.tolist()


# --------------------------------------------------------------------------- #
# classic MINDIST: squared distance from a point to each rectangle
# --------------------------------------------------------------------------- #


def mindist_block(
    lows: Rows, highs: Rows, point: Sequence[float]
) -> list[float]:
    """``geometry.mindist(rect, point)`` over a block of rectangles."""

    def scalar(row_lo, row_hi):
        total = 0.0
        for lo, hi, v in zip(row_lo, row_hi, point):
            if v < lo:
                delta = lo - v
            elif v > hi:
                delta = v - hi
            else:
                continue
            total += delta * delta
        return total

    if len(lows) == 0 or not using_numpy():
        return [scalar(lo, hi) for lo, hi in zip(lows, highs)]
    lo = _matrix(lows)
    hi = _matrix(highs)
    total = np.zeros(len(lows), dtype=np.float64)
    for d, v in enumerate(point):
        delta = np.where(
            v < lo[:, d],
            lo[:, d] - v,
            np.where(v > hi[:, d], v - hi[:, d], 0.0),
        )
        total += delta * delta
    return total.tolist()


# --------------------------------------------------------------------------- #
# the dynamic-skyline transform: x ↦ |x − q|  (points and rect low corners)
# --------------------------------------------------------------------------- #


def transform_points_block(
    rows: Rows, query_point: Sequence[float]
) -> list[tuple[float, ...]]:
    """``transform_point`` over a block of points (exact: |x−q| per dim)."""
    if len(rows) == 0 or not using_numpy():
        return [
            tuple(abs(x - q) for x, q in zip(row, query_point))
            for row in rows
        ]
    x = _matrix(rows)
    q = np.asarray(query_point, dtype=np.float64)
    return [tuple(row) for row in np.abs(x - q).tolist()]


def transform_rect_lowers_block(
    lows: Rows, highs: Rows, query_point: Sequence[float]
) -> list[tuple[float, ...]]:
    """``transform_rect_lower`` over a block of rectangles."""

    def scalar(row_lo, row_hi):
        corner = []
        for lo, hi, q in zip(row_lo, row_hi, query_point):
            if q < lo:
                corner.append(lo - q)
            elif q > hi:
                corner.append(q - hi)
            else:
                corner.append(0.0)
        return tuple(corner)

    if len(lows) == 0 or not using_numpy():
        return [scalar(lo, hi) for lo, hi in zip(lows, highs)]
    lo = _matrix(lows)
    hi = _matrix(highs)
    q = np.asarray(query_point, dtype=np.float64)
    corner = np.where(q < lo, lo - q, np.where(q > hi, q - hi, 0.0))
    return [tuple(row) for row in corner.tolist()]
