"""Relation schemas: named boolean and preference dimensions."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Schema:
    """Column layout of a relation.

    Attributes:
        boolean_dims: Names of the boolean (selection) dimensions, e.g.
            ``("type", "maker", "color")`` in the used-car example.
        preference_dims: Names of the preference (measure) dimensions, e.g.
            ``("price", "mileage")``.

    The two sets may overlap in the paper's formulation; this implementation
    keeps them as independent column groups, which subsumes overlap (list a
    column in both groups and store it twice).
    """

    boolean_dims: tuple[str, ...]
    preference_dims: tuple[str, ...]
    _bool_index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if len(set(self.boolean_dims)) != len(self.boolean_dims):
            raise ValueError("duplicate boolean dimension names")
        if len(set(self.preference_dims)) != len(self.preference_dims):
            raise ValueError("duplicate preference dimension names")
        if not self.preference_dims:
            raise ValueError("at least one preference dimension is required")
        object.__setattr__(
            self,
            "_bool_index",
            {name: i for i, name in enumerate(self.boolean_dims)},
        )

    @property
    def n_boolean(self) -> int:
        return len(self.boolean_dims)

    @property
    def n_preference(self) -> int:
        return len(self.preference_dims)

    def boolean_position(self, name: str) -> int:
        """Column position of a boolean dimension."""
        try:
            return self._bool_index[name]
        except KeyError:
            raise KeyError(f"unknown boolean dimension {name!r}") from None

    def preference_position(self, name: str) -> int:
        """Column position of a preference dimension."""
        try:
            return self.preference_dims.index(name)
        except ValueError:
            raise KeyError(f"unknown preference dimension {name!r}") from None
