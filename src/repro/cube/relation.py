"""The base relation, stored as a paged heap file.

Two access paths matter to the baselines:

* :meth:`Relation.scan` — a full table scan, reading every heap page once
  (the Boolean-first baseline may prefer this over an index scan);
* :meth:`Relation.fetch` — a random access by tid, costing one page read
  (what minimal probing pays per boolean verification, category ``DBOOL``).

Multi-versioning: every mutation (append, tombstone, preference overwrite)
is stamped with the epoch reported by :attr:`Relation.epoch_clock`, and
:meth:`Relation.view` materialises a read-only :class:`RelationView` that
shows exactly the rows and values visible at a given epoch — a reader
pinned to epoch *E* never sees a row inserted, deleted or updated by later
maintenance.  The plain accessors (``live_tids``, ``pref_point``, …) keep
their historical latest-state semantics; only views filter.  With no epoch
system attached the clock reads 0 and the version maps stay empty, so
stand-alone use costs nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as _np

from repro.cube.columnar import ColumnarProjection
from repro.cube.schema import Schema
from repro.storage.buffer import BufferPool
from repro.storage.counters import BTABLE, DBOOL, IOCounters
from repro.storage.disk import SimulatedDisk

_ROW_HEADER_BYTES = 4
_VALUE_BYTES = 8


def _epoch_zero() -> int:
    """Default epoch clock: no epoch system attached, everything is epoch 0."""
    return 0


class Relation:
    """An immutable-by-convention table of (boolean, preference) rows.

    Args:
        schema: Column layout.
        bool_rows: One tuple of boolean values per row.
        pref_rows: One tuple of floats per row (same length as bool_rows).
        disk: Page store for the heap file.
        tag: Page tag prefix.

    Tids are row positions (0-based), matching the R-tree and signatures.
    """

    def __init__(
        self,
        schema: Schema,
        bool_rows: Sequence[tuple],
        pref_rows: Sequence[tuple],
        disk: SimulatedDisk | None = None,
        tag: str = "heap",
    ) -> None:
        if len(bool_rows) != len(pref_rows):
            raise ValueError("boolean and preference row counts differ")
        self.schema = schema
        # Matrix input (the generators hand numpy arrays straight through)
        # primes the columnar projection without a per-tuple round trip;
        # ``tolist()`` yields the exact same Python ints/floats the old
        # per-value conversion produced, so rows are byte-identical.
        self._columnar: tuple[int, "ColumnarProjection"] | None = None
        self._mutation_stamp = 0
        if isinstance(bool_rows, _np.ndarray) and isinstance(
            pref_rows, _np.ndarray
        ):
            self._bool_rows = [tuple(row) for row in bool_rows.tolist()]
            self._pref_rows = [
                tuple(float(v) for v in row) for row in pref_rows.tolist()
            ]
            self._columnar = (
                0,
                ColumnarProjection.from_matrices(
                    schema, bool_rows, pref_rows
                ),
            )
        else:
            self._bool_rows = [tuple(row) for row in bool_rows]
            self._pref_rows = [
                tuple(float(v) for v in row) for row in pref_rows
            ]
        for row in self._bool_rows:
            if len(row) != schema.n_boolean:
                raise ValueError("boolean row width does not match schema")
        for row in self._pref_rows:
            if len(row) != schema.n_preference:
                raise ValueError("preference row width does not match schema")
        self.disk = disk if disk is not None else SimulatedDisk()
        self.tag = tag
        self._row_bytes = _ROW_HEADER_BYTES + _VALUE_BYTES * (
            schema.n_boolean + schema.n_preference
        )
        self.rows_per_page = max(1, self.disk.page_size // self._row_bytes)
        self._page_ids: list[int] = []
        self._tombstones: set[int] = set()
        #: Reports the epoch a mutation should be stamped with.  The epoch
        #: manager installs itself here; stand-alone relations stay at 0.
        self.epoch_clock: Callable[[], int] = _epoch_zero
        # Version maps.  Absent tid ⇒ created at epoch 0 / never tombstoned
        # / preference row never rewritten — the common case stays O(0).
        self._created_epoch: dict[int, int] = {}
        self._tombstone_epoch: dict[int, int] = {}
        self._pref_history: dict[int, list[tuple[int, tuple[float, ...]]]] = {}
        self._build_heap()

    def _build_heap(self) -> None:
        for start in range(0, len(self._bool_rows), self.rows_per_page):
            tids = range(start, min(start + self.rows_per_page, len(self)))
            page_id = self.disk.allocate(
                self.tag,
                size=len(tids) * self._row_bytes,
                payload=list(tids),
            )
            self._page_ids.append(page_id)

    # ------------------------------------------------------------------ #
    # growth (incremental-maintenance experiments)
    # ------------------------------------------------------------------ #

    def append(self, bool_row: tuple, pref_row: tuple) -> int:
        """Append a row to the heap file; returns the new tid."""
        if len(bool_row) != self.schema.n_boolean:
            raise ValueError("boolean row width does not match schema")
        if len(pref_row) != self.schema.n_preference:
            raise ValueError("preference row width does not match schema")
        tid = len(self)
        epoch = self.epoch_clock()
        if epoch > 0:
            self._created_epoch[tid] = epoch
        self._bool_rows.append(tuple(bool_row))
        self._pref_rows.append(tuple(float(v) for v in pref_row))
        self._mutation_stamp += 1
        self._append_to_page(tid)
        return tid

    def _append_to_page(self, tid: int) -> None:
        """Page one already-buffered row (the tail of the heap file)."""
        if self._page_ids:
            last_page = self.disk.peek(self._page_ids[-1])
            if len(last_page.payload) < self.rows_per_page:
                last_page.payload.append(tid)
                last_page.size += self._row_bytes
                return
        self._page_ids.append(
            self.disk.allocate(self.tag, size=self._row_bytes, payload=[tid])
        )

    def paged_count(self) -> int:
        """How many rows have reached heap pages (rows are paged in tid
        order, so this is also the first unpaged tid)."""
        return sum(
            len(self.disk.peek(page_id).payload) for page_id in self._page_ids
        )

    def repair_heap(self) -> int:
        """Page any buffered rows a crash left off the heap file.

        ``append`` buffers the row before allocating its page, so a crash
        in the allocation leaves a contiguous unpaged tail; re-paging that
        tail is idempotent.  Returns the number of rows repaired.
        """
        first_unpaged = self.paged_count()
        for tid in range(first_unpaged, len(self)):
            self._append_to_page(tid)
        return len(self) - first_unpaged

    def overwrite_pref(self, tid: int, pref_row: tuple) -> None:
        """Replace a row's preference values in place (update experiments).

        The overwritten value is kept in an undo chain stamped with the
        writing epoch, so views pinned before the write still resolve the
        old point.  Without an epoch system the chain is not kept.
        """
        if len(pref_row) != self.schema.n_preference:
            raise ValueError("preference row width does not match schema")
        epoch = self.epoch_clock()
        if epoch > 0:
            self._pref_history.setdefault(tid, []).append(
                (epoch, self._pref_rows[tid])
            )
        self._pref_rows[tid] = tuple(float(v) for v in pref_row)
        self._mutation_stamp += 1

    # ------------------------------------------------------------------ #
    # tombstones (incremental deletes)
    # ------------------------------------------------------------------ #

    def tombstone(self, tid: int) -> None:
        """Mark a row deleted.  The row data stays in place (so signature
        maintenance can still resolve its cells) but every live-row access
        path — ``scan``, ``pref_points``, ``live_tids`` — skips it.
        Idempotent: tombstoning a tombstone is a no-op."""
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} out of range")
        if tid not in self._tombstones:
            epoch = self.epoch_clock()
            if epoch > 0:
                self._tombstone_epoch[tid] = epoch
            self._mutation_stamp += 1
        self._tombstones.add(tid)

    def is_live(self, tid: int) -> bool:
        return 0 <= tid < len(self) and tid not in self._tombstones

    def live_tids(self) -> Iterator[int]:
        return (tid for tid in range(len(self)) if tid not in self._tombstones)

    def live_count(self) -> int:
        return len(self) - len(self._tombstones)

    # ------------------------------------------------------------------ #
    # plain (uncounted) access for in-memory algorithms
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._bool_rows)

    def bool_row(self, tid: int) -> tuple:
        return self._bool_rows[tid]

    def pref_point(self, tid: int) -> tuple[float, ...]:
        return self._pref_rows[tid]

    def bool_value(self, tid: int, dim: str) -> Any:
        return self._bool_rows[tid][self.schema.boolean_position(dim)]

    def tids(self) -> range:
        return range(len(self))

    def pref_points(self) -> Iterator[tuple[int, tuple[float, ...]]]:
        """Live ``(tid, preference_point)`` pairs (R-tree loading input)."""
        return (
            (tid, point)
            for tid, point in enumerate(self._pref_rows)
            if tid not in self._tombstones
        )

    # ------------------------------------------------------------------ #
    # counted access paths
    # ------------------------------------------------------------------ #

    def heap_page_count(self) -> int:
        return len(self._page_ids)

    def columnar(self) -> ColumnarProjection:
        """The columnar projection of the current state (lazily cached).

        Invalidated by any mutation (append / tombstone / preference
        overwrite) via the mutation stamp.  Concurrent readers may race to
        rebuild — the build is idempotent and the cache slot assignment is
        atomic, so the worst case is one redundant build.
        """
        cached = self._columnar
        stamp = self._mutation_stamp
        if cached is not None and cached[0] == stamp:
            return cached[1]
        projection = ColumnarProjection.from_rows(
            self.schema, self._bool_rows, self._pref_rows, self._tombstones
        )
        self._columnar = (stamp, projection)
        return projection

    def scan_pages(
        self,
        counters: IOCounters | None = None,
        category: str = BTABLE,
    ) -> Iterator[list[int]]:
        """Page-at-a-time table scan: the same counted reads as
        :meth:`scan`, but yielding each page's raw tid list (tombstoned
        rows included) so batch kernels can filter columnarly."""
        for page_id in self._page_ids:
            yield self.disk.read(page_id, category, counters)

    def scan(
        self,
        counters: IOCounters | None = None,
        category: str = BTABLE,
    ) -> Iterator[int]:
        """Full table scan: yields every *live* tid, reading each heap page
        once.  Tombstoned rows still occupy their slots (and are paid for in
        the page read) but are not yielded."""
        for page_id in self._page_ids:
            tids = self.disk.read(page_id, category, counters)
            for tid in tids:
                if tid not in self._tombstones:
                    yield tid

    def fetch(
        self,
        tid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        category: str = DBOOL,
    ) -> tuple[tuple, tuple[float, ...]]:
        """Random access by tid: one page read, then the full row."""
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} out of range")
        page_id = self._page_ids[tid // self.rows_per_page]
        if pool is not None:
            pool.get(page_id, category, counters)
        else:
            self.disk.read(page_id, category, counters)
        return self._bool_rows[tid], self._pref_rows[tid]

    # ------------------------------------------------------------------ #
    # multi-versioning
    # ------------------------------------------------------------------ #

    def view(self, epoch: int) -> "RelationView":
        """A read-only view of the relation as of ``epoch``."""
        return RelationView(self, epoch)

    def _len_at(self, epoch: int) -> int:
        """Row count visible at ``epoch``.

        Tids are append-ordered and creation epochs are monotone
        non-decreasing, so the visible prefix length is found by bisection.
        """
        n = len(self._bool_rows)
        if not self._created_epoch:
            return n
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._created_epoch.get(mid, 0) <= epoch:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _is_live_at(self, tid: int, epoch: int) -> bool:
        if not 0 <= tid < self._len_at(epoch):
            return False
        if tid not in self._tombstones:
            return True
        return self._tombstone_epoch.get(tid, 0) > epoch

    def _pref_at(self, tid: int, epoch: int) -> tuple[float, ...]:
        """The preference row visible at ``epoch``.

        The undo chain is chronological, so the first entry written by a
        later epoch holds the value the pinned reader saw.
        """
        history = self._pref_history.get(tid)
        if history:
            for write_epoch, old_row in history:
                if write_epoch > epoch:
                    return old_row
        return self._pref_rows[tid]

    def prune_versions(self, oldest_pinned: int) -> int:
        """Discard version records no reader at or after ``oldest_pinned``
        can resolve.  Returns how many records were dropped (for stats).

        Safe because a record stamped with epoch ``W`` is only consulted by
        readers pinned strictly before ``W``.

        Must run on the maintenance writer's thread (the epoch manager
        calls it from ``publish()``): it mutates the same version maps
        ``append``/``tombstone``/``overwrite_pref`` update without a lock.
        """
        dropped = 0
        for tid in [t for t, e in self._created_epoch.items() if e <= oldest_pinned]:
            del self._created_epoch[tid]
            dropped += 1
        for tid in [t for t, e in self._tombstone_epoch.items() if e <= oldest_pinned]:
            del self._tombstone_epoch[tid]
            dropped += 1
        for tid in list(self._pref_history):
            chain = self._pref_history[tid]
            keep = [entry for entry in chain if entry[0] > oldest_pinned]
            dropped += len(chain) - len(keep)
            if keep:
                self._pref_history[tid] = keep
            else:
                del self._pref_history[tid]
        return dropped


class RelationView:
    """The relation as it looked at one epoch — a read-only projection.

    Duck-types the read side of :class:`Relation` (``schema``, ``fetch``,
    ``bool_value``, ``live_tids``, ``scan``, …) so query code runs against
    either interchangeably; every accessor filters by the pinned epoch.
    Mutators are deliberately absent: maintenance goes through the base
    relation under the single-writer epoch protocol.
    """

    def __init__(self, base: Relation, epoch: int) -> None:
        self._base = base
        self.epoch = epoch
        self.schema = base.schema
        self.disk = base.disk
        self.rows_per_page = base.rows_per_page
        self._columnar: tuple[int, ColumnarProjection] | None = None

    def __len__(self) -> int:
        return self._base._len_at(self.epoch)

    def is_live(self, tid: int) -> bool:
        return self._base._is_live_at(tid, self.epoch)

    def live_tids(self) -> Iterator[int]:
        base = self._base
        return (
            tid
            for tid in range(len(self))
            if base._is_live_at(tid, self.epoch)
        )

    def live_count(self) -> int:
        return sum(1 for _ in self.live_tids())

    def tids(self) -> range:
        return range(len(self))

    def bool_row(self, tid: int) -> tuple:
        self._check(tid)
        return self._base.bool_row(tid)

    def bool_value(self, tid: int, dim: str) -> Any:
        self._check(tid)
        return self._base.bool_value(tid, dim)

    def pref_point(self, tid: int) -> tuple[float, ...]:
        self._check(tid)
        return self._base._pref_at(tid, self.epoch)

    def pref_points(self) -> Iterator[tuple[int, tuple[float, ...]]]:
        base = self._base
        return (
            (tid, base._pref_at(tid, self.epoch))
            for tid in range(len(self))
            if base._is_live_at(tid, self.epoch)
        )

    def heap_page_count(self) -> int:
        return self._base.heap_page_count()

    def columnar(self) -> ColumnarProjection:
        """The pinned-epoch snapshot of the base columnar projection.

        Built by patching the base projection: rows created after the
        epoch are sliced off, rows tombstoned after it are resurrected,
        and preference rows overwritten after it are restored from the
        undo chains — the columnar twin of ``_is_live_at``/``_pref_at``.
        Cached per base mutation stamp.
        """
        base = self._base
        cached = self._columnar
        stamp = base._mutation_stamp
        if cached is not None and cached[0] == stamp:
            return cached[1]
        n = len(self)
        resurrect = [
            tid
            for tid, write_epoch in base._tombstone_epoch.items()
            if write_epoch > self.epoch
        ]
        pref_undo: dict[int, tuple[float, ...]] = {}
        for tid, chain in base._pref_history.items():
            for write_epoch, old_row in chain:
                if write_epoch > self.epoch:
                    pref_undo[tid] = old_row
                    break
        projection = base.columnar().snapshot(n, resurrect, pref_undo)
        self._columnar = (stamp, projection)
        return projection

    def scan_pages(
        self,
        counters: IOCounters | None = None,
        category: str = BTABLE,
    ) -> Iterator[list[int]]:
        """Page-at-a-time variant of :meth:`scan`: identical counted reads
        (including the one read that proves a page is out of range),
        yielding raw tid lists clipped to the pinned epoch's prefix."""
        limit = len(self)
        base = self._base
        for page_id in base._page_ids:
            tids = base.disk.read(page_id, category, counters)
            if tids and tids[0] >= limit:
                break
            if tids and tids[-1] < limit:
                yield tids
            else:
                yield [tid for tid in tids if tid < limit]

    def scan(
        self,
        counters: IOCounters | None = None,
        category: str = BTABLE,
    ) -> Iterator[int]:
        """Full scan of the pages that existed at the pinned epoch."""
        limit = len(self)
        base = self._base
        for page_id in base._page_ids:
            tids = base.disk.read(page_id, category, counters)
            if tids and tids[0] >= limit:
                break
            for tid in tids:
                if tid < limit and base._is_live_at(tid, self.epoch):
                    yield tid

    def fetch(
        self,
        tid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        category: str = DBOOL,
    ) -> tuple[tuple, tuple[float, ...]]:
        """Random access by tid, resolving the epoch-correct pref row."""
        self._check(tid)
        base = self._base
        page_id = base._page_ids[tid // base.rows_per_page]
        if pool is not None:
            pool.get(page_id, category, counters)
        else:
            base.disk.read(page_id, category, counters)
        return base.bool_row(tid), base._pref_at(tid, self.epoch)

    def _check(self, tid: int) -> None:
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} not visible at epoch {self.epoch}")
