"""The base relation, stored as a paged heap file.

Two access paths matter to the baselines:

* :meth:`Relation.scan` — a full table scan, reading every heap page once
  (the Boolean-first baseline may prefer this over an index scan);
* :meth:`Relation.fetch` — a random access by tid, costing one page read
  (what minimal probing pays per boolean verification, category ``DBOOL``).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.cube.schema import Schema
from repro.storage.buffer import BufferPool
from repro.storage.counters import BTABLE, DBOOL, IOCounters
from repro.storage.disk import SimulatedDisk

_ROW_HEADER_BYTES = 4
_VALUE_BYTES = 8


class Relation:
    """An immutable-by-convention table of (boolean, preference) rows.

    Args:
        schema: Column layout.
        bool_rows: One tuple of boolean values per row.
        pref_rows: One tuple of floats per row (same length as bool_rows).
        disk: Page store for the heap file.
        tag: Page tag prefix.

    Tids are row positions (0-based), matching the R-tree and signatures.
    """

    def __init__(
        self,
        schema: Schema,
        bool_rows: Sequence[tuple],
        pref_rows: Sequence[tuple],
        disk: SimulatedDisk | None = None,
        tag: str = "heap",
    ) -> None:
        if len(bool_rows) != len(pref_rows):
            raise ValueError("boolean and preference row counts differ")
        self.schema = schema
        self._bool_rows = [tuple(row) for row in bool_rows]
        self._pref_rows = [
            tuple(float(v) for v in row) for row in pref_rows
        ]
        for row in self._bool_rows:
            if len(row) != schema.n_boolean:
                raise ValueError("boolean row width does not match schema")
        for row in self._pref_rows:
            if len(row) != schema.n_preference:
                raise ValueError("preference row width does not match schema")
        self.disk = disk if disk is not None else SimulatedDisk()
        self.tag = tag
        self._row_bytes = _ROW_HEADER_BYTES + _VALUE_BYTES * (
            schema.n_boolean + schema.n_preference
        )
        self.rows_per_page = max(1, self.disk.page_size // self._row_bytes)
        self._page_ids: list[int] = []
        self._tombstones: set[int] = set()
        self._build_heap()

    def _build_heap(self) -> None:
        for start in range(0, len(self._bool_rows), self.rows_per_page):
            tids = range(start, min(start + self.rows_per_page, len(self)))
            page_id = self.disk.allocate(
                self.tag,
                size=len(tids) * self._row_bytes,
                payload=list(tids),
            )
            self._page_ids.append(page_id)

    # ------------------------------------------------------------------ #
    # growth (incremental-maintenance experiments)
    # ------------------------------------------------------------------ #

    def append(self, bool_row: tuple, pref_row: tuple) -> int:
        """Append a row to the heap file; returns the new tid."""
        if len(bool_row) != self.schema.n_boolean:
            raise ValueError("boolean row width does not match schema")
        if len(pref_row) != self.schema.n_preference:
            raise ValueError("preference row width does not match schema")
        tid = len(self)
        self._bool_rows.append(tuple(bool_row))
        self._pref_rows.append(tuple(float(v) for v in pref_row))
        self._append_to_page(tid)
        return tid

    def _append_to_page(self, tid: int) -> None:
        """Page one already-buffered row (the tail of the heap file)."""
        if self._page_ids:
            last_page = self.disk.peek(self._page_ids[-1])
            if len(last_page.payload) < self.rows_per_page:
                last_page.payload.append(tid)
                last_page.size += self._row_bytes
                return
        self._page_ids.append(
            self.disk.allocate(self.tag, size=self._row_bytes, payload=[tid])
        )

    def paged_count(self) -> int:
        """How many rows have reached heap pages (rows are paged in tid
        order, so this is also the first unpaged tid)."""
        return sum(
            len(self.disk.peek(page_id).payload) for page_id in self._page_ids
        )

    def repair_heap(self) -> int:
        """Page any buffered rows a crash left off the heap file.

        ``append`` buffers the row before allocating its page, so a crash
        in the allocation leaves a contiguous unpaged tail; re-paging that
        tail is idempotent.  Returns the number of rows repaired.
        """
        first_unpaged = self.paged_count()
        for tid in range(first_unpaged, len(self)):
            self._append_to_page(tid)
        return len(self) - first_unpaged

    def overwrite_pref(self, tid: int, pref_row: tuple) -> None:
        """Replace a row's preference values in place (update experiments)."""
        if len(pref_row) != self.schema.n_preference:
            raise ValueError("preference row width does not match schema")
        self._pref_rows[tid] = tuple(float(v) for v in pref_row)

    # ------------------------------------------------------------------ #
    # tombstones (incremental deletes)
    # ------------------------------------------------------------------ #

    def tombstone(self, tid: int) -> None:
        """Mark a row deleted.  The row data stays in place (so signature
        maintenance can still resolve its cells) but every live-row access
        path — ``scan``, ``pref_points``, ``live_tids`` — skips it.
        Idempotent: tombstoning a tombstone is a no-op."""
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} out of range")
        self._tombstones.add(tid)

    def is_live(self, tid: int) -> bool:
        return 0 <= tid < len(self) and tid not in self._tombstones

    def live_tids(self) -> Iterator[int]:
        return (tid for tid in range(len(self)) if tid not in self._tombstones)

    def live_count(self) -> int:
        return len(self) - len(self._tombstones)

    # ------------------------------------------------------------------ #
    # plain (uncounted) access for in-memory algorithms
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._bool_rows)

    def bool_row(self, tid: int) -> tuple:
        return self._bool_rows[tid]

    def pref_point(self, tid: int) -> tuple[float, ...]:
        return self._pref_rows[tid]

    def bool_value(self, tid: int, dim: str) -> Any:
        return self._bool_rows[tid][self.schema.boolean_position(dim)]

    def tids(self) -> range:
        return range(len(self))

    def pref_points(self) -> Iterator[tuple[int, tuple[float, ...]]]:
        """Live ``(tid, preference_point)`` pairs (R-tree loading input)."""
        return (
            (tid, point)
            for tid, point in enumerate(self._pref_rows)
            if tid not in self._tombstones
        )

    # ------------------------------------------------------------------ #
    # counted access paths
    # ------------------------------------------------------------------ #

    def heap_page_count(self) -> int:
        return len(self._page_ids)

    def scan(
        self,
        counters: IOCounters | None = None,
        category: str = BTABLE,
    ) -> Iterator[int]:
        """Full table scan: yields every *live* tid, reading each heap page
        once.  Tombstoned rows still occupy their slots (and are paid for in
        the page read) but are not yielded."""
        for page_id in self._page_ids:
            tids = self.disk.read(page_id, category, counters)
            for tid in tids:
                if tid not in self._tombstones:
                    yield tid

    def fetch(
        self,
        tid: int,
        pool: BufferPool | None = None,
        counters: IOCounters | None = None,
        category: str = DBOOL,
    ) -> tuple[tuple, tuple[float, ...]]:
        """Random access by tid: one page read, then the full row."""
        if not 0 <= tid < len(self):
            raise IndexError(f"tid {tid} out of range")
        page_id = self._page_ids[tid // self.rows_per_page]
        if pool is not None:
            pool.get(page_id, category, counters)
        else:
            self.disk.read(page_id, category, counters)
        return self._bool_rows[tid], self._pref_rows[tid]
