"""Cuboids and cells of the boolean-dimension data cube.

A *cuboid* is a group-by over a subset of boolean dimensions (cuboid ``(A)``,
cuboid ``(A, B)``, ...); a *cell* is one group (``A = a1``).  Following the
paper's experiments, P-Cube materialises the *atomic* cuboids — all
one-dimensional ones — and assembles signatures for multi-dimensional
predicates online via intersection (Section IV-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Iterator

from repro.cube.relation import Relation


@dataclass(frozen=True)
class Cell:
    """One group-by cell: ``dims[i] = values[i]`` for all i."""

    dims: tuple[str, ...]
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.values):
            raise ValueError("cell dims and values must align")
        if len(set(self.dims)) != len(self.dims):
            raise ValueError("cell repeats a dimension")

    @property
    def cell_id(self) -> str:
        """Canonical string id, e.g. ``"A=a1&B=b2"`` (B+-tree key material)."""
        return "&".join(f"{d}={v}" for d, v in zip(self.dims, self.values))

    def matches(self, relation: Relation, tid: int) -> bool:
        """Whether a tuple satisfies every conjunct of this cell."""
        return all(
            relation.bool_value(tid, dim) == value
            for dim, value in zip(self.dims, self.values)
        )

    def atoms(self) -> tuple["Cell", ...]:
        """The one-dimensional cells whose conjunction equals this cell."""
        return tuple(
            Cell((dim,), (value,)) for dim, value in zip(self.dims, self.values)
        )

    def __str__(self) -> str:
        return self.cell_id


class Cuboid:
    """A group-by over a fixed subset of boolean dimensions."""

    def __init__(self, dims: tuple[str, ...]) -> None:
        if len(set(dims)) != len(dims):
            raise ValueError("cuboid repeats a dimension")
        self.dims = tuple(dims)

    @property
    def name(self) -> str:
        return "(" + ",".join(self.dims) + ")"

    def group(
        self, relation: Relation, include_tombstoned: bool = False
    ) -> dict[Cell, list[int]]:
        """Group live tids of ``relation`` into this cuboid's cells.

        Signatures describe the queryable (live) partition, so tombstoned
        rows are skipped by default; pass ``include_tombstoned=True`` for
        storage-level audits that need every slot."""
        positions = [relation.schema.boolean_position(d) for d in self.dims]
        tids = (
            relation.tids() if include_tombstoned else relation.live_tids()
        )
        groups: dict[Cell, list[int]] = {}
        for tid in tids:
            row = relation.bool_row(tid)
            cell = Cell(self.dims, tuple(row[p] for p in positions))
            groups.setdefault(cell, []).append(tid)
        return groups

    def cell_for(self, relation: Relation, tid: int) -> Cell:
        """The cell of this cuboid that a given tuple belongs to."""
        row = relation.bool_row(tid)
        positions = [relation.schema.boolean_position(d) for d in self.dims]
        return Cell(self.dims, tuple(row[p] for p in positions))

    def __repr__(self) -> str:
        return f"Cuboid{self.name}"


def atomic_cuboids(boolean_dims: tuple[str, ...]) -> list[Cuboid]:
    """All one-dimensional cuboids — the paper's default materialisation."""
    return [Cuboid((dim,)) for dim in boolean_dims]


def cuboid_lattice(
    boolean_dims: tuple[str, ...], max_dims: int | None = None
) -> Iterator[Cuboid]:
    """All cuboids of up to ``max_dims`` dimensions (the full lattice when
    unlimited) — the minimal-cubing style partial materialisation of [19]."""
    limit = len(boolean_dims) if max_dims is None else max_dims
    for k in range(1, limit + 1):
        for dims in combinations(boolean_dims, k):
            yield Cuboid(dims)
