"""Columnar projection of a relation: contiguous numpy mirrors of the rows.

The row store (:class:`repro.cube.relation.Relation`) stays the source of
truth and keeps its counted access paths; a :class:`ColumnarProjection` is
a derived, in-memory acceleration structure the batch kernels gather from
— a contiguous float64 preference matrix, per-dimension boolean code
columns, and a liveness mask.  It never performs (or replaces) counted
page reads: call sites pay the exact same ``BTABLE``/``DBOOL`` I/O as the
scalar path and use the projection only for the per-tuple CPU work.

Lifecycle: projections are built lazily and cached per mutation stamp on
the relation (and per ``(stamp, epoch)`` on a view); any append, tombstone
or preference overwrite invalidates them.  MVCC snapshots are produced by
*patching* the base projection — slicing off rows created after the pinned
epoch, resurrecting rows tombstoned after it, and restoring preference
rows from the undo chains — so views stay cheap when churn is small.

Boolean dimensions may hold arbitrary hashable values (the paper example
uses strings).  Integer columns are stored as themselves; anything else is
dictionary-encoded per column, with query-time values mapped through the
same dictionary (an unseen value matches nothing, exactly like ``==``).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.cube.schema import Schema

_NUMERIC = (int, float, np.integer, np.floating)


def _is_int_column(values: Sequence[Any]) -> bool:
    return all(
        isinstance(v, (int, np.integer)) and not isinstance(v, bool)
        for v in values
    )


class ColumnarProjection:
    """One relation snapshot, column-major.

    Attributes:
        n: Row count of the snapshot (tids are ``0..n-1``).
        pref: ``(n, n_preference)`` float64, C-contiguous.
        codes: ``(n, n_boolean)`` int64 — raw values for integer columns,
            dictionary codes otherwise.
        encoders: Per boolean dimension, ``None`` for integer columns or
            the ``value -> code`` dictionary.
        live: ``(n,)`` bool — liveness at the snapshot.
    """

    __slots__ = ("schema", "n", "pref", "codes", "encoders", "live")

    def __init__(
        self,
        schema: Schema,
        pref: np.ndarray,
        codes: np.ndarray,
        encoders: tuple[dict[Any, int] | None, ...],
        live: np.ndarray,
    ) -> None:
        self.schema = schema
        self.n = len(pref)
        self.pref = pref
        self.codes = codes
        self.encoders = encoders
        self.live = live

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        bool_rows: Sequence[tuple],
        pref_rows: Sequence[tuple],
        dead: Sequence[int] = (),
    ) -> "ColumnarProjection":
        """Build from the row store (the lazy rebuild path)."""
        n = len(pref_rows)
        pref = np.array(pref_rows, dtype=np.float64)
        pref = pref.reshape(n, schema.n_preference)
        codes = np.empty((n, schema.n_boolean), dtype=np.int64)
        encoders: list[dict[Any, int] | None] = []
        columns = list(zip(*bool_rows)) if n else [
            () for _ in range(schema.n_boolean)
        ]
        for j in range(schema.n_boolean):
            column = columns[j]
            if _is_int_column(column):
                encoders.append(None)
                codes[:, j] = column
            else:
                mapping: dict[Any, int] = {}
                encoded = np.empty(n, dtype=np.int64)
                for i, value in enumerate(column):
                    code = mapping.get(value)
                    if code is None:
                        code = len(mapping)
                        mapping[value] = code
                    encoded[i] = code
                encoders.append(mapping)
                codes[:, j] = encoded
        live = np.ones(n, dtype=bool)
        dead_in_range = [tid for tid in dead if 0 <= tid < n]
        if dead_in_range:
            live[dead_in_range] = False
        return cls(schema, pref, codes, tuple(encoders), live)

    @classmethod
    def from_matrices(
        cls,
        schema: Schema,
        bool_matrix: np.ndarray,
        pref_matrix: np.ndarray,
    ) -> "ColumnarProjection":
        """Adopt generator output directly (no per-tuple round trip)."""
        pref = np.ascontiguousarray(pref_matrix, dtype=np.float64)
        codes = np.ascontiguousarray(bool_matrix, dtype=np.int64)
        if pref.shape != (len(pref), schema.n_preference):
            raise ValueError("preference matrix width does not match schema")
        if codes.shape != (len(pref), schema.n_boolean):
            raise ValueError("boolean matrix width does not match schema")
        encoders = (None,) * schema.n_boolean
        live = np.ones(len(pref), dtype=bool)
        return cls(schema, pref, codes, encoders, live)

    # ------------------------------------------------------------------ #
    # MVCC: snapshot at an epoch by patching the base projection
    # ------------------------------------------------------------------ #

    def snapshot(
        self,
        n: int,
        resurrect: Sequence[int] = (),
        pref_undo: Mapping[int, Sequence[float]] | None = None,
    ) -> "ColumnarProjection":
        """The projection a view pinned at an epoch sees.

        Args:
            n: Visible row-prefix length at the epoch.
            resurrect: Tids tombstoned *after* the epoch (live in the view).
            pref_undo: Preference rows overwritten after the epoch, mapped
                to the value the pinned reader resolves.
        """
        if not 0 <= n <= self.n:
            raise ValueError(f"snapshot length {n} outside [0, {self.n}]")
        pref = self.pref[:n]
        undo = {
            tid: row
            for tid, row in (pref_undo or {}).items()
            if 0 <= tid < n
        }
        if undo:
            pref = pref.copy()
            for tid, row in undo.items():
                pref[tid] = row
        live = self.live[:n].copy()
        back = [tid for tid in resurrect if 0 <= tid < n]
        if back:
            live[back] = True
        return ColumnarProjection(
            self.schema, pref, self.codes[:n], self.encoders, live
        )

    # ------------------------------------------------------------------ #
    # batch accessors
    # ------------------------------------------------------------------ #

    def encode(self, position: int, value: Any) -> int | None:
        """The code a query value compares against (``None`` = no match)."""
        encoder = self.encoders[position]
        if encoder is not None:
            return encoder.get(value)
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, _NUMERIC):
            as_int = int(value)
            return as_int if as_int == value else None
        return None

    def match_mask(self, conjuncts: Mapping[str, Any]) -> np.ndarray:
        """Rows satisfying every conjunct (liveness *not* applied)."""
        mask = np.ones(self.n, dtype=bool)
        for dim, value in conjuncts.items():
            position = self.schema.boolean_position(dim)
            code = self.encode(position, value)
            if code is None:
                mask = np.zeros(self.n, dtype=bool)
                break
            mask &= self.codes[:, position] == code
        return mask

    def pref_rows(self, tids: Sequence[int]) -> list[tuple[float, ...]]:
        """Gather preference points for a block of tids (exact floats)."""
        if len(tids) == 0:
            return []
        return [tuple(row) for row in self.pref_block(tids).tolist()]

    def pref_block(self, tids: Sequence[int]) -> np.ndarray:
        """Gather preference rows as a float64 matrix.

        The no-copy-back sibling of :meth:`pref_rows`: batch kernels take
        the matrix directly (same float64 bits, no per-row tuples), so a
        gather feeding ``score_block`` never round-trips through Python
        objects.
        """
        ids = (
            tids
            if isinstance(tids, np.ndarray)
            else np.asarray(tids, dtype=np.int64)
        )
        return self.pref[ids]
