"""Relations and the data-cube model.

The paper's setting (Section III): a relation ``R`` with boolean dimensions
``A1..Ab`` and preference dimensions ``N1..Np``; a data cube over the boolean
dimensions whose cells (e.g. ``type = sedan``) select subsets of ``R``.
P-Cube attaches a signature *measure* to each cell of the materialised
cuboids — by default only the *atomic* (one-dimensional) cuboids, as in the
paper's experiments.
"""

from repro.cube.schema import Schema
from repro.cube.relation import Relation
from repro.cube.cuboid import Cell, Cuboid, atomic_cuboids, cuboid_lattice

__all__ = [
    "Cell",
    "Cuboid",
    "Relation",
    "Schema",
    "atomic_cuboids",
    "cuboid_lattice",
]
