"""Backup / point-in-time-restore CLI: ``python -m repro.backup``.

The simulator's disk lives in process memory, so — as with every other
CLI here — each invocation deterministically rebuilds its scenario from a
seed: a synthetic system, a base checkpoint taken right after build, then a
seeded maintenance workload with a checkpoint every ``--checkpoint-every``
operations.  What the subcommands then do against that disk image is the
real durability machinery (:mod:`repro.core.checkpoint`), exercised
end-to-end:

* ``create`` — runs the scenario and reports the checkpoints created plus
  the WAL archive's segment catalog;
* ``list`` — same scenario, prints the checkpoint catalog (what restore
  would see on the disk);
* ``restore [--to-lsn N]`` — restores from the disk image (newest usable
  checkpoint + committed WAL window), then *verifies* the restored system:
  answers are compared byte-for-byte against a reference system built by
  replaying the recorded operation history up to the same LSN.  Exit 0
  when identical, 1 on mismatch.

Because every operation's commit LSN is recorded as the workload runs,
``--to-lsn`` can name any historical commit point and the verification
proves the restored system equals the system *as of that commit* — the
point-in-time contract.

Examples::

    PYTHONPATH=src python -m repro.backup create
    PYTHONPATH=src python -m repro.backup list --json
    PYTHONPATH=src python -m repro.backup restore --to-lsn 40
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    restore_system,
)
from repro.data.synthetic import SyntheticConfig, generate_relation
from repro.data.workload import sample_linear_function, sample_predicate
from repro.storage.disk import SimulatedDisk
from repro.system import PCubeSystem, build_system


@dataclass
class RecordedOp:
    """One workload operation, concrete enough to re-apply exactly."""

    kind: str
    args: tuple
    commit_lsn: int


@dataclass
class Scenario:
    """The deterministic disk image a seeded invocation produces."""

    system: PCubeSystem
    manager: CheckpointManager
    history: list[RecordedOp]
    checkpoints: list


def _apply(system: PCubeSystem, kind: str, args: tuple) -> None:
    if kind == "insert":
        system.insert(*args)
    elif kind == "insert_batch":
        system.insert_batch(list(args[0]))
    elif kind == "delete":
        system.delete(args[0])
    else:
        system.update(*args)


def _record_workload(
    system: PCubeSystem, rng: random.Random, n_ops: int
) -> list[RecordedOp]:
    """The audit CLI's mixed workload, with every operation's concrete
    arguments and commit LSN recorded for later exact re-application."""
    relation = system.relation
    n_pref = relation.schema.n_preference
    history: list[RecordedOp] = []

    def random_row():
        template = rng.randrange(len(relation))
        return (
            relation.bool_row(template),
            tuple(rng.random() for _ in range(n_pref)),
        )

    for _ in range(n_ops):
        live = [tid for tid in relation.live_tids()]
        kind = rng.choice(("insert", "insert_batch", "delete", "update"))
        if kind == "insert":
            args: tuple = random_row()
        elif kind == "insert_batch":
            args = ([random_row() for _ in range(rng.randrange(2, 6))],)
        elif kind == "delete" and len(live) > 10:
            args = (rng.choice(live),)
        else:
            kind = "update"
            args = (
                rng.choice(live),
                tuple(rng.random() for _ in range(n_pref)),
            )
        _apply(system, kind, args)
        history.append(RecordedOp(kind, args, system.wal.last_commit_lsn))
    return history


def build_scenario(args: argparse.Namespace) -> Scenario:
    rng = random.Random(args.seed)
    config = SyntheticConfig(
        n_tuples=args.tuples, n_boolean=2, n_preference=2, seed=args.seed
    )
    system = build_system(
        generate_relation(config, disk=SimulatedDisk()),
        fanout=args.fanout,
        wal_segment_bytes=args.segment_bytes,
    )
    manager = CheckpointManager(system)
    checkpoints = [manager.create()]  # the base image restore needs
    history: list[RecordedOp] = []
    remaining = args.ops
    while remaining > 0:
        step = min(args.checkpoint_every, remaining)
        history.extend(_record_workload(system, rng, step))
        remaining -= step
        checkpoints.append(manager.create())
    return Scenario(system, manager, history, checkpoints)


def _reference_system(
    args: argparse.Namespace, history: list[RecordedOp], to_lsn: int | None
) -> PCubeSystem:
    """The system as of ``to_lsn``, built by replaying the recorded
    history on a fresh disk — ground truth for restore verification."""
    config = SyntheticConfig(
        n_tuples=args.tuples, n_boolean=2, n_preference=2, seed=args.seed
    )
    system = build_system(
        generate_relation(config, disk=SimulatedDisk()), fanout=args.fanout
    )
    for op in history:
        if to_lsn is not None and op.commit_lsn > to_lsn:
            break
        _apply(system, op.kind, op.args)
    return system


def answer_fingerprint(system: PCubeSystem, seed: int = 99) -> list:
    """Query answers under sampled predicates — the byte-identity probe
    shared with the crash-recovery tests."""
    rng = random.Random(seed)
    fn = sample_linear_function(system.relation.schema.n_preference, rng)
    out = []
    for n_conjuncts in (1, 2):
        predicate = sample_predicate(system.relation, n_conjuncts, rng)
        sky = system.engine.skyline(predicate)
        topk = system.engine.topk(fn, 5, predicate)
        out.append((sky.tids, topk.tids, topk.scores))
    return out


def _catalog_json(scenario: Scenario) -> list[dict[str, Any]]:
    return [
        {
            "checkpoint_id": info.checkpoint_id,
            "epoch": info.epoch,
            "watermark_lsn": info.watermark_lsn,
            "n_rows": info.n_rows,
            "n_tombstones": info.n_tombstones,
            "row_pages": len(info.row_pages),
        }
        for info in scenario.manager.catalog()
    ]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backup",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "command", choices=("create", "list", "restore"),
    )
    parser.add_argument("--tuples", type=int, default=120)
    parser.add_argument("--ops", type=int, default=24)
    parser.add_argument("--seed", type=int, default=20080401)
    parser.add_argument("--fanout", type=int, default=6)
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="take a checkpoint every N workload operations (default: 8)",
    )
    parser.add_argument(
        "--segment-bytes",
        type=int,
        default=1024,
        help="WAL segment-rotation threshold (small by default so the "
        "scenario actually exercises the sealed archive)",
    )
    parser.add_argument(
        "--to-lsn",
        type=int,
        default=None,
        metavar="LSN",
        help="restore: target commit LSN (default: latest state)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    if args.checkpoint_every < 1:
        parser.error("--checkpoint-every must be >= 1")

    scenario = build_scenario(args)
    out: dict[str, Any] = {
        "command": args.command,
        "seed": args.seed,
        "ops": len(scenario.history),
        "last_commit_lsn": scenario.system.wal.last_commit_lsn,
        "checkpoints": _catalog_json(scenario),
    }

    if args.command in ("create", "list"):
        if args.command == "create":
            out["segments"] = [
                {
                    "segment": info.segment,
                    "records": info.records,
                    "first_lsn": info.first_lsn,
                    "last_lsn": info.last_lsn,
                    "sealed": info.sealed,
                }
                for info in scenario.system.wal.segments()
            ]
        _emit(out, args.json)
        return 0

    try:
        result = restore_system(scenario.system.disk, to_lsn=args.to_lsn)
    except CheckpointError as exc:
        out["status"] = "failed"
        out["error"] = str(exc)
        _emit(out, args.json)
        return 1
    reference = _reference_system(args, scenario.history, args.to_lsn)
    verified = answer_fingerprint(result.system) == answer_fingerprint(
        reference
    )
    out.update(
        {
            "restored_from_checkpoint": result.checkpoint.checkpoint_id,
            "watermark_lsn": result.checkpoint.watermark_lsn,
            "to_lsn": args.to_lsn,
            "ops_replayed": result.ops_replayed,
            "row_pages_read": result.row_pages_read,
            "fallbacks": result.fallbacks,
            "wal_metrics": result.wal_metrics,
            "status": "verified" if verified else "mismatch",
        }
    )
    _emit(out, args.json)
    return 0 if verified else 1


def _emit(out: dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return
    print(
        f"{out['command']}: {out['ops']} ops journalled, last commit lsn "
        f"{out['last_commit_lsn']}"
    )
    for info in out["checkpoints"]:
        print(
            f"  checkpoint {info['checkpoint_id']}: watermark lsn "
            f"{info['watermark_lsn']}, {info['n_rows']} rows "
            f"({info['n_tombstones']} tombstoned), "
            f"{info['row_pages']} row pages"
        )
    for info in out.get("segments", []):
        state = "sealed" if info["sealed"] else "active"
        print(
            f"  segment {info['segment']} [{state}]: "
            f"lsn {info['first_lsn']}..{info['last_lsn']} "
            f"({info['records']} records)"
        )
    if "status" in out and out["command"] == "restore":
        target = (
            "latest" if out["to_lsn"] is None else f"lsn {out['to_lsn']}"
        )
        print(
            f"  restored {target} from checkpoint "
            f"{out.get('restored_from_checkpoint')}: "
            f"{out.get('ops_replayed')} ops replayed, "
            f"{out['wal_metrics'].get('segments_skipped', 0)} segments "
            f"skipped -> {out['status']}"
        )


if __name__ == "__main__":
    sys.exit(main())
