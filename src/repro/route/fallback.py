"""The ordered fallback chain: try engines until one answers.

The router never *needs* a particular engine — every strategy in
:mod:`repro.route.engines` returns exact answers — so a strategy that
cannot serve a query (:class:`StrategyUnsupported`), faults on storage
(:class:`~repro.storage.errors.StorageFault`) or exceeds its slice of the
deadline (:class:`StrategyTimeout`) simply hands the query to the next
engine in the chain.  What cannot be retried is a lapsed *overall*
deadline or a cancellation: those abort the query exactly as they would
without routing.

Deadline slicing: a session with ``deadline_at`` set gives each attempt an
equal share of the *remaining* budget (``remaining / engines left``), so
one pathological engine cannot starve the rest of the chain.  The last
engine always gets everything that is left.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.storage.errors import StorageFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.session import QueryResult, QuerySession
    from repro.route.engines import EngineContext, RouteRequest


class StrategyUnsupported(Exception):
    """The strategy cannot answer this query shape (e.g. index-merge on a
    skyline, or B+-tree postings stale for the snapshot's rows)."""

    def __init__(self, strategy: str, reason: str) -> None:
        super().__init__(f"{strategy}: {reason}")
        self.strategy = strategy
        self.reason = reason


class StrategyTimeout(Exception):
    """One attempt exceeded its *slice* of the deadline budget.

    Internal to the fallback chain: raised by the per-attempt ticker while
    the overall deadline still has budget, so the chain moves on; a lapsed
    overall deadline raises the executor's ``QueryTimeout`` instead and is
    never swallowed here.
    """

    def __init__(self, strategy: str) -> None:
        super().__init__(f"{strategy}: attempt exceeded its deadline slice")
        self.strategy = strategy


class FallbackExecutor:
    """Run a query down an ordered engine chain until one answers.

    Args:
        engines: Strategy name → adapter callable
            ``(session, request, ctx) -> QueryResult`` (see
            :data:`repro.route.engines.ENGINES`).
    """

    def __init__(self, engines: dict[str, Callable]) -> None:
        self.engines = engines

    def execute(
        self,
        chain: list[str],
        session: "QuerySession",
        request: "RouteRequest",
        ctx: "EngineContext",
    ) -> tuple["QueryResult", list[tuple[str, Exception]]]:
        """Returns ``(result, failed_attempts)``.

        ``failed_attempts`` lists ``(strategy, error)`` for every engine
        tried before the one that answered.  Exhausting the chain re-raises
        the last error; an empty chain raises :class:`StrategyUnsupported`.
        """
        from repro.serve.executor import QueryCancelled, QueryTimeout

        if not chain:
            raise StrategyUnsupported(
                "router", f"no engine supports this {request.kind} query"
            )
        failures: list[tuple[str, Exception]] = []
        base_ticker = session.ticker
        deadline_at = session.deadline_at
        last_error: Exception | None = None
        try:
            for position, name in enumerate(chain):
                now = time.perf_counter()
                if deadline_at is not None and now > deadline_at:
                    raise QueryTimeout(
                        f"{request.kind} query exceeded its deadline "
                        f"(after {len(failures)} fallback attempt(s))"
                    )
                remaining_engines = len(chain) - position
                attempt_deadline = deadline_at
                if deadline_at is not None and remaining_engines > 1:
                    attempt_deadline = (
                        now + (deadline_at - now) / remaining_engines
                    )
                session.ticker = self._attempt_ticker(
                    name, base_ticker, attempt_deadline, deadline_at
                )
                try:
                    result = self.engines[name](session, request, ctx)
                except StrategyUnsupported as exc:
                    failures.append((name, exc))
                    last_error = exc
                except StrategyTimeout as exc:
                    failures.append((name, exc))
                    last_error = exc
                except StorageFault as exc:
                    failures.append((name, exc))
                    last_error = exc
                except (QueryTimeout, QueryCancelled):
                    raise  # the overall budget/caller aborted: no fallback
                else:
                    result.stats.route = name
                    result.stats.fallbacks = len(failures)
                    return result, failures
            assert last_error is not None
            raise last_error
        finally:
            session.ticker = base_ticker

    @staticmethod
    def _attempt_ticker(
        strategy: str,
        base_ticker: Callable[[], None] | None,
        attempt_deadline: float | None,
        overall_deadline: float | None,
    ) -> Callable[[], None]:
        """Compose the session ticker with this attempt's deadline slice.

        The base ticker runs first: it owns cancellation and the overall
        deadline, and those must win over a mere slice expiry.
        """

        def tick() -> None:
            if base_ticker is not None:
                base_ticker()
            if (
                attempt_deadline is not None
                and attempt_deadline != overall_deadline
                and time.perf_counter() > attempt_deadline
            ):
                raise StrategyTimeout(strategy)

        return tick
