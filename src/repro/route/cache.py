"""The epoch-keyed result cache (and the assembled-signature memo).

Soundness rests on one fact from the epoch design (DESIGN.md §8): a
snapshot's contents are immutable and fully determined by its epoch, and
every maintenance commit publishes a *new* epoch.  Keying every entry by
``(epoch, kind, cell, pref-subspace, digest)`` therefore makes staleness
structurally impossible — a query at epoch E can only ever see entries
computed at epoch E, and an epoch publish (however small its touched cell
set) simply shifts traffic to keys no writer has ever populated.  Explicit
invalidation (:meth:`ResultCache.on_epoch`) is purely a memory-reclamation
concern: dropping entries below the newest observed epoch bounds the cache
to live traffic.

Two further rules keep cached serving byte-identical to computed serving:

* only *canonicalised* answers are stored (the router sorts every answer
  into a strategy-independent order before caching), so a warm hit returns
  the same bytes as the cold run that populated it;
* lookups are bypassed — not merely missed — while the breaker board has
  a breaker open on any cell of the predicate: an open breaker means the
  cell's storage is suspect and the next answer should re-exercise (and
  possibly heal) the real path rather than mask it.

Live sessions (``epoch is None``) are never cached: without an epoch there
is no invalidation token, and a mutable relation could serve stale bytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.query.predicates import BooleanPredicate

#: Key component for the empty predicate (the apex "cell").
APEX = "φ"


@dataclass(frozen=True)
class CachedAnswer:
    """One canonicalised answer: the tids/scores bytes plus provenance."""

    tids: tuple[int, ...]
    scores: tuple[float, ...] | None
    strategy: str
    tier: str | None


def result_key(
    kind: str,
    predicate: BooleanPredicate,
    preference_by: tuple[str, ...] | None,
    fn,
    k: int | None,
    epoch: int,
) -> tuple:
    """The ``(epoch, kind, cell, pref-subspace, digest)`` cache key.

    The digest folds in everything else that determines the answer bytes:
    the full conjunction (the cell id alone collapses distinct multi-dim
    predicates), the ranking function's parameters (via its ``repr``) and
    ``k``.
    """
    cell = APEX if predicate.is_empty() else predicate.cell().cell_id
    pref = ",".join(preference_by) if preference_by else "*"
    digest = f"{predicate!r}|{fn!r}|k={k}"
    return (epoch, kind, cell, pref, digest)


class ResultCache:
    """A thread-safe LRU of canonicalised skyline/top-k answers.

    Also hosts the *signature memo*: assembled multi-cell signatures
    (the eager-assembly intersection product) keyed ``(cells, epoch)``,
    so repeated popular-cell traffic skips the intersection work.  The
    memo is only populated from queries that already paid the assembly
    I/O — consulting it never changes a cache-cold query's counters.
    """

    def __init__(
        self, capacity: int = 512, signature_capacity: int = 64
    ) -> None:
        if capacity < 1 or signature_capacity < 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.signature_capacity = signature_capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CachedAnswer]" = OrderedDict()
        self._signatures: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bypassed = 0
        self.invalidated = 0
        self.evicted = 0
        self.signature_hits = 0
        self.signature_misses = 0

    # -- results -------------------------------------------------------- #

    def get(self, key: tuple) -> CachedAnswer | None:
        with self._lock:
            answer = self._entries.get(key)
            if answer is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return answer

    def put(self, key: tuple, answer: CachedAnswer) -> None:
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1

    def note_bypass(self) -> None:
        with self._lock:
            self.bypassed += 1

    # -- the signature memo --------------------------------------------- #

    def get_signature(self, cells: tuple[str, ...], epoch: int):
        if self.signature_capacity == 0:
            return None
        with self._lock:
            key = (epoch, cells)
            signature = self._signatures.get(key)
            if signature is None:
                self.signature_misses += 1
                return None
            self._signatures.move_to_end(key)
            self.signature_hits += 1
            return signature

    def put_signature(
        self, cells: tuple[str, ...], epoch: int, signature
    ) -> None:
        if self.signature_capacity == 0:
            return
        with self._lock:
            key = (epoch, cells)
            self._signatures[key] = signature
            self._signatures.move_to_end(key)
            while len(self._signatures) > self.signature_capacity:
                self._signatures.popitem(last=False)

    # -- invalidation --------------------------------------------------- #

    def on_epoch(self, epoch: int) -> int:
        """Drop every entry from epochs older than ``epoch``.

        Correctness never needs this (stale epochs are unreachable keys);
        it reclaims the memory dead epochs pin.  Returns entries dropped.
        """
        with self._lock:
            dead = [key for key in self._entries if key[0] < epoch]
            for key in dead:
                del self._entries[key]
            dead_signatures = [
                key for key in self._signatures if key[0] < epoch
            ]
            for key in dead_signatures:
                del self._signatures[key]
            self.invalidated += len(dead) + len(dead_signatures)
            return len(dead) + len(dead_signatures)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "bypassed": self.bypassed,
                "invalidated": self.invalidated,
                "evicted": self.evicted,
                "signature_entries": len(self._signatures),
                "signature_hits": self.signature_hits,
                "signature_misses": self.signature_misses,
            }
