"""The five engines, behind one adapter interface.

Each adapter is ``(session, request, ctx) -> QueryResult`` and must either
answer exactly or raise :class:`~repro.route.fallback.StrategyUnsupported`
when the query shape is outside its contract.  The contracts:

* ``signature`` — Algorithm 1 with P-Cube boolean pruning, via the
  session's own signature path (tiers 1–2 of the PR-5 degradation chain
  included).  Supports every query shape.
* ``boolean-first`` — the Section VI-A baseline: B+-tree/table-scan
  selection, then the preference step in memory.  Uses the live B+-trees
  when their postings still cover the snapshot's rows, else the session's
  index-free scan path; always exact.
* ``domination-first`` — BBS + minimal probing (*Ranking* for top-k).
  No preference-subspace support (the baseline searches full space).
* ``index-merge`` — the [14] baseline: top-k only, and only while the
  B+-tree postings cover the snapshot (postings are built once and never
  maintained; a snapshot containing later inserts would silently lose
  answers, so staleness is *unsupported*, never silently wrong).
* ``naive`` — the ground-truth scan; supports everything, always last.

Answers are canonicalised (:func:`canonicalize`) before the router caches
or returns them: skylines as ascending tids, top-k sorted by
``(score, tid)``.  Canonical order is what makes "byte-identical
regardless of route" a checkable property — every engine legitimately
differs in *reporting* order, never in the answer set/scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
)
from repro.baselines.domination_first import (
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.query.algorithm1 import SearchState
from repro.query.predicates import BooleanPredicate
from repro.query.session import QueryResult, QuerySession
from repro.query.stats import QueryStats
from repro.route.fallback import StrategyUnsupported
from repro.storage.counters import BTABLE

#: Engine names, in default preference order (naive always last).
SIGNATURE = "signature"
BOOLEAN_FIRST = "boolean-first"
DOMINATION_FIRST = "domination-first"
INDEX_MERGE = "index-merge"
NAIVE = "naive"
STRATEGY_ORDER = (
    SIGNATURE,
    BOOLEAN_FIRST,
    DOMINATION_FIRST,
    INDEX_MERGE,
    NAIVE,
)


@dataclass(frozen=True)
class RouteRequest:
    """One query, as the router sees it."""

    kind: str  # "skyline" | "topk"
    predicate: BooleanPredicate
    fn: object | None = None
    k: int | None = None
    preference_by: tuple[str, ...] | None = None
    tracer: object | None = None


@dataclass
class EngineContext:
    """What the adapters need beyond the session: the live B+-trees.

    ``indexes_rows`` is the relation row count the postings were built
    over; any snapshot whose relation extends past it holds rows the
    postings have never seen, making index-backed plans unsound.
    """

    indexes: dict = field(default_factory=dict)
    indexes_rows: int = 0

    def indexes_cover(self, relation) -> bool:
        return bool(self.indexes) and len(relation) <= self.indexes_rows


def supports(
    strategy: str, kind: str, preference_by, ctx: EngineContext, relation
) -> bool:
    """Static support check (used to build chains; adapters re-verify)."""
    if kind not in ("skyline", "topk"):
        return strategy == SIGNATURE
    if strategy == INDEX_MERGE:
        return kind == "topk" and ctx.indexes_cover(relation)
    if strategy == DOMINATION_FIRST:
        return preference_by is None
    return True


def canonicalize(result: QueryResult) -> QueryResult:
    """Sort the answer into a strategy-independent order, in place."""
    if result.kind == "skyline":
        result.tids = sorted(result.tids)
    elif result.scores is not None:
        pairs = sorted(zip(result.scores, result.tids))
        result.tids = [tid for _, tid in pairs]
        result.scores = [score for score, _ in pairs]
    return result


def _subspace(session: QuerySession, preference_by) -> tuple[int, ...] | None:
    if preference_by is None:
        return None
    return tuple(
        session.relation.schema.preference_position(name)
        for name in preference_by
    )


def _wrap(
    session: QuerySession,
    request: RouteRequest,
    tids: list[int],
    scores: list[float] | None,
    stats: QueryStats,
    tier: str,
) -> QueryResult:
    stats.epoch = session.epoch
    stats.tier = tier
    stats.results = len(tids)
    return QueryResult(
        kind=request.kind,
        predicate=request.predicate,
        tids=tids,
        scores=scores,
        stats=stats,
        state=SearchState(),
        fn=request.fn,
        k=request.k,
        preference_by=request.preference_by,
        resumable=False,  # no Lemma 2 lists: drill-down must re-run
    )


# --------------------------------------------------------------------- #
# adapters
# --------------------------------------------------------------------- #


def run_signature(
    session: QuerySession, request: RouteRequest, ctx: EngineContext
) -> QueryResult:
    """The session's own signature path — Algorithm 1 with P-Cube bits."""
    if request.kind == "skyline":
        return session.skyline(
            request.predicate,
            preference_by=request.preference_by,
            tracer=request.tracer,
        )
    return session.topk(
        request.fn, request.k, request.predicate, tracer=request.tracer
    )


def run_boolean_first(
    session: QuerySession, request: RouteRequest, ctx: EngineContext
) -> QueryResult:
    """Boolean selection first, preference step in memory."""
    if (
        ctx.indexes_cover(session.relation)
        and request.preference_by is None
    ):
        if request.kind == "skyline":
            tids, stats = boolean_first_skyline(
                session.relation,
                ctx.indexes,
                request.predicate,
                ticker=session.ticker,
            )
            return _wrap(session, request, tids, None, stats, BOOLEAN_FIRST)
        ranked, stats = boolean_first_topk(
            session.relation,
            ctx.indexes,
            request.fn,
            request.k,
            request.predicate,
            ticker=session.ticker,
        )
        tids = [tid for tid, _ in ranked]
        scores = [score for _, score in ranked]
        return _wrap(session, request, tids, scores, stats, BOOLEAN_FIRST)
    # No (usable) indexes: the session's exact index-free scan path.  This
    # is a routed *choice* here, not a degradation, so the degraded flag
    # the tier-3 fallback stamps is cleared.
    result = session._run_boolean_first(
        request.kind,
        request.predicate,
        fn=request.fn,
        k=request.k,
        preference_by=request.preference_by,
        tracer=request.tracer,
    )
    result.stats.degraded = False
    result.resumable = False
    return result


def run_domination_first(
    session: QuerySession, request: RouteRequest, ctx: EngineContext
) -> QueryResult:
    """BBS + minimal probing (the paper's Domination/Ranking baseline)."""
    if request.preference_by is not None:
        raise StrategyUnsupported(
            DOMINATION_FIRST, "no preference-subspace support"
        )
    pool = session._query_pool()
    if request.kind == "skyline":
        tids, stats, _ = domination_first_skyline(
            session.relation,
            session.rtree,
            request.predicate,
            pool=pool,
            ticker=session.ticker,
        )
        session._finish_pool(pool, stats)
        return _wrap(session, request, tids, None, stats, DOMINATION_FIRST)
    ranked, stats, _ = ranking_topk(
        session.relation,
        session.rtree,
        request.fn,
        request.k,
        request.predicate,
        pool=pool,
        ticker=session.ticker,
    )
    session._finish_pool(pool, stats)
    tids = [tid for tid, _ in ranked]
    scores = [score for _, score in ranked]
    return _wrap(session, request, tids, scores, stats, DOMINATION_FIRST)


def run_index_merge(
    session: QuerySession, request: RouteRequest, ctx: EngineContext
) -> QueryResult:
    """Progressive + selective index-merge — top-k with fresh postings only."""
    if request.kind != "topk":
        raise StrategyUnsupported(INDEX_MERGE, "answers top-k queries only")
    if not ctx.indexes_cover(session.relation):
        raise StrategyUnsupported(
            INDEX_MERGE,
            "B+-tree postings do not cover this snapshot's rows",
        )
    pool = session._query_pool()
    ranked, stats = index_merge_topk(
        session.relation,
        session.rtree,
        ctx.indexes,
        request.fn,
        request.k,
        request.predicate,
        pool=pool,
        ticker=session.ticker,
    )
    session._finish_pool(pool, stats)
    tids = [tid for tid, _ in ranked]
    scores = [score for _, score in ranked]
    return _wrap(session, request, tids, scores, stats, INDEX_MERGE)


def run_naive(
    session: QuerySession, request: RouteRequest, ctx: EngineContext
) -> QueryResult:
    """Ground truth: counted scan, literal domination / full sort."""
    stats = QueryStats()
    predicate = request.predicate
    empty = predicate.is_empty()
    candidates: list[tuple[int, tuple]] = []
    for tid in session.relation.scan(stats.counters, BTABLE):
        if session.ticker is not None:
            session.ticker()
        if empty or predicate.matches(session.relation, tid):
            candidates.append((tid, session.relation.pref_point(tid)))
    stats.note_heap(len(candidates))
    if request.kind == "skyline":
        subspace = _subspace(session, request.preference_by)
        if subspace is not None:
            candidates = [
                (tid, tuple(point[d] for d in subspace))
                for tid, point in candidates
            ]
        tids = naive_skyline(candidates)
        return _wrap(session, request, tids, None, stats, NAIVE)
    ranked = naive_topk(candidates, request.fn, request.k)
    tids = [tid for tid, _ in ranked]
    scores = [score for _, score in ranked]
    return _wrap(session, request, tids, scores, stats, NAIVE)


ENGINES = {
    SIGNATURE: run_signature,
    BOOLEAN_FIRST: run_boolean_first,
    DOMINATION_FIRST: run_domination_first,
    INDEX_MERGE: run_index_merge,
    NAIVE: run_naive,
}
