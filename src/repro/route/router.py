"""The adaptive query router: per-query engine choice + result cache.

The ROADMAP's "no single access method wins everywhere" item, made
concrete.  For every skyline/top-k query the router:

1. refreshes :class:`~repro.route.stats.PredicateStats` if the session's
   epoch is new (an epoch publish is a maintenance commit — the one event
   that can change selectivities), and reclaims dead-epoch cache entries;
2. consults the :class:`~repro.route.cache.ResultCache` — unless the
   breaker board has a breaker open on any of the predicate's cells, in
   which case the lookup is *bypassed* so traffic keeps exercising (and
   healing) the real path;
3. builds an ordered engine chain: supported engines sorted by predicted
   cost — the :class:`~repro.route.stats.CostBook` EWMA of observed
   counted I/O where available, deterministic optimizer-style priors
   otherwise — with naive always last;
4. runs the chain through the
   :class:`~repro.route.fallback.FallbackExecutor` (unsupported shapes,
   storage faults and per-attempt deadline slices fall through; overall
   deadline/cancellation abort);
5. canonicalises the answer, feeds the observed cost back into the book,
   and caches the canonical bytes under the epoch-keyed key.

Every engine is exact, so the router's contract is strong: *the answer is
byte-identical to naive regardless of the route taken* — the differential
harness asserts precisely this for forced strategies, forced fallbacks and
cache-warm/cold replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.query.predicates import BooleanPredicate
from repro.query.session import QueryResult, QuerySession
from repro.query.stats import QueryStats
from repro.route.cache import CachedAnswer, ResultCache, result_key
from repro.route.engines import (
    ENGINES,
    NAIVE,
    STRATEGY_ORDER,
    EngineContext,
    RouteRequest,
    canonicalize,
    supports,
)
from repro.route.fallback import FallbackExecutor, StrategyUnsupported
from repro.route.stats import (
    CostBook,
    PredicateStats,
    RouterStats,
    candidate_bucket,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.algorithm1 import SearchState  # noqa: F401
    from repro.serve.resilience import BreakerBoard
    from repro.system import PCubeSystem


@dataclass(frozen=True)
class RoutingPolicy:
    """The router's knobs (one frozen object, shareable across threads).

    Attributes:
        cache: Enable the epoch-keyed result cache (and signature memo).
        cache_capacity / signature_cache_capacity: LRU bounds.
        forced: Pin every query to one engine — no fallback chain, an
            unsupported shape raises.  (Benchmark "pinned" series, tests.)
        forced_chain: Use exactly this chain, in order, skipping engines
            that do not support the query shape.  (Fallback-edge tests.)
        slice_deadlines: Give each attempt an equal share of the remaining
            deadline instead of letting the first engine spend it all.
        ewma_alpha: The cost book's smoothing factor.
    """

    cache: bool = True
    cache_capacity: int = 512
    signature_cache_capacity: int = 64
    forced: str | None = None
    forced_chain: tuple[str, ...] | None = None
    slice_deadlines: bool = True
    ewma_alpha: float = 0.4


class QueryRouter:
    """Chooses an engine per query; shared by all workers of an executor."""

    def __init__(
        self,
        relation,
        indexes: dict | None = None,
        indexes_rows: int = 0,
        policy: RoutingPolicy | None = None,
        breakers: "BreakerBoard | None" = None,
    ) -> None:
        self.policy = policy if policy is not None else RoutingPolicy()
        if (
            self.policy.forced is not None
            and self.policy.forced not in ENGINES
        ):
            raise ValueError(f"unknown strategy {self.policy.forced!r}")
        for name in self.policy.forced_chain or ():
            if name not in ENGINES:
                raise ValueError(f"unknown strategy {name!r}")
        self.relation = relation
        self.ctx = EngineContext(
            indexes=indexes or {}, indexes_rows=indexes_rows
        )
        self.breakers = breakers
        self.predicate_stats = PredicateStats()
        self.costs = CostBook(alpha=self.policy.ewma_alpha)
        self.cache = (
            ResultCache(
                capacity=self.policy.cache_capacity,
                signature_capacity=self.policy.signature_cache_capacity,
            )
            if self.policy.cache
            else None
        )
        self.stats = RouterStats()
        self.fallback = FallbackExecutor(ENGINES)

    @classmethod
    def for_system(
        cls,
        system: "PCubeSystem",
        policy: RoutingPolicy | None = None,
        breakers: "BreakerBoard | None" = None,
    ) -> "QueryRouter":
        return cls(
            system.relation,
            indexes=system.indexes,
            indexes_rows=system.indexes_rows,
            policy=policy,
            breakers=breakers,
        )

    # ------------------------------------------------------------------ #
    # the chain
    # ------------------------------------------------------------------ #

    def chain_for(
        self,
        kind: str,
        predicate: BooleanPredicate,
        preference_by: tuple[str, ...] | None,
        relation,
    ) -> list[str]:
        """Supported engines, cheapest-predicted first, naive last."""
        if self.policy.forced is not None:
            return [self.policy.forced]
        candidates = [
            name
            for name in (self.policy.forced_chain or STRATEGY_ORDER)
            if supports(name, kind, preference_by, self.ctx, relation)
        ]
        if self.policy.forced_chain is not None:
            return candidates
        estimate = self.predicate_stats.cardinality(predicate)
        bucket = candidate_bucket(estimate)
        priors = self._priors(predicate, estimate, relation)
        order = {name: rank for rank, name in enumerate(STRATEGY_ORDER)}

        def predicted(name: str) -> float:
            observed = self.costs.estimate(kind, name, bucket)
            return observed if observed is not None else priors[name]

        ranked = sorted(
            (name for name in candidates if name != NAIVE),
            key=lambda name: (predicted(name), order[name]),
        )
        if NAIVE in candidates:
            ranked.append(NAIVE)  # ground truth backstops every chain
        return ranked

    def _priors(
        self, predicate: BooleanPredicate, estimate: float, relation
    ) -> dict[str, float]:
        """Deterministic optimizer-style page-cost priors.

        Crude on purpose — they only seed the order until the cost book
        has observations — but shaped like the paper's regimes: very
        selective predicates favour boolean-first (few heap pages), the
        empty predicate makes domination ≈ signature (both are plain BBS),
        and any non-empty predicate makes domination-first pay minimal
        probing's per-candidate random accesses — which Figure 9 shows
        scaling with the *relation*, not the answer, because BBS surfaces
        (and probes) candidates regardless of whether they qualify.
        """
        pages = max(1, relation.heap_page_count())
        empty = predicate.is_empty()
        # Cardenas: expected distinct heap pages hit by `estimate` tids.
        touched = pages * (1.0 - (1.0 - 1.0 / pages) ** estimate)
        signature = 3.0 + 0.15 * touched
        if empty:
            boolean_first = float(pages)
            domination = signature
        else:
            boolean_first = min(
                float(pages), 3.0 + estimate / 64.0 + touched
            )
            domination = signature + 0.5 * len(relation)
        return {
            "signature": signature,
            "boolean-first": boolean_first,
            "domination-first": domination,
            "index-merge": 3.0 + estimate / 64.0 + 0.3 * touched,
            "naive": pages + 1.0,
        }

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def _breaker_bypass(self, predicate: BooleanPredicate) -> bool:
        if self.breakers is None or predicate.is_empty():
            return False
        cells = [cell.cell_id for cell in predicate.atomic_cells()]
        if len(predicate) > 1:
            cells.append(predicate.cell().cell_id)
        return any(self.breakers.cell_open(cell_id) for cell_id in cells)

    def _hit_result(
        self,
        request: RouteRequest,
        answer: CachedAnswer,
        epoch: int,
        elapsed: float,
    ) -> QueryResult:
        from repro.query.algorithm1 import SearchState

        stats = QueryStats()
        stats.epoch = epoch
        stats.route = answer.strategy
        stats.tier = answer.tier
        stats.cache_outcome = "hit"
        stats.results = len(answer.tids)
        stats.elapsed_seconds = elapsed
        return QueryResult(
            kind=request.kind,
            predicate=request.predicate,
            tids=list(answer.tids),
            scores=list(answer.scores) if answer.scores is not None else None,
            stats=stats,
            state=SearchState(),
            fn=request.fn,
            k=request.k,
            preference_by=request.preference_by,
            resumable=False,
        )

    def route(
        self,
        session: QuerySession,
        kind: str,
        predicate: BooleanPredicate | None = None,
        fn=None,
        k: int | None = None,
        preference_by: tuple[str, ...] | None = None,
        tracer=None,
    ) -> QueryResult:
        """Answer one query via the best engine (or the cache)."""
        started = time.perf_counter()
        predicate = predicate or BooleanPredicate()
        request = RouteRequest(
            kind=kind,
            predicate=predicate,
            fn=fn,
            k=k,
            preference_by=preference_by,
            tracer=tracer,
        )
        relation = session.relation
        self.predicate_stats.ensure(relation, session.epoch)

        # -- cache lookup (epoch-keyed; bypassed on open breakers) ------- #
        cache_outcome: str | None = None
        key = None
        cacheable = (
            self.cache is not None
            and session.epoch is not None
            and kind in ("skyline", "topk")
        )
        if cacheable:
            self.cache.on_epoch(session.epoch)
            if self._breaker_bypass(predicate):
                cache_outcome = "bypass"
                self.cache.note_bypass()
            else:
                key = result_key(
                    kind, predicate, preference_by, fn, k, session.epoch
                )
                answer = self.cache.get(key)
                if answer is not None:
                    self.stats.note_hit()
                    return self._hit_result(
                        request,
                        answer,
                        session.epoch,
                        time.perf_counter() - started,
                    )
                cache_outcome = "miss"
            # Let healthy eager-assembly queries reuse memoized assembled
            # signatures (bypass keeps even the memo off the path).
            session.signature_memo = (
                self.cache if cache_outcome == "miss" else None
            )

        # -- run the chain ---------------------------------------------- #
        chain = self.chain_for(kind, predicate, preference_by, relation)
        try:
            result, failures = self.fallback.execute(
                chain, session, request, self.ctx
            )
        finally:
            session.signature_memo = None
        canonicalize(result)
        result.stats.cache_outcome = cache_outcome

        # -- learn + cache ---------------------------------------------- #
        estimate = self.predicate_stats.cardinality(predicate)
        self.costs.observe(
            kind,
            result.stats.route,
            candidate_bucket(estimate),
            float(result.stats.total_io()),
        )
        self.stats.note_served(
            chain, result.stats.route, failures, cache_outcome
        )
        if key is not None:
            self.cache.put(
                key,
                CachedAnswer(
                    tids=tuple(result.tids),
                    scores=(
                        tuple(result.scores)
                        if result.scores is not None
                        else None
                    ),
                    strategy=result.stats.route,
                    tier=result.stats.tier,
                ),
            )
        return result

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """The ``--health`` view: decisions, cache state, statistics."""
        return {
            "policy": {
                "cache": self.policy.cache,
                "forced": self.policy.forced,
                "forced_chain": (
                    list(self.policy.forced_chain)
                    if self.policy.forced_chain is not None
                    else None
                ),
            },
            "routing": self.stats.snapshot(),
            "cache": self.cache.snapshot() if self.cache is not None else None,
            "predicate_stats": self.predicate_stats.snapshot(),
            "costs": self.costs.snapshot(),
        }


__all__ = ["QueryRouter", "RoutingPolicy", "StrategyUnsupported"]
