"""Routing signals: selectivity statistics, observed costs, router tallies.

:class:`PredicateStats` is the optimizer-statistics half of the routing
signal: per-dimension value histograms and derived boolean-cell
cardinalities, rebuilt lazily from the (snapshot's) relation whenever a new
epoch is observed — an epoch publish is exactly a maintenance commit, so
the histograms track the committed data without any hook into the epoch
manager.  The refresh scans with *private* counters: gathering statistics
must never show up in any query's paper-comparable disk-access counts.

:class:`CostBook` is the observed half: an EWMA of per-strategy execution
costs, bucketed by estimated candidate count (the feature the paper's
figures sweep).  Costs are *counted I/O*, not wall-clock — the same
quantity the ``repro.obs`` query spans record as their I/O delta — so the
book, and therefore every routing decision, is a deterministic function of
the workload.

Statistics influence only *which* exact engine runs; correctness never
depends on their freshness.
"""

from __future__ import annotations

import math
import threading

from repro.query.predicates import BooleanPredicate
from repro.storage.counters import BTABLE, IOCounters

#: Sentinel for "never refreshed" (distinct from live sessions' ``None``).
_UNREFRESHED = object()


class PredicateStats:
    """Per-dimension selectivity histograms over the boolean dimensions.

    Thread-safe; one instance is shared by every worker of a routed
    executor.  :meth:`ensure` refreshes at most once per observed epoch
    (or, for live sessions, per observed relation length).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, dict[object, int]] = {}
        self._rows = 0
        self._token: object = _UNREFRESHED
        self.refreshes = 0

    # -- refresh ------------------------------------------------------- #

    def ensure(self, relation, epoch: int | None) -> None:
        """Refresh if this (epoch, relation) was not seen yet.

        Epoch-bearing sessions refresh once per published epoch; live
        sessions (``epoch is None``) refresh when the relation grew.
        Either way the scan happens under the lock, so concurrent workers
        pay for at most one rebuild per epoch.
        """
        token = epoch if epoch is not None else ("live", len(relation))
        with self._lock:
            if token == self._token:
                return
            self._refresh_locked(relation)
            self._token = token

    def _refresh_locked(self, relation) -> None:
        scratch = IOCounters()  # statistics I/O never taints query counters
        histograms: dict[str, dict[object, int]] = {
            dim: {} for dim in relation.schema.boolean_dims
        }
        rows = 0
        positions = [
            (dim, relation.schema.boolean_position(dim))
            for dim in relation.schema.boolean_dims
        ]
        for tid in relation.scan(scratch, BTABLE):
            rows += 1
            row = relation.bool_row(tid)
            for dim, position in positions:
                value = row[position]
                bucket = histograms[dim]
                bucket[value] = bucket.get(value, 0) + 1
        self._histograms = histograms
        self._rows = rows
        self.refreshes += 1

    # -- estimates ------------------------------------------------------ #

    @property
    def rows(self) -> int:
        with self._lock:
            return self._rows

    def value_count(self, dim: str, value) -> int:
        """Exact live-tuple count for a one-conjunct cell."""
        with self._lock:
            return self._histograms.get(dim, {}).get(value, 0)

    def cardinality(self, predicate: BooleanPredicate) -> float:
        """Estimated qualifying tuples (exact for ≤ 1 conjunct).

        Multi-conjunct cells multiply per-dimension selectivities — the
        textbook independence assumption; good enough to rank engines.
        """
        with self._lock:
            if self._rows == 0:
                return 0.0
            estimate = float(self._rows)
            for dim, value in predicate:
                count = self._histograms.get(dim, {}).get(value, 0)
                estimate *= count / self._rows
            return estimate

    def selectivity(self, predicate: BooleanPredicate) -> float:
        """Estimated fraction of live tuples the predicate keeps."""
        rows = self.rows
        if rows == 0:
            return 0.0
        return self.cardinality(predicate) / rows

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "rows": self._rows,
                "refreshes": self.refreshes,
                "dims": {
                    dim: len(hist) for dim, hist in self._histograms.items()
                },
            }


def candidate_bucket(estimate: float) -> int:
    """Log₂ bucket of an estimated candidate count (0 for ≤ 1)."""
    return int(math.log2(estimate)) if estimate > 1 else 0


class CostBook:
    """EWMA of observed per-strategy I/O costs, by (kind, bucket).

    ``observe`` folds one finished query's counted I/O into the book;
    ``estimate`` returns the learned cost for the exact bucket, falling
    back to the nearest observed bucket of the same (kind, strategy) —
    a coarse but deterministic generalisation across sizes.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ewma: dict[tuple[str, str, int], float] = {}
        self.observations = 0

    def observe(
        self, kind: str, strategy: str, bucket: int, cost: float
    ) -> None:
        key = (kind, strategy, bucket)
        with self._lock:
            previous = self._ewma.get(key)
            self._ewma[key] = (
                cost
                if previous is None
                else previous + self.alpha * (cost - previous)
            )
            self.observations += 1

    def estimate(self, kind: str, strategy: str, bucket: int) -> float | None:
        with self._lock:
            exact = self._ewma.get((kind, strategy, bucket))
            if exact is not None:
                return exact
            nearest: tuple[int, float] | None = None
            for (
                seen_kind,
                seen_strategy,
                seen_bucket,
            ), cost in self._ewma.items():
                if seen_kind != kind or seen_strategy != strategy:
                    continue
                distance = abs(seen_bucket - bucket)
                if nearest is None or distance < nearest[0]:
                    nearest = (distance, cost)
            return nearest[1] if nearest is not None else None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "observations": self.observations,
                "entries": len(self._ewma),
            }


class RouterStats:
    """Thread-safe tallies of every routing decision (``--health`` view).

    Reconciliation invariants (asserted by the fault tests):

    * ``routed == cache_hits + sum(served_by.values())`` — every routed
      query is either a cache hit or ran on exactly one engine;
    * ``fell_back`` counts queries whose answering engine was not the
      first in their chain; ``sum(fallback_edges.values())`` counts the
      individual failed attempts (≥ ``fell_back``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.routed = 0
        self.fell_back = 0
        self.chosen: dict[str, int] = {}
        self.served_by: dict[str, int] = {}
        self.fallback_edges: dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bypassed = 0
        self.unsupported = 0
        self.strategy_faults = 0
        self.strategy_timeouts = 0

    def note_hit(self) -> None:
        with self._lock:
            self.routed += 1
            self.cache_hits += 1

    def note_served(
        self,
        chain: list[str],
        served: str,
        failures: list[tuple[str, Exception]],
        cache_outcome: str | None,
    ) -> None:
        from repro.route.fallback import StrategyTimeout, StrategyUnsupported

        with self._lock:
            self.routed += 1
            self.chosen[chain[0]] = self.chosen.get(chain[0], 0) + 1
            self.served_by[served] = self.served_by.get(served, 0) + 1
            if cache_outcome == "miss":
                self.cache_misses += 1
            elif cache_outcome == "bypass":
                self.cache_bypassed += 1
            if failures:
                self.fell_back += 1
            # Failures are the chain's prefix, in order; each one's edge
            # points at the engine tried next.
            for position, (failed, error) in enumerate(failures):
                follower = chain[position + 1]
                edge = f"{failed}->{follower}"
                self.fallback_edges[edge] = (
                    self.fallback_edges.get(edge, 0) + 1
                )
                if isinstance(error, StrategyUnsupported):
                    self.unsupported += 1
                elif isinstance(error, StrategyTimeout):
                    self.strategy_timeouts += 1
                else:
                    self.strategy_faults += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "routed": self.routed,
                "fell_back": self.fell_back,
                "chosen": dict(self.chosen),
                "served_by": dict(self.served_by),
                "fallback_edges": dict(self.fallback_edges),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_bypassed": self.cache_bypassed,
                "unsupported": self.unsupported,
                "strategy_faults": self.strategy_faults,
                "strategy_timeouts": self.strategy_timeouts,
            }
