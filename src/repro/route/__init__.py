"""Adaptive query routing: per-query engine choice, fallback, result cache.

The package answers the ROADMAP item "no single access method wins
everywhere": :class:`QueryRouter` picks among the five exact engines per
query using selectivity statistics plus observed per-strategy costs, falls
back down an ordered chain when an engine cannot serve, and memoizes
canonicalised answers in an epoch-keyed :class:`ResultCache`.  See
DESIGN.md §12.
"""

from repro.route.cache import APEX, CachedAnswer, ResultCache, result_key
from repro.route.engines import (
    BOOLEAN_FIRST,
    DOMINATION_FIRST,
    ENGINES,
    INDEX_MERGE,
    NAIVE,
    SIGNATURE,
    STRATEGY_ORDER,
    EngineContext,
    RouteRequest,
    canonicalize,
    supports,
)
from repro.route.fallback import (
    FallbackExecutor,
    StrategyTimeout,
    StrategyUnsupported,
)
from repro.route.router import QueryRouter, RoutingPolicy
from repro.route.stats import (
    CostBook,
    PredicateStats,
    RouterStats,
    candidate_bucket,
)

__all__ = [
    "APEX",
    "BOOLEAN_FIRST",
    "CachedAnswer",
    "CostBook",
    "DOMINATION_FIRST",
    "ENGINES",
    "EngineContext",
    "FallbackExecutor",
    "INDEX_MERGE",
    "NAIVE",
    "PredicateStats",
    "QueryRouter",
    "ResultCache",
    "RouteRequest",
    "RouterStats",
    "RoutingPolicy",
    "SIGNATURE",
    "STRATEGY_ORDER",
    "StrategyTimeout",
    "StrategyUnsupported",
    "candidate_bucket",
    "canonicalize",
    "result_key",
    "supports",
]
