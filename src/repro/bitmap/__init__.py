"""Bit arrays and bitmap compression.

Each node of a signature tree is a bit array over the children of the
corresponding R-tree node (paper Section IV-B.1).  Signatures are compressed
*per node* with an adaptively chosen codec — the paper's stated reasons:
large per-node compression headroom (fanout up to ~204 at 4 KB pages),
heterogeneous node characteristics, and cheap selective decompression.

Section VII additionally sketches a lossy alternative: a Bloom filter over
the SIDs whose bits are 1; :mod:`repro.bitmap.bloom` implements it.
"""

from repro.bitmap.bitarray import BitArray
from repro.bitmap.bloom import BloomFilter
from repro.bitmap.compression import (
    CODECS,
    CodecError,
    compress,
    decompress,
)

__all__ = [
    "BitArray",
    "BloomFilter",
    "CODECS",
    "CodecError",
    "compress",
    "decompress",
]
