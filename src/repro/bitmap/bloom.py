"""Bloom filters over SIDs — the lossy signature of paper Section VII.

    "We can build a bloom filter on all SID's whose corresponding entries
    are 1 in the signature. During query execution, we can load the
    compressed signature (i.e., a bloom filter), and test a SID upon that."

A Bloom signature can only produce *false positives* (claiming a cell has
data under a node when it does not), so boolean pruning stays conservative:
queries remain correct, they just read a few extra R-tree blocks.  The
ablation benchmark quantifies that trade-off.
"""

from __future__ import annotations

import math
from typing import Iterable


def optimal_parameters(n_items: int, fp_rate: float) -> tuple[int, int]:
    """Classic sizing: bits ``m`` and hash count ``k`` for a target rate."""
    if n_items <= 0:
        return 8, 1
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    m = max(8, math.ceil(-n_items * math.log(fp_rate) / (math.log(2) ** 2)))
    k = max(1, round(m / n_items * math.log(2)))
    return m, k


class BloomFilter:
    """A Bloom filter over non-negative integer keys (SIDs).

    Uses double hashing ``h1 + i * h2`` over two splits of a 64-bit mix, the
    standard Kirsch–Mitzenmacher construction.
    """

    def __init__(self, nbits: int, nhashes: int) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        if nhashes <= 0:
            raise ValueError("nhashes must be positive")
        self.nbits = nbits
        self.nhashes = nhashes
        self._mask = 0
        self.n_added = 0

    @classmethod
    def for_items(cls, items: Iterable[int], fp_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for ``items`` at the given false-positive rate."""
        keys = list(items)
        nbits, nhashes = optimal_parameters(len(keys), fp_rate)
        bloom = cls(nbits, nhashes)
        for key in keys:
            bloom.add(key)
        return bloom

    @staticmethod
    def _mix(key: int) -> tuple[int, int]:
        # splitmix64 finaliser; deterministic across runs (no PYTHONHASHSEED
        # dependence), which matters for reproducible benchmarks.
        z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z ^= z >> 31
        h1 = z & 0xFFFFFFFF
        h2 = (z >> 32) | 1  # odd, so probes cycle through all positions
        return h1, h2

    def add(self, key: int) -> None:
        """Insert a key."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        h1, h2 = self._mix(key)
        for i in range(self.nhashes):
            self._mask |= 1 << ((h1 + i * h2) % self.nbits)
        self.n_added += 1

    def might_contain(self, key: int) -> bool:
        """False means definitely absent; True means probably present."""
        if key < 0:
            return False
        h1, h2 = self._mix(key)
        return all(
            self._mask >> ((h1 + i * h2) % self.nbits) & 1
            for i in range(self.nhashes)
        )

    def __contains__(self, key: int) -> bool:
        return self.might_contain(key)

    def size_bytes(self) -> int:
        """Storage footprint of the filter body."""
        return (self.nbits + 7) // 8

    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation diagnostic)."""
        return self._mask.bit_count() / self.nbits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(nbits={self.nbits}, nhashes={self.nhashes}, "
            f"n_added={self.n_added}, fill={self.fill_ratio():.3f})"
        )
