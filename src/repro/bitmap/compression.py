"""Bitmap compression codecs.

The paper compresses the bit array of *each signature node individually*
and cites classic bitmap compression literature [17], [18].  We provide four
lossless codecs plus an adaptive wrapper that picks the smallest encoding per
node (the paper's reason (2): heterogeneous nodes want different schemes):

``raw``
    The packed bits, verbatim.  Never worse than ``8/7`` of optimal for
    dense arrays.
``sparse``
    Delta-varint coded positions of set bits — the spirit of the
    Fraenkel–Klein sparse bit-string codes [18]; excellent when few bits are
    set, the common case for selective cells.
``rle``
    Byte-aligned run-length coding of 0/1 runs (BBC-flavoured).
``wah``
    Word-Aligned Hybrid coding with 31-bit literals and run fill words.

Every encoding is framed as ``codec_id || varint(nbits) || body`` so a
compressed blob is self-describing and :func:`decompress` needs no side
information.
"""

from __future__ import annotations

from repro.bitmap.bitarray import BitArray, pack_words, unpack_words


class CodecError(ValueError):
    """Raised on malformed compressed input."""


# --------------------------------------------------------------------------- #
# varint helpers (LEB128, unsigned)
# --------------------------------------------------------------------------- #


def write_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


# --------------------------------------------------------------------------- #
# codec implementations: encode/decode bodies (nbits handled by the frame)
# --------------------------------------------------------------------------- #


def _raw_encode(bits: BitArray) -> bytes:
    return bits.to_bytes()


def _raw_decode(nbits: int, body: bytes) -> BitArray:
    expected = (nbits + 7) // 8
    if len(body) != expected:
        raise CodecError(f"raw body is {len(body)} bytes, expected {expected}")
    bits = BitArray.from_bytes(nbits, body)
    if bits.mask >> nbits:
        raise CodecError("raw body has bits beyond declared width")
    return bits


def _sparse_encode(bits: BitArray) -> bytes:
    out = bytearray()
    write_varint(bits.count(), out)
    previous = -1
    for pos in bits.positions():
        write_varint(pos - previous, out)  # gaps are >= 1, varint friendly
        previous = pos
    return bytes(out)


def _sparse_decode(nbits: int, body: bytes) -> BitArray:
    count, offset = read_varint(body, 0)
    bits = BitArray(nbits)
    position = -1
    for _ in range(count):
        gap, offset = read_varint(body, offset)
        if gap == 0:
            raise CodecError("sparse gap of zero (duplicate position)")
        position += gap
        if position >= nbits:
            raise CodecError("sparse position beyond declared width")
        bits.set(position)
    if offset != len(body):
        raise CodecError("trailing bytes after sparse body")
    return bits


def _rle_encode(bits: BitArray) -> bytes:
    # First varint carries the value of the first run (0 or 1); then run
    # lengths alternate.  An empty array encodes to the single first-bit
    # marker with no runs.
    out = bytearray()
    runs = list(bits.runs())
    first_value = runs[0][0] if runs else False
    out.append(1 if first_value else 0)
    for _, length in runs:
        write_varint(length, out)
    return bytes(out)


def _rle_decode(nbits: int, body: bytes) -> BitArray:
    if not body:
        raise CodecError("empty rle body")
    value = body[0] == 1
    if body[0] not in (0, 1):
        raise CodecError("rle first-value marker must be 0 or 1")
    bits = BitArray(nbits)
    offset = 1
    position = 0
    while offset < len(body):
        length, offset = read_varint(body, offset)
        if length == 0:
            raise CodecError("rle run of length zero")
        if position + length > nbits:
            raise CodecError("rle runs exceed declared width")
        if value:
            for pos in range(position, position + length):
                bits.set(pos)
        position += length
        value = not value
    if position != nbits:
        raise CodecError(f"rle runs cover {position} of {nbits} bits")
    return bits


_WAH_WORD = 31  # payload bits per 32-bit word


def _wah_encode(bits: BitArray) -> bytes:
    """Word-Aligned Hybrid: 32-bit words, MSB=1 marks a fill word."""
    words: list[int] = []
    mask = bits.mask
    nwords = (bits.nbits + _WAH_WORD - 1) // _WAH_WORD
    chunk_mask = (1 << _WAH_WORD) - 1

    def flush_run(value: int, length: int) -> None:
        # fill word: 1 | value-bit | 30-bit count
        while length > 0:
            take = min(length, (1 << 30) - 1)
            words.append((1 << 31) | (value << 30) | take)
            length -= take

    run_value = -1
    run_length = 0
    for i in range(nwords):
        chunk = (mask >> (i * _WAH_WORD)) & chunk_mask
        if chunk == 0 or chunk == chunk_mask:
            value = 0 if chunk == 0 else 1
            if value == run_value:
                run_length += 1
            else:
                if run_length:
                    flush_run(run_value, run_length)
                run_value, run_length = value, 1
        else:
            if run_length:
                flush_run(run_value, run_length)
                run_value, run_length = -1, 0
            words.append(chunk)  # literal: MSB = 0
    if run_length:
        flush_run(run_value, run_length)
    return pack_words(words, 4)


def _wah_decode(nbits: int, body: bytes) -> BitArray:
    if len(body) % 4:
        raise CodecError("wah body is not word aligned")
    chunk_mask = (1 << _WAH_WORD) - 1
    mask = 0
    bit_pos = 0
    for word in unpack_words(body, 4):
        if word >> 31:  # fill
            value = (word >> 30) & 1
            length = word & ((1 << 30) - 1)
            if value:
                for _ in range(length):
                    mask |= chunk_mask << bit_pos
                    bit_pos += _WAH_WORD
            else:
                bit_pos += _WAH_WORD * length
        else:
            mask |= (word & chunk_mask) << bit_pos
            bit_pos += _WAH_WORD
    expected_words = (nbits + _WAH_WORD - 1) // _WAH_WORD
    if bit_pos != expected_words * _WAH_WORD:
        raise CodecError(
            f"wah decoded {bit_pos} payload bits, expected {expected_words * _WAH_WORD}"
        )
    mask &= (1 << nbits) - 1 if nbits else 0
    return BitArray(nbits, mask)


# --------------------------------------------------------------------------- #
# framing and the adaptive wrapper
# --------------------------------------------------------------------------- #

#: codec name -> (codec id byte, encode, decode)
CODECS = {
    "raw": (0, _raw_encode, _raw_decode),
    "sparse": (1, _sparse_encode, _sparse_decode),
    "rle": (2, _rle_encode, _rle_decode),
    "wah": (3, _wah_encode, _wah_decode),
}

_BY_ID = {cid: (name, enc, dec) for name, (cid, enc, dec) in CODECS.items()}


def compress(bits: BitArray, codec: str = "adaptive") -> bytes:
    """Compress a bit array into a self-describing blob.

    ``codec="adaptive"`` encodes with every codec and keeps the smallest
    result — the per-node adaptive choice the paper argues for.
    """
    if codec == "adaptive":
        best: bytes | None = None
        for name in CODECS:
            candidate = compress(bits, name)
            if best is None or len(candidate) < len(best):
                best = candidate
        assert best is not None
        return best
    try:
        codec_id, encode, _ = CODECS[codec]
    except KeyError:
        raise CodecError(f"unknown codec {codec!r}") from None
    frame = bytearray([codec_id])
    write_varint(bits.nbits, frame)
    frame += encode(bits)
    return bytes(frame)


def decompress(blob: bytes) -> BitArray:
    """Invert :func:`compress` for any codec."""
    if not blob:
        raise CodecError("empty blob")
    try:
        _, _, decode = _BY_ID[blob[0]]
    except KeyError:
        raise CodecError(f"unknown codec id {blob[0]}") from None
    nbits, offset = read_varint(blob, 1)
    return decode(nbits, blob[offset:])


def codec_name(blob: bytes) -> str:
    """Which codec produced this blob (for ablation reporting)."""
    if not blob or blob[0] not in _BY_ID:
        raise CodecError("not a compressed bitmap blob")
    return _BY_ID[blob[0]][0]
