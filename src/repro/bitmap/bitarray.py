"""A fixed-width bit array backed by a Python integer.

Python integers give us free arbitrary width, O(1) amortised bitwise AND/OR
(the union/intersection primitives of signature assembly) and cheap popcount
via :func:`int.bit_count`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

#: Word width of the packed representation (``to_words``/``from_words``).
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def word_count(nbits: int) -> int:
    """How many 64-bit words a width of ``nbits`` packs into."""
    if nbits < 0:
        raise ValueError("nbits must be non-negative")
    return (nbits + WORD_BITS - 1) // WORD_BITS


def pack_words(words: Iterable[int], width: int) -> bytes:
    """Serialise fixed-width little-endian words (shared by the codecs)."""
    out = bytearray()
    for word in words:
        out += word.to_bytes(width, "little")
    return bytes(out)


def unpack_words(data: bytes, width: int) -> list[int]:
    """Inverse of :func:`pack_words`; rejects ragged input."""
    if width < 1:
        raise ValueError("word width must be positive")
    if len(data) % width:
        raise ValueError(
            f"{len(data)} bytes is not a multiple of the {width}-byte width"
        )
    return [
        int.from_bytes(data[i : i + width], "little")
        for i in range(0, len(data), width)
    ]


class BitArray:
    """``nbits`` addressable bits, all initially zero.

    Positions are 0-based.  Signature code maps the paper's 1-based child
    positions ``p ∈ [1, M]`` to bit index ``p - 1``.
    """

    __slots__ = ("nbits", "_mask")

    def __init__(self, nbits: int, mask: int = 0) -> None:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if mask < 0:
            raise ValueError("mask must be non-negative")
        if mask >> nbits:
            raise ValueError(f"mask has bits set beyond width {nbits}")
        self.nbits = nbits
        self._mask = mask

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_positions(cls, nbits: int, positions: Iterable[int]) -> "BitArray":
        """Build from an iterable of set-bit positions."""
        mask = 0
        for pos in positions:
            if not 0 <= pos < nbits:
                raise IndexError(f"bit {pos} out of range [0, {nbits})")
            mask |= 1 << pos
        return cls(nbits, mask)

    @classmethod
    def ones(cls, nbits: int) -> "BitArray":
        """All bits set."""
        return cls(nbits, (1 << nbits) - 1)

    def copy(self) -> "BitArray":
        return BitArray(self.nbits, self._mask)

    # ------------------------------------------------------------------ #
    # single-bit access
    # ------------------------------------------------------------------ #

    def _check(self, pos: int) -> None:
        if not 0 <= pos < self.nbits:
            raise IndexError(f"bit {pos} out of range [0, {self.nbits})")

    def get(self, pos: int) -> bool:
        """Whether bit ``pos`` is set."""
        self._check(pos)
        return bool(self._mask >> pos & 1)

    def set(self, pos: int, value: bool = True) -> None:
        """Set (default) or clear bit ``pos``."""
        self._check(pos)
        if value:
            self._mask |= 1 << pos
        else:
            self._mask &= ~(1 << pos)

    def __getitem__(self, pos: int) -> bool:
        return self.get(pos)

    def __setitem__(self, pos: int, value: bool) -> None:
        self.set(pos, value)

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #

    @property
    def mask(self) -> int:
        """The raw integer mask (read-only view)."""
        return self._mask

    def count(self) -> int:
        """Number of set bits."""
        return self._mask.bit_count()

    def any(self) -> bool:
        return self._mask != 0

    def positions(self) -> Iterator[int]:
        """Yield set-bit positions in increasing order."""
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def runs(self) -> Iterator[tuple[bool, int]]:
        """Yield maximal ``(bit_value, run_length)`` runs, low bits first."""
        if self.nbits == 0:
            return
        current = bool(self._mask & 1)
        length = 0
        for pos in range(self.nbits):
            bit = bool(self._mask >> pos & 1)
            if bit == current:
                length += 1
            else:
                yield current, length
                current, length = bit, 1
        yield current, length

    # ------------------------------------------------------------------ #
    # bitwise combination (same width required)
    # ------------------------------------------------------------------ #

    def _check_width(self, other: "BitArray") -> None:
        if self.nbits != other.nbits:
            raise ValueError(
                f"width mismatch: {self.nbits} vs {other.nbits} bits"
            )

    def __or__(self, other: "BitArray") -> "BitArray":
        self._check_width(other)
        return BitArray(self.nbits, self._mask | other._mask)

    def __and__(self, other: "BitArray") -> "BitArray":
        self._check_width(other)
        return BitArray(self.nbits, self._mask & other._mask)

    def __xor__(self, other: "BitArray") -> "BitArray":
        self._check_width(other)
        return BitArray(self.nbits, self._mask ^ other._mask)

    # ------------------------------------------------------------------ #
    # serialisation and dunder plumbing
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Little-endian packed bytes, ``ceil(nbits / 8)`` long."""
        return self._mask.to_bytes((self.nbits + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, nbits: int, data: bytes) -> "BitArray":
        mask = int.from_bytes(data, "little")
        return cls(nbits, mask)

    def to_words(self) -> tuple[int, ...]:
        """Packed little-endian 64-bit words, lowest word first.

        ``ceil(nbits / 64)`` words; the top word is zero-padded.  This is
        the interchange format of :mod:`repro.kernels.sigops`, which views
        the same layout as a uint64 numpy buffer.
        """
        mask = self._mask
        return tuple(
            (mask >> (WORD_BITS * i)) & _WORD_MASK
            for i in range(word_count(self.nbits))
        )

    @classmethod
    def from_words(cls, nbits: int, words: Sequence[int]) -> "BitArray":
        """Inverse of :meth:`to_words` (word count and padding validated)."""
        expected = word_count(nbits)
        if len(words) != expected:
            raise ValueError(
                f"width {nbits} packs into {expected} words, got {len(words)}"
            )
        mask = 0
        for i, word in enumerate(words):
            if not 0 <= word <= _WORD_MASK:
                raise ValueError(f"word {i} is not an unsigned 64-bit value")
            mask |= word << (WORD_BITS * i)
        return cls(nbits, mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self.nbits == other.nbits and self._mask == other._mask

    def __hash__(self) -> int:
        return hash((self.nbits, self._mask))

    def __len__(self) -> int:
        return self.nbits

    def __repr__(self) -> str:
        bits = "".join("1" if self.get(i) else "0" for i in range(self.nbits))
        return f"BitArray({bits!r})"
