"""One-call assembly of a complete P-Cube system.

Bundles the base relation, the shared R-tree partition template, the P-Cube
signature store, the baseline B+-tree indexes and a
:class:`~repro.query.engine.PreferenceEngine`, all over one simulated disk —
the configuration every experiment and example runs against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.boolean_first import build_boolean_indexes
from repro.btree.btree import BPlusTree
from repro.core.pcube import PCube
from repro.cube.relation import Relation
from repro.query.engine import PreferenceEngine
from repro.rtree.bulk import bulk_load
from repro.rtree.rtree import RTree, fanout_for_page
from repro.storage.disk import SimulatedDisk


@dataclass
class BuildTimings:
    """Construction wall-clock per component (Figure 5's series)."""

    rtree_seconds: float = 0.0
    pcube_seconds: float = 0.0
    btree_seconds: float = 0.0


@dataclass
class PCubeSystem:
    """A fully built system: storage, indexes, cube and engine."""

    relation: Relation
    rtree: RTree
    pcube: PCube
    indexes: dict[str, BPlusTree]
    engine: PreferenceEngine
    timings: BuildTimings = field(default_factory=BuildTimings)

    @property
    def disk(self) -> SimulatedDisk:
        return self.relation.disk

    # ------------------------------------------------------------------ #
    # space accounting (Figure 6's series)
    # ------------------------------------------------------------------ #

    def rtree_size_mb(self) -> float:
        return self.disk.size_mb("rtree")

    def pcube_size_mb(self) -> float:
        return self.disk.size_mb("pcube")

    def btree_size_mb(self) -> float:
        return self.disk.size_mb("btree")


def build_system(
    relation: Relation,
    fanout: int | None = None,
    rtree_method: str = "bulk",
    split: str = "quadratic",
    codec: str = "adaptive",
    maintainable: bool = True,
    with_indexes: bool = True,
    pool_capacity: int = 4096,
    eager_assembly: bool = False,
) -> PCubeSystem:
    """Build R-tree + P-Cube + baseline indexes over an existing relation.

    Args:
        relation: The base table (its disk hosts every structure).
        fanout: R-tree node capacity; derived from the page size and the
            preference dimensionality when omitted (paper convention).
        rtree_method: ``"bulk"`` (STR packing, fast) or ``"insert"``
            (tuple-at-a-time Guttman build — the construction cost Figure 5
            actually measures).
        split: R-tree split policy for dynamic inserts.
        codec: Bitmap codec for stored signatures.
        maintainable: Keep counted signatures for incremental updates.
        with_indexes: Also build the per-dimension B+-trees the baselines
            need (skippable when only the Signature method runs).
        pool_capacity / eager_assembly: Engine configuration.
    """
    disk = relation.disk
    dims = relation.schema.n_preference
    if fanout is None:
        fanout = fanout_for_page(disk.page_size, dims)

    timings = BuildTimings()
    started = time.perf_counter()
    if rtree_method == "bulk":
        rtree = bulk_load(
            list(relation.pref_points()),
            dims=dims,
            max_entries=fanout,
            disk=disk,
            split=split,
        )
    elif rtree_method == "insert":
        rtree = RTree(
            dims=dims, max_entries=fanout, split=split, disk=disk
        )
        for tid, point in relation.pref_points():
            rtree.insert(tid, point)
    else:
        raise ValueError(f"unknown rtree_method {rtree_method!r}")
    timings.rtree_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pcube = PCube.build(
        relation, rtree, codec=codec, maintainable=maintainable
    )
    timings.pcube_seconds = time.perf_counter() - started

    indexes: dict[str, BPlusTree] = {}
    if with_indexes:
        started = time.perf_counter()
        indexes = build_boolean_indexes(relation, disk=disk)
        timings.btree_seconds = time.perf_counter() - started

    engine = PreferenceEngine(
        relation,
        rtree,
        pcube,
        pool_capacity=pool_capacity,
        eager_assembly=eager_assembly,
    )
    return PCubeSystem(
        relation=relation,
        rtree=rtree,
        pcube=pcube,
        indexes=indexes,
        engine=engine,
        timings=timings,
    )
