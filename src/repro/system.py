"""One-call assembly of a complete P-Cube system.

Bundles the base relation, the shared R-tree partition template, the P-Cube
signature store, the baseline B+-tree indexes and a
:class:`~repro.query.engine.PreferenceEngine`, all over one simulated disk —
the configuration every experiment and example runs against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.boolean_first import build_boolean_indexes
from repro.btree.btree import BPlusTree
from repro.core import integrity, maintenance
from repro.core.epoch import EpochManager, Snapshot
from repro.core.integrity import ConsistencyReport
from repro.core.pcube import PCube
from repro.core.wal import MaintenanceWAL, PendingOp
from repro.cube.relation import Relation
from repro.query.engine import PreferenceEngine
from repro.query.stats import MaintenanceStats
from repro.rtree.bulk import bulk_load
from repro.rtree.rtree import RTree, fanout_for_page
from repro.storage.disk import SimulatedDisk


@dataclass
class BuildTimings:
    """Construction wall-clock per component (Figure 5's series)."""

    rtree_seconds: float = 0.0
    pcube_seconds: float = 0.0
    btree_seconds: float = 0.0


@dataclass
class PCubeSystem:
    """A fully built system: storage, indexes, cube and engine."""

    relation: Relation
    rtree: RTree
    pcube: PCube
    indexes: dict[str, BPlusTree]
    engine: PreferenceEngine
    timings: BuildTimings = field(default_factory=BuildTimings)
    wal: MaintenanceWAL | None = None
    maintenance_stats: MaintenanceStats = field(
        default_factory=MaintenanceStats
    )
    epochs: EpochManager | None = None
    # Row count the B+-tree postings were built over.  The postings are
    # never maintained after build, so index-backed plans are only sound
    # while the relation has not grown past this mark (the router's
    # freshness gate).
    indexes_rows: int = 0

    @property
    def disk(self) -> SimulatedDisk:
        return self.relation.disk

    # ------------------------------------------------------------------ #
    # epochs (snapshot-isolated concurrent serving)
    # ------------------------------------------------------------------ #

    def enable_epochs(self) -> EpochManager:
        """Attach an :class:`EpochManager` (idempotent).

        From this point maintenance publishes an immutable snapshot at
        each WAL commit, and :meth:`pin_snapshot` hands out isolated read
        surfaces for concurrent query sessions.  Single-threaded use is
        unaffected: the live structures keep serving the paper-comparable
        path, only page frees become deferred until readers drain.
        """
        if self.epochs is None:
            self.epochs = EpochManager(self.relation, self.rtree, self.pcube)
        return self.epochs

    def pin_snapshot(self) -> Snapshot:
        """Pin the current epoch (requires :meth:`enable_epochs`)."""
        if self.epochs is None:
            raise RuntimeError(
                "epochs are not enabled; call enable_epochs() first"
            )
        return self.epochs.pin()

    def unpin_snapshot(self, snapshot: Snapshot) -> None:
        assert self.epochs is not None
        self.epochs.unpin(snapshot)

    def _maintain(self, op):
        """Run one maintenance driver, publishing an epoch on success."""
        if self.epochs is None:
            return op()
        with self.epochs.write():
            result = op()
            # The driver has WAL-committed by now; the snapshot therefore
            # reflects exactly the committed state.
            self.epochs.publish()
            return result

    # ------------------------------------------------------------------ #
    # space accounting (Figure 6's series)
    # ------------------------------------------------------------------ #

    def rtree_size_mb(self) -> float:
        return self.disk.size_mb("rtree")

    def pcube_size_mb(self) -> float:
        return self.disk.size_mb("pcube")

    def btree_size_mb(self) -> float:
        return self.disk.size_mb("btree")

    # ------------------------------------------------------------------ #
    # crash-safe maintenance (WAL-protected drivers)
    # ------------------------------------------------------------------ #

    def insert(self, bool_row: tuple, pref_row: tuple):
        """WAL-protected single-tuple insert; returns (tid, dirty cells)."""
        return self._maintain(
            lambda: maintenance.insert_tuple(
                self.relation, self.rtree, self.pcube, bool_row, pref_row,
                wal=self.wal,
            )
        )

    def insert_batch(self, rows):
        """WAL-protected batch insert; returns (tids, dirty cells)."""
        return self._maintain(
            lambda: maintenance.insert_batch(
                self.relation, self.rtree, self.pcube, rows, wal=self.wal
            )
        )

    def delete(self, tid: int):
        """WAL-protected delete; returns the dirty cells."""
        return self._maintain(
            lambda: maintenance.delete_tuple(
                self.relation, self.rtree, self.pcube, tid, wal=self.wal
            )
        )

    def update(self, tid: int, new_pref_row: tuple):
        """WAL-protected preference update; returns the dirty cells."""
        return self._maintain(
            lambda: maintenance.update_tuple(
                self.relation, self.rtree, self.pcube, tid, new_pref_row,
                wal=self.wal,
            )
        )

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> str:
        """Finish (or deterministically redo) an interrupted operation.

        The recovery state machine, keyed on what the WAL holds:

        * no records — ``"clean"``: the last operation committed (or its
          intent never became durable, in which case it simply never
          happened; the caller may re-submit it).
        * intent only — ``"reindexed"``: the crash hit the relation or
          R-tree phase, and a mid-mutation R-tree is not incrementally
          reconcilable.  The relation-level effect is re-applied from the
          intent (idempotently), buffered heap rows are re-paged, and the
          R-tree, every cell signature and the store's B+-tree index are
          rebuilt deterministically from the base data.
        * intent + changes — ``"replayed"``: relation, R-tree and the
          in-memory counted signatures are complete; only per-cell store
          rewrites may be missing.  The dirty set is recomputed from the
          journalled changes and every cell without a completion record is
          re-stored from its counted signature.

        The operation is committed only after the work is done, so a crash
        *during* recovery leaves the records in place and a re-run
        converges (every step above is idempotent).

        Before the state machine runs, damaged WAL records are classified:
        a torn/corrupt *tail* (the footprint of a write interrupted by the
        crash) is truncated by default — the records above the last valid
        LSN never influenced any committed state, so dropping them is the
        only sound reading.  Interior corruption (valid records above the
        damage) raises :class:`~repro.core.wal.WalCorruptionError` instead:
        committed history is gone, and the honest recovery is a restore
        from checkpoints (:func:`repro.core.checkpoint.restore_system`).
        """
        if self.wal is None:
            raise RuntimeError("this system was built without a WAL")
        self.wal.repair_tail()
        pending = self.wal.pending()
        if pending is None:
            return "clean"
        return self._maintain(lambda: self._recover_pending(pending))

    def _recover_pending(self, pending: PendingOp) -> str:
        self.maintenance_stats.recoveries += 1
        if pending.changes is None:
            outcome = self._recover_reindex(pending)
        else:
            outcome = self._recover_replay(pending)
        self.wal.commit(pending.op_id)
        return outcome

    def _reapply_relation(self, pending: PendingOp) -> None:
        """Idempotently re-apply the intent's relation-level effect."""
        payload = pending.payload
        if pending.op in ("insert", "insert_batch"):
            # Rows are buffered in memory before any disk page is touched,
            # so ``len(relation) - base`` of them are already in; re-page
            # the buffered tail first (appends must stay in tid order),
            # then apply the rest.
            self.maintenance_stats.rows_repaired += (
                self.relation.repair_heap()
            )
            already = len(self.relation) - payload["base"]
            for bool_row, pref_row in payload["rows"][already:]:
                self.relation.append(bool_row, pref_row)
        elif pending.op == "delete":
            self.relation.tombstone(payload["tid"])
            self.maintenance_stats.rows_repaired += (
                self.relation.repair_heap()
            )
        elif pending.op == "update":
            self.relation.overwrite_pref(payload["tid"], payload["pref_row"])
            self.maintenance_stats.rows_repaired += (
                self.relation.repair_heap()
            )
        else:  # pragma: no cover - begin() only journals the four ops
            raise RuntimeError(f"unknown journalled op {pending.op!r}")

    def _recover_reindex(self, pending: PendingOp) -> str:
        self._reapply_relation(pending)
        self.rtree.reset(self.relation.pref_points())
        self.pcube.rebuild_all()
        self.pcube.store.reset_index()
        self.maintenance_stats.reindexes += 1
        return "reindexed"

    def _recover_replay(self, pending: PendingOp) -> str:
        stored = set(pending.stored_cells)
        dirty = self.pcube.dirty_cells_for(pending.changes)
        for cell in sorted(dirty, key=lambda c: c.cell_id):
            if cell.cell_id in stored:
                continue
            self.pcube.restore_cell(cell)
            self.wal.log_cell_stored(pending.op_id, cell.cell_id)
            self.maintenance_stats.replayed_cells += 1
        return "replayed"

    def repair_quarantined(self) -> list:
        """Rebuild every quarantined cell under the single-writer protocol.

        The scrubber (and any other online damage detector) quarantines
        cells it finds corrupt; this routes the rebuild through
        :meth:`_maintain` so an epoch is published when epochs are enabled
        — concurrent readers flip to the repaired signatures atomically,
        exactly as they would after a maintenance operation.
        """
        return self._maintain(lambda: self.pcube.rebuild_quarantined())

    # ------------------------------------------------------------------ #
    # the consistency audit
    # ------------------------------------------------------------------ #

    def verify_consistency(self) -> ConsistencyReport:
        """Check every cross-structure invariant; returns the findings.

        Verified, against the base relation as ground truth (the invariants
        themselves live in :mod:`repro.core.integrity`, shared with the
        online scrubber):

        * the WAL holds no interrupted operation;
        * every buffered relation row reached a heap page;
        * the R-tree indexes exactly the live tids;
        * per cell: the stored signature equals one rebuilt from the live
          members' R-tree paths, and (when maintainable) the counted
          signature's counts match a fresh re-count;
        * the store holds no cell outside the cuboids' group-bys, none of
          its cells is quarantined, and its B+-tree index mirrors the
          directory exactly.
        """
        report = ConsistencyReport()
        problems = report.problems
        if self.wal is not None and not self.wal.is_empty():
            problems.append("WAL holds an interrupted maintenance operation")
        unpaged = len(self.relation) - self.relation.paged_count()
        if unpaged:
            problems.append(f"{unpaged} relation rows never reached a heap page")
        paths = self.rtree.all_paths()
        live = set(self.relation.live_tids())
        problems.extend(integrity.rtree_partition_problems(paths, live))
        for _cell, cell_problems in integrity.iter_cell_checks(
            self.relation,
            paths,
            self.pcube.cuboids,
            self.pcube.fanout,
            self.pcube.signature_of,
            self.pcube.counted_of if self.pcube.maintainable else None,
        ):
            report.cells_checked += 1
            problems.extend(cell_problems)
        expected_ids = integrity.expected_cell_ids(
            self.relation, self.pcube.cuboids
        )
        problems.extend(
            integrity.store_directory_problems(
                self.pcube.store.cells(),
                expected_ids,
                self.pcube.store.quarantined_cells(),
                self.pcube.store.directory_entries(),
                self.pcube.store.index_entries(),
            )
        )
        return report


def build_system(
    relation: Relation,
    fanout: int | None = None,
    rtree_method: str = "bulk",
    split: str = "quadratic",
    codec: str = "adaptive",
    maintainable: bool = True,
    with_indexes: bool = True,
    pool_capacity: int = 4096,
    eager_assembly: bool = False,
    with_wal: bool = True,
    wal_segment_bytes: int | None = None,
) -> PCubeSystem:
    """Build R-tree + P-Cube + baseline indexes over an existing relation.

    Args:
        relation: The base table (its disk hosts every structure).
        fanout: R-tree node capacity; derived from the page size and the
            preference dimensionality when omitted (paper convention).
        rtree_method: ``"bulk"`` (STR packing, fast) or ``"insert"``
            (tuple-at-a-time Guttman build — the construction cost Figure 5
            actually measures).
        split: R-tree split policy for dynamic inserts.
        codec: Bitmap codec for stored signatures.
        maintainable: Keep counted signatures for incremental updates.
        with_indexes: Also build the per-dimension B+-trees the baselines
            need (skippable when only the Signature method runs).
        pool_capacity / eager_assembly: Engine configuration.
        with_wal: Attach a :class:`MaintenanceWAL` so the system's
            ``insert`` / ``insert_batch`` / ``delete`` / ``update`` methods
            run crash-safe (costs nothing until an operation journals).
        wal_segment_bytes: Override the WAL's segment-rotation threshold
            (default :data:`repro.core.wal.DEFAULT_SEGMENT_BYTES`); small
            values force frequent sealing, which durability tests and the
            recovery benchmark use to exercise the archive.
    """
    disk = relation.disk
    dims = relation.schema.n_preference
    if fanout is None:
        fanout = fanout_for_page(disk.page_size, dims)

    timings = BuildTimings()
    started = time.perf_counter()
    if rtree_method == "bulk":
        rtree = bulk_load(
            list(relation.pref_points()),
            dims=dims,
            max_entries=fanout,
            disk=disk,
            split=split,
        )
    elif rtree_method == "insert":
        rtree = RTree(
            dims=dims, max_entries=fanout, split=split, disk=disk
        )
        for tid, point in relation.pref_points():
            rtree.insert(tid, point)
    else:
        raise ValueError(f"unknown rtree_method {rtree_method!r}")
    timings.rtree_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pcube = PCube.build(
        relation, rtree, codec=codec, maintainable=maintainable
    )
    timings.pcube_seconds = time.perf_counter() - started

    indexes: dict[str, BPlusTree] = {}
    if with_indexes:
        started = time.perf_counter()
        indexes = build_boolean_indexes(relation, disk=disk)
        timings.btree_seconds = time.perf_counter() - started

    engine = PreferenceEngine(
        relation,
        rtree,
        pcube,
        pool_capacity=pool_capacity,
        eager_assembly=eager_assembly,
    )
    maintenance_stats = MaintenanceStats()
    wal_kwargs = (
        {} if wal_segment_bytes is None
        else {"segment_bytes": wal_segment_bytes}
    )
    wal = (
        MaintenanceWAL(disk, stats=maintenance_stats, **wal_kwargs)
        if with_wal
        else None
    )
    return PCubeSystem(
        relation=relation,
        rtree=rtree,
        pcube=pcube,
        indexes=indexes,
        engine=engine,
        timings=timings,
        wal=wal,
        maintenance_stats=maintenance_stats,
        indexes_rows=len(relation) if indexes else 0,
    )
