#!/usr/bin/env python3
"""An analyst session on the (simulated) Forest CoverType data set.

Reproduces the paper's real-data scenario (Section VI-B.4) as a runnable
walkthrough: skyline queries with 1-4 boolean predicates, executed three
ways (Signature, Boolean-first, Domination-first), followed by an
incremental drill-down chain — printing the disk-access breakdowns that
Figures 14-16 chart.

The data is an offline synthetic twin of CoverType with the original's
schema and cardinalities (see DESIGN.md §4).

Run:  python examples/covertype_drilldown.py [n_rows]
"""

import random
import sys

from repro import build_system
from repro.baselines import boolean_first_skyline, domination_first_skyline
from repro.data.covertype import covertype_relation, scale_factor
from repro.data.workload import sample_predicate


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(
        f"Generating CoverType twin: {n_rows:,} rows "
        f"(scale {scale_factor(n_rows):.3f} of the original 581,012) ..."
    )
    relation = covertype_relation(n_rows=n_rows)
    system = build_system(relation)
    rng = random.Random(2008)

    # --- one query per predicate count, three methods --------------------- #
    print(f"\n{'#preds':<7} {'method':<12} {'time(ms)':>9} {'disk I/O':>9} "
          f"{'peak heap':>10} {'skyline':>8}")
    # Draw predicates over the four high-cardinality attributes so the
    # selection stays selective, like the paper's workloads.
    high_card_dims = relation.schema.boolean_dims[:4]
    predicate = sample_predicate(relation, 1, rng, dims=high_card_dims)
    for n_preds in range(1, 5):
        if len(predicate) < n_preds:
            dim = next(
                d for d in high_card_dims if d not in predicate.dims()
            )
            anchor = next(
                tid
                for tid in relation.tids()
                if predicate.matches(relation, tid)
            )
            predicate = predicate.drill_down(
                dim, relation.bool_value(anchor, dim)
            )
        sig = system.engine.skyline(predicate)
        print(
            f"{n_preds:<7} {'Signature':<12} "
            f"{sig.stats.elapsed_seconds * 1000:>9.1f} "
            f"{sig.stats.total_io():>9} {sig.stats.peak_heap:>10} "
            f"{len(sig):>8}"
        )
        bool_tids, bool_stats = boolean_first_skyline(
            relation, system.indexes, predicate
        )
        print(
            f"{'':<7} {'Boolean':<12} "
            f"{bool_stats.elapsed_seconds * 1000:>9.1f} "
            f"{bool_stats.total_io():>9} {bool_stats.peak_heap:>10} "
            f"{len(bool_tids):>8}"
        )
        dom_tids, dom_stats, _ = domination_first_skyline(
            relation, system.rtree, predicate
        )
        print(
            f"{'':<7} {'Domination':<12} "
            f"{dom_stats.elapsed_seconds * 1000:>9.1f} "
            f"{dom_stats.total_io():>9} {dom_stats.peak_heap:>10} "
            f"{len(dom_tids):>8}"
        )
        assert set(sig.tids) == set(bool_tids) == set(dom_tids)

    # --- the incremental drill-down chain (Figure 16) --------------------- #
    print("\nDrill-down chain (incremental vs fresh):")
    dims = predicate.dims()
    conjuncts = predicate.conjuncts
    current = system.engine.skyline(
        type(predicate)({dims[0]: conjuncts[dims[0]]})
    )
    for depth, dim in enumerate(dims[1:], start=2):
        drilled = system.engine.drill_down(current, dim, conjuncts[dim])
        fresh = system.engine.skyline(drilled.predicate)
        assert set(drilled.tids) == set(fresh.tids)
        speedup = fresh.stats.elapsed_seconds / max(
            drilled.stats.elapsed_seconds, 1e-9
        )
        print(
            f"  {depth} predicates: drill-down {drilled.stats.total_io():>4} I/O "
            f"/ {drilled.stats.elapsed_seconds * 1000:6.2f} ms   "
            f"fresh {fresh.stats.total_io():>4} I/O "
            f"/ {fresh.stats.elapsed_seconds * 1000:6.2f} ms   "
            f"({speedup:.1f}x faster incrementally)"
        )
        current = drilled

    # --- signature loading share (Figure 15) ------------------------------ #
    load = current.stats.sig_load_seconds
    total = current.stats.elapsed_seconds
    print(
        f"\nAt {len(current.predicate)} predicates, signature loading took "
        f"{load * 1000:.2f} ms of {total * 1000:.2f} ms total "
        f"({100 * load / max(total, 1e-9):.1f}% — the paper's 'atomic "
        f"cuboids are good enough' observation)"
    )


if __name__ == "__main__":
    main()
