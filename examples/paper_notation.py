#!/usr/bin/env python3
"""Running queries in the paper's own SQL-like notation (Section III).

The parser accepts exactly the two query forms the paper presents —
``SELECT TOP-k ... ORDER BY f(...)`` and ``SELECT SKYLINES ... PREFERENCE
BY ...`` — so the paper's Example 1 can be typed verbatim.

Run:  python examples/paper_notation.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro import build_system, execute_sql
from quickstart import make_inventory

QUERIES = [
    # Example 1, as printed in the paper (alpha = 0.5).
    "select top 10 from R "
    "where type = 'sedan' and color = 'red' "
    "order by (price - 15000)^2 + 0.5*(mileage - 30000)^2",
    # A linear Figure 13 style ranking.
    "select top 5 from R where maker = 'toyota' "
    "order by 0.7*price + 0.3*mileage",
    # Skylines over both preference dimensions ...
    "select skylines from R where type = 'suv' and maker = 'honda'",
    # ... and over a single one (Section III's PREFERENCE BY subset).
    "select skylines from R where type = 'suv' and maker = 'honda' "
    "preference by price",
]


def main() -> None:
    print("Building inventory and P-Cube ...")
    relation = make_inventory()
    system = build_system(relation)

    for query in QUERIES:
        print(f"\nsql> {query}")
        result = execute_sql(system.engine, query)
        print(
            f"  -> {len(result.tids)} rows, "
            f"{result.stats.total_io()} disk accesses, "
            f"{result.stats.elapsed_seconds * 1000:.1f} ms"
        )
        for tid in result.tids[:5]:
            car_type, maker, color = relation.bool_row(tid)
            price, mileage = relation.pref_point(tid)
            print(
                f"     {car_type:<7} {maker:<8} {color:<7} "
                f"${price:>8,.0f} {mileage:>8,.0f}mi"
            )
        if len(result.tids) > 5:
            print(f"     ... and {len(result.tids) - 5} more")


if __name__ == "__main__":
    main()
