#!/usr/bin/env python3
"""Quickstart: the paper's Example 1 — a used-car database.

Schema (type, maker, color | price, mileage): the first three are boolean
dimensions, the last two preference dimensions.  A buyer wants the top-10
red sedans closest to price $15k and mileage 30k miles:

    SELECT TOP 10 * FROM cars
    WHERE type = 'sedan' AND color = 'red'
    ORDER BY (price - 15000)^2 + alpha * (mileage - 30000)^2

Run:  python examples/quickstart.py
"""

import random

from repro import (
    BooleanPredicate,
    Relation,
    Schema,
    WeightedSquaredDistance,
    build_system,
)

TYPES = ["sedan", "suv", "truck", "coupe", "wagon"]
MAKERS = ["toyota", "honda", "ford", "bmw", "subaru", "kia"]
COLORS = ["red", "black", "white", "silver", "blue"]


def make_inventory(n_cars: int = 20_000, seed: int = 15) -> Relation:
    """A synthetic dealer inventory with realistic price/mileage skew."""
    rng = random.Random(seed)
    bool_rows = []
    pref_rows = []
    for _ in range(n_cars):
        car_type = rng.choice(TYPES)
        maker = rng.choice(MAKERS)
        color = rng.choice(COLORS)
        age = rng.uniform(0, 12)  # years
        base = {"sedan": 22, "suv": 30, "truck": 34, "coupe": 28, "wagon": 24}
        price = max(2.0, base[car_type] * (0.88**age) * rng.uniform(0.8, 1.2))
        mileage = max(1.0, age * rng.uniform(8, 15))  # thousands of miles
        bool_rows.append((car_type, maker, color))
        pref_rows.append((price * 1000, mileage * 1000))
    schema = Schema(("type", "maker", "color"), ("price", "mileage"))
    return Relation(schema, bool_rows, pref_rows)


def main() -> None:
    print("Building inventory and P-Cube ...")
    relation = make_inventory()
    system = build_system(relation)
    print(
        f"  {len(relation):,} cars | R-tree fanout M={system.rtree.max_entries} "
        f"| P-Cube cells={system.pcube.n_cells()}"
    )
    print(
        f"  sizes: R-tree {system.rtree_size_mb():.2f} MB, "
        f"P-Cube {system.pcube_size_mb():.2f} MB, "
        f"B+-trees {system.btree_size_mb():.2f} MB"
    )

    # --- the Example 1 query -------------------------------------------- #
    predicate = BooleanPredicate({"type": "sedan", "color": "red"})
    alpha = 0.5  # the user's price/mileage trade-off
    ranking = WeightedSquaredDistance(
        target=(15_000.0, 30_000.0), weights=(1.0, alpha)
    )
    result = system.engine.topk(ranking, k=10, predicate=predicate)

    print(f"\nTop 10 for {predicate}:")
    print(f"  {'rank':<5} {'type':<7} {'maker':<8} {'color':<7} "
          f"{'price':>9} {'mileage':>9}")
    for rank, tid in enumerate(result.tids, start=1):
        car_type, maker, color = relation.bool_row(tid)
        price, mileage = relation.pref_point(tid)
        print(
            f"  {rank:<5} {car_type:<7} {maker:<8} {color:<7} "
            f"${price:>8,.0f} {mileage:>8,.0f}mi"
        )

    stats = result.stats
    print(
        f"\nCost: {stats.elapsed_seconds * 1000:.1f} ms, "
        f"{stats.total_io()} disk accesses "
        f"(R-tree blocks {stats.sblock}, signature loads {stats.ssig}), "
        f"peak heap {stats.peak_heap} entries"
    )

    # --- the same buyer widens the search (roll-up on color) ------------- #
    rolled = system.engine.roll_up(result, "color")
    print(
        f"\nRoll-up to {rolled.predicate}: best price now "
        f"${relation.pref_point(rolled.tids[0])[0]:,.0f} "
        f"({rolled.stats.total_io()} disk accesses — incremental, "
        f"not from scratch)"
    )


if __name__ == "__main__":
    main()
