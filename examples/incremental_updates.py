#!/usr/bin/env python3
"""The P-Cube life cycle under a live workload.

Builds a system, then interleaves insertions (with R-tree node splits),
deletions (with tree condensation) and updates while running queries —
demonstrating Section IV-B.3's incremental signature maintenance and
verifying answers against a brute-force oracle after every phase.

Run:  python examples/incremental_updates.py
"""

import random
import time

from repro import BooleanPredicate, build_system
from repro.baselines.naive import naive_skyline
from repro.core.maintenance import (
    delete_tuple,
    insert_batch,
    insert_tuple,
    update_tuple,
)
from repro.data.synthetic import SyntheticConfig, generate_relation


def oracle_skyline(relation, alive, predicate):
    return set(
        naive_skyline(
            [
                (tid, relation.pref_point(tid))
                for tid in alive
                if predicate.matches(relation, tid)
            ]
        )
    )


def main() -> None:
    config = SyntheticConfig(
        n_tuples=15_000, n_boolean=3, cardinality=20, n_preference=2, seed=41
    )
    print(f"Building base system ({config.n_tuples:,} tuples) ...")
    relation = generate_relation(config)
    system = build_system(relation, rtree_method="bulk")
    rng = random.Random(99)
    alive = set(relation.tids())
    predicate = BooleanPredicate({"A1": 7})

    def check(phase: str) -> None:
        result = system.engine.skyline(predicate)
        expected = oracle_skyline(relation, alive, predicate)
        status = "OK" if set(result.tids) == expected else "MISMATCH"
        print(
            f"  [{status}] skyline({predicate}) after {phase}: "
            f"{len(result.tids)} points"
        )
        assert status == "OK"

    check("initial build")

    # --- single-tuple inserts (the paper's 0.11 s/1-tuple experiment) ----- #
    started = time.perf_counter()
    for _ in range(100):
        row = (
            (rng.randrange(20), rng.randrange(20), rng.randrange(20)),
            (rng.random(), rng.random()),
        )
        tid, dirty = insert_tuple(relation, system.rtree, system.pcube, *row)
        alive.add(tid)
    per_tuple = (time.perf_counter() - started) / 100
    print(f"\n100 single inserts: {per_tuple * 1000:.2f} ms/tuple")
    check("single inserts")

    # --- batch insert (the paper: batch maintenance amortises) ------------ #
    rows = [
        (
            (rng.randrange(20), rng.randrange(20), rng.randrange(20)),
            (rng.random(), rng.random()),
        )
        for _ in range(100)
    ]
    started = time.perf_counter()
    tids, dirty = insert_batch(relation, system.rtree, system.pcube, rows)
    per_batched = (time.perf_counter() - started) / len(rows)
    alive.update(tids)
    print(
        f"100 batched inserts: {per_batched * 1000:.2f} ms/tuple "
        f"({per_tuple / max(per_batched, 1e-9):.1f}x cheaper than one-by-one; "
        f"{len(dirty)} cells rewritten once)"
    )
    check("batch insert")

    # --- deletions (condensation + signature bit clearing) ---------------- #
    victims = rng.sample(sorted(alive), 500)
    started = time.perf_counter()
    for tid in victims:
        delete_tuple(relation, system.rtree, system.pcube, tid)
        alive.discard(tid)
    print(
        f"\n500 deletes: "
        f"{(time.perf_counter() - started) / 500 * 1000:.2f} ms/tuple"
    )
    check("deletes")

    # --- updates (move tuples in preference space) ------------------------ #
    movers = rng.sample(sorted(alive), 200)
    started = time.perf_counter()
    for tid in movers:
        update_tuple(
            relation,
            system.rtree,
            system.pcube,
            tid,
            (rng.random(), rng.random()),
        )
    print(
        f"200 updates:  "
        f"{(time.perf_counter() - started) / 200 * 1000:.2f} ms/tuple"
    )
    check("updates")

    # --- compare with full recomputation ----------------------------------- #
    started = time.perf_counter()
    rebuilt = build_system(relation, with_indexes=False)
    rebuild_seconds = time.perf_counter() - started
    print(
        f"\nFull recomputation of R-tree + P-Cube would cost "
        f"{rebuild_seconds:.2f} s — vs ~{per_tuple * 1000:.1f} ms per "
        f"incremental insert (the Figure 7 argument)."
    )
    del rebuilt


if __name__ == "__main__":
    main()
