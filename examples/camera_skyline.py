#!/usr/bin/env python3
"""Example 2: multi-dimensional skyline comparison on a camera database.

Schema (brand, type | price, resolution, optical zoom).  A market analyst
computes the skyline of Canon professional cameras, then *rolls up* on the
brand dimension to see the professional market as a whole — the paper's
motivating OLAP-style preference analysis.

Skylines minimise, so resolution and zoom are negated into "regret"
coordinates (higher resolution => smaller value).

Run:  python examples/camera_skyline.py
"""

import random

from repro import BooleanPredicate, Relation, Schema, build_system

BRANDS = ["canon", "nikon", "sony", "fuji", "panasonic"]
TYPES = ["professional", "enthusiast", "compact"]

#: Brand-specific quality tilt: some brands genuinely dominate segments.
BRAND_EDGE = {"canon": 0.9, "nikon": 0.92, "sony": 0.88, "fuji": 1.0, "panasonic": 1.05}


def make_catalogue(n_cameras: int = 12_000, seed: int = 8) -> Relation:
    rng = random.Random(seed)
    bool_rows, pref_rows = [], []
    for _ in range(n_cameras):
        brand = rng.choice(BRANDS)
        cam_type = rng.choices(TYPES, weights=[1, 2, 3])[0]
        tier = {"professional": 3.0, "enthusiast": 1.8, "compact": 1.0}[cam_type]
        price = tier * rng.uniform(300, 1400) * BRAND_EDGE[brand]
        resolution = tier * rng.uniform(12, 22)  # megapixels
        zoom = rng.uniform(1, 4) * (2.5 if cam_type == "compact" else 1.0)
        bool_rows.append((brand, cam_type))
        # Minimise price; maximise resolution and zoom (store as regret).
        pref_rows.append((price, 60.0 - resolution, 12.0 - zoom))
    schema = Schema(("brand", "type"), ("price", "res_regret", "zoom_regret"))
    return Relation(schema, bool_rows, pref_rows)


def describe(relation: Relation, tids: list[int], limit: int = 8) -> None:
    for tid in tids[:limit]:
        brand, cam_type = relation.bool_row(tid)
        price, res_regret, zoom_regret = relation.pref_point(tid)
        print(
            f"    {brand:<10} {cam_type:<13} ${price:>7,.0f} "
            f"{60 - res_regret:>5.1f}MP {12 - zoom_regret:>4.1f}x"
        )
    if len(tids) > limit:
        print(f"    ... and {len(tids) - limit} more")


def main() -> None:
    print("Building camera catalogue and P-Cube ...")
    relation = make_catalogue()
    system = build_system(relation)
    print(f"  {len(relation):,} cameras, {system.pcube.n_cells()} cube cells")

    # --- skyline of Canon professional cameras --------------------------- #
    canon_pro = BooleanPredicate({"brand": "canon", "type": "professional"})
    canon = system.engine.skyline(canon_pro)
    print(f"\nSkyline of {canon_pro}: {len(canon)} cameras")
    describe(relation, canon.tids)
    print(
        f"  cost: {canon.stats.total_io()} disk accesses, "
        f"{canon.stats.elapsed_seconds * 1000:.1f} ms"
    )

    # --- roll up on brand: the whole professional market ----------------- #
    market = system.engine.roll_up(canon, "brand")
    print(f"\nRoll-up to {market.predicate}: {len(market)} skyline cameras")
    describe(relation, market.tids)
    print(
        f"  cost: {market.stats.total_io()} disk accesses (incremental "
        f"Lemma 2 restart, not a fresh search)"
    )

    # --- where does Canon stand? ----------------------------------------- #
    canon_set = set(canon.tids)
    survivors = [tid for tid in market.tids if tid in canon_set]
    displaced = [tid for tid in canon.tids if tid not in set(market.tids)]
    print(
        f"\nCanon's position: {len(survivors)} of its {len(canon)} "
        f"segment-skyline models stay on the overall professional skyline; "
        f"{len(displaced)} are dominated by competitors:"
    )
    for tid in displaced[:5]:
        dominators = [
            relation.bool_row(t)[0]
            for t in market.tids
            if all(
                a <= b
                for a, b in zip(relation.pref_point(t), relation.pref_point(tid))
            )
            and relation.pref_point(t) != relation.pref_point(tid)
        ]
        price = relation.pref_point(tid)[0]
        names = ", ".join(sorted(set(dominators))) or "(several)"
        print(f"    ${price:,.0f} model displaced by: {names}")

    # --- drill back down on a competitor ---------------------------------- #
    sony = system.engine.drill_down(market, "brand", "sony")
    print(
        f"\nDrill-down to {sony.predicate}: {len(sony)} cameras "
        f"({sony.stats.total_io()} disk accesses)"
    )


if __name__ == "__main__":
    main()
