"""B+-tree: ordering, duplicates, counted access, hypothesis model check."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.counters import BINDEX, BTREE, IOCounters
from repro.storage.disk import SimulatedDisk


def test_empty_tree():
    tree = BPlusTree(order=4)
    assert len(tree) == 0
    assert tree.search(5) == []
    assert list(tree.items()) == []


def test_insert_and_search():
    tree = BPlusTree(order=4)
    tree.insert(3, "c")
    tree.insert(1, "a")
    tree.insert(2, "b")
    assert tree.search(1) == ["a"]
    assert tree.search(2) == ["b"]
    assert tree.search(4) == []


def test_duplicates_collected_across_leaves():
    tree = BPlusTree(order=4)
    for i in range(40):
        tree.insert(7, f"v{i}")
    for i in range(10):
        tree.insert(3, f"w{i}")
    assert sorted(tree.search(7)) == sorted(f"v{i}" for i in range(40))
    assert len(tree.search(3)) == 10


def test_items_sorted():
    tree = BPlusTree(order=4)
    keys = [9, 1, 5, 3, 7, 5, 2, 8]
    for key in keys:
        tree.insert(key, key * 10)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_distinct_keys():
    tree = BPlusTree(order=4)
    for key in [4, 2, 4, 2, 9]:
        tree.insert(key, None)
    assert list(tree.distinct_keys()) == [2, 4, 9]


def test_range_scan_inclusive():
    tree = BPlusTree(order=4)
    for key in range(20):
        tree.insert(key, key)
    got = [k for k, _ in tree.range_scan(5, 11)]
    assert got == list(range(5, 12))


def test_range_scan_empty_range():
    tree = BPlusTree(order=4)
    for key in range(10):
        tree.insert(key, key)
    assert list(tree.range_scan(40, 50)) == []


def test_height_grows_logarithmically():
    tree = BPlusTree(order=8)
    for key in range(1000):
        tree.insert(key, key)
    assert 3 <= tree.height() <= 5


def test_tuple_keys():
    tree = BPlusTree(order=4)
    tree.insert(("cell", 3), "x")
    tree.insert(("cell", 1), "y")
    tree.insert(("aaaa", 9), "z")
    assert tree.search(("cell", 1)) == ["y"]
    assert [k for k, _ in tree.items()] == [("aaaa", 9), ("cell", 1), ("cell", 3)]


def test_search_counts_page_reads():
    disk = SimulatedDisk()
    tree = BPlusTree(order=4, disk=disk, tag="bt")
    for key in range(200):
        tree.insert(key % 20, key)
    counters = IOCounters()
    tree.search(7, counters=counters, category=BINDEX)
    # At least the root-to-leaf path must be read.
    assert counters.get(BINDEX) >= tree.height()


def test_search_through_buffer_pool_dedupes():
    disk = SimulatedDisk()
    tree = BPlusTree(order=4, disk=disk, tag="bt")
    for key in range(100):
        tree.insert(key, key)
    pool = BufferPool(disk, capacity=128)
    counters = IOCounters()
    tree.search(30, pool=pool, counters=counters)
    first = counters.get(BTREE)
    tree.search(30, pool=pool, counters=counters)
    assert counters.get(BTREE) == first  # fully cached second time


def test_pages_accounted_on_disk():
    disk = SimulatedDisk()
    tree = BPlusTree(order=4, disk=disk, tag="bt")
    for key in range(300):
        tree.insert(key, key)
    assert disk.page_count("bt") > 300 / 5
    assert disk.size_bytes("bt") > 0


def test_order_minimum():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_bulk_insert():
    tree = BPlusTree(order=16)
    tree.bulk_insert((i, i * i) for i in range(50))
    assert tree.search(7) == [49]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.integers()),
        max_size=400,
    )
)
def test_model_check_against_dict(pairs):
    """The tree must behave like a sorted multimap."""
    tree = BPlusTree(order=4)
    model: dict[int, list[int]] = {}
    for key, value in pairs:
        tree.insert(key, value)
        model.setdefault(key, []).append(value)
    assert len(tree) == sum(len(v) for v in model.values())
    for key in range(51):
        assert sorted(tree.search(key)) == sorted(model.get(key, []))
    expected_items = sorted(
        (k, v) for k, values in model.items() for v in values
    )
    assert sorted(tree.items()) == expected_items


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=300),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_range_scan_model(keys, lo, hi):
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [k for k, _ in tree.range_scan(lo, hi)] == expected


def test_random_interleaving_stress():
    rng = random.Random(17)
    tree = BPlusTree(order=6)
    model: dict[int, int] = {}
    for i in range(2000):
        key = rng.randrange(500)
        tree.insert(key, i)
        model[key] = model.get(key, 0) + 1
    for key, count in model.items():
        assert len(tree.search(key)) == count


def test_delete_removes_all_slots_for_key():
    tree = BPlusTree(order=4)
    for i in range(50):
        tree.insert(i, i * 10)
    assert tree.delete(7) == 1
    assert tree.search(7) == []
    assert len(tree) == 49
    assert tree.delete(7) == 0  # already gone


def test_delete_specific_value_among_duplicates():
    tree = BPlusTree(order=4)
    for value in (100, 200, 300):
        tree.insert(5, value)
    assert tree.delete(5, 200) == 1
    assert sorted(tree.search(5)) == [100, 300]
    assert tree.delete(5) == 2
    assert tree.search(5) == []


def test_delete_duplicates_spanning_leaves():
    tree = BPlusTree(order=4)
    # Enough duplicates of one key to span several leaves.
    for i in range(30):
        tree.insert(9, i)
    for i in range(10):
        tree.insert(i + 100, i)
    assert tree.delete(9) == 30
    assert tree.search(9) == []
    assert len(tree) == 10
    assert sorted(k for k, _ in tree.items()) == sorted(range(100, 110))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), max_size=200),
    st.lists(st.integers(min_value=0, max_value=30), max_size=50),
)
def test_delete_model(inserted, deleted):
    tree = BPlusTree(order=4)
    model: list[tuple[int, int]] = []
    for i, key in enumerate(inserted):
        tree.insert(key, i)
        model.append((key, i))
    for key in deleted:
        expected = sum(1 for k, _ in model if k == key)
        assert tree.delete(key) == expected
        model = [(k, v) for k, v in model if k != key]
    assert sorted(tree.items()) == sorted(model)
    assert len(tree) == len(model)


def test_delete_synced_to_disk_pages():
    disk = SimulatedDisk()
    tree = BPlusTree(order=4, disk=disk, tag="idx")
    for i in range(40):
        tree.insert(i, i)
    tree.delete(11)
    # A fresh counted search still resolves correctly from synced pages.
    counters = IOCounters()
    assert tree.search(12, counters=counters) == [12]
    assert tree.search(11) == []
    assert counters.get(BTREE) >= 1
