"""Bloom filters: no false negatives, bounded false positives."""

import random

import pytest

from repro.bitmap.bloom import BloomFilter, optimal_parameters


def test_no_false_negatives():
    bloom = BloomFilter(nbits=1024, nhashes=3)
    keys = list(range(0, 500, 5))
    for key in keys:
        bloom.add(key)
    assert all(bloom.might_contain(key) for key in keys)


def test_false_positive_rate_near_target():
    rng = random.Random(5)
    keys = rng.sample(range(10**9), 2000)
    bloom = BloomFilter.for_items(keys, fp_rate=0.01)
    probes = rng.sample(range(10**9, 2 * 10**9), 20_000)
    false_positives = sum(1 for p in probes if bloom.might_contain(p))
    assert false_positives / len(probes) < 0.03  # 3x headroom on 1%


def test_contains_dunder():
    bloom = BloomFilter.for_items([1, 2, 3])
    assert 1 in bloom
    assert 2 in bloom


def test_negative_keys():
    bloom = BloomFilter(64, 2)
    with pytest.raises(ValueError):
        bloom.add(-1)
    assert not bloom.might_contain(-5)


def test_empty_filter_rejects_everything():
    bloom = BloomFilter(64, 2)
    assert not any(bloom.might_contain(k) for k in range(100))


def test_optimal_parameters_shape():
    m, k = optimal_parameters(1000, 0.01)
    assert m >= 1000  # roughly 9.6 bits/key at 1%
    assert 1 <= k <= 20
    m2, _ = optimal_parameters(1000, 0.001)
    assert m2 > m  # lower rate needs more bits


def test_optimal_parameters_validation():
    with pytest.raises(ValueError):
        optimal_parameters(10, 1.5)
    assert optimal_parameters(0, 0.01) == (8, 1)


def test_deterministic_across_instances():
    a = BloomFilter(256, 3)
    b = BloomFilter(256, 3)
    for key in range(50):
        a.add(key)
        b.add(key)
    assert all(a.might_contain(k) == b.might_contain(k) for k in range(200))


def test_size_and_fill():
    bloom = BloomFilter(80, 2)
    assert bloom.size_bytes() == 10
    assert bloom.fill_ratio() == 0.0
    bloom.add(1)
    assert 0 < bloom.fill_ratio() <= 2 / 80


def test_invalid_construction():
    with pytest.raises(ValueError):
        BloomFilter(0, 1)
    with pytest.raises(ValueError):
        BloomFilter(8, 0)
