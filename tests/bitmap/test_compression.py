"""Codec roundtrips, framing, adaptive choice and malformed input."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.bitarray import BitArray
from repro.bitmap.compression import (
    CODECS,
    CodecError,
    codec_name,
    compress,
    decompress,
    read_varint,
    write_varint,
)


# --------------------------------------------------------------------------- #
# varints
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
def test_varint_roundtrip(value):
    out = bytearray()
    write_varint(value, out)
    decoded, offset = read_varint(bytes(out), 0)
    assert decoded == value
    assert offset == len(out)


def test_varint_negative_rejected():
    with pytest.raises(ValueError):
        write_varint(-1, bytearray())


def test_varint_truncated_rejected():
    out = bytearray()
    write_varint(300, out)
    with pytest.raises(CodecError):
        read_varint(bytes(out[:-1]), 0)


# --------------------------------------------------------------------------- #
# per-codec roundtrips
# --------------------------------------------------------------------------- #

SAMPLES = [
    BitArray(1),
    BitArray.ones(1),
    BitArray(8),
    BitArray.ones(8),
    BitArray.from_positions(8, [0, 7]),
    BitArray.from_positions(64, [0, 31, 32, 63]),
    BitArray.from_positions(100, [0]),
    BitArray.from_positions(100, range(50)),
    BitArray.ones(257),
    BitArray.from_positions(1000, [999]),
]


@pytest.mark.parametrize("codec", sorted(CODECS))
@pytest.mark.parametrize("bits", SAMPLES, ids=lambda b: f"{b.nbits}b{b.count()}s")
def test_roundtrip_every_codec(codec, bits):
    blob = compress(bits, codec)
    assert decompress(blob) == bits
    assert codec_name(blob) == codec


def test_adaptive_picks_smallest():
    sparse_bits = BitArray.from_positions(2048, [1])
    blob = compress(sparse_bits, "adaptive")
    for codec in CODECS:
        assert len(blob) <= len(compress(sparse_bits, codec))
    assert decompress(blob) == sparse_bits


def test_adaptive_sparse_wins_on_sparse_input():
    bits = BitArray.from_positions(2048, [0, 512, 1024])
    assert codec_name(compress(bits, "adaptive")) == "sparse"


def test_adaptive_beats_raw_substantially_on_sparse():
    bits = BitArray.from_positions(4096, [7])
    raw = compress(bits, "raw")
    adaptive = compress(bits, "adaptive")
    assert len(adaptive) < len(raw) / 20


def test_unknown_codec_rejected():
    with pytest.raises(CodecError):
        compress(BitArray(4), "gzip")


def test_empty_blob_rejected():
    with pytest.raises(CodecError):
        decompress(b"")


def test_unknown_codec_id_rejected():
    with pytest.raises(CodecError):
        decompress(bytes([200, 4]))


def test_raw_wrong_length_rejected():
    blob = bytearray(compress(BitArray(16), "raw"))
    with pytest.raises(CodecError):
        decompress(bytes(blob[:-1]))


def test_rle_zero_run_rejected():
    # frame: codec=2, nbits=4, first value 0, then a zero-length run
    with pytest.raises(CodecError):
        decompress(bytes([2, 4, 0, 0]))


def test_sparse_position_overflow_rejected():
    # frame: codec=1, nbits=2, count=1, gap=5 -> position 4 > width
    with pytest.raises(CodecError):
        decompress(bytes([1, 2, 1, 5]))


bit_arrays = st.integers(min_value=1, max_value=300).flatmap(
    lambda n: st.builds(
        BitArray.from_positions,
        st.just(n),
        st.sets(st.integers(min_value=0, max_value=n - 1)),
    )
)


@given(bit_arrays, st.sampled_from(sorted(CODECS) + ["adaptive"]))
def test_roundtrip_property(bits, codec):
    assert decompress(compress(bits, codec)) == bits


@given(bit_arrays)
def test_adaptive_is_minimal_property(bits):
    adaptive_len = len(compress(bits, "adaptive"))
    assert adaptive_len == min(len(compress(bits, c)) for c in CODECS)
