"""BitArray semantics, including the hypothesis-checked algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.bitarray import BitArray


def test_new_array_is_zero():
    bits = BitArray(10)
    assert bits.count() == 0
    assert not bits.any()
    assert list(bits.positions()) == []


def test_set_get_clear():
    bits = BitArray(8)
    bits.set(3)
    assert bits.get(3)
    assert not bits.get(2)
    bits.set(3, False)
    assert not bits.get(3)


def test_indexing_dunders():
    bits = BitArray(4)
    bits[2] = True
    assert bits[2]
    bits[2] = False
    assert not bits[2]


def test_out_of_range_raises():
    bits = BitArray(4)
    with pytest.raises(IndexError):
        bits.get(4)
    with pytest.raises(IndexError):
        bits.set(-1)


def test_from_positions_and_positions_roundtrip():
    bits = BitArray.from_positions(16, [0, 5, 15])
    assert list(bits.positions()) == [0, 5, 15]
    assert bits.count() == 3


def test_from_positions_out_of_range():
    with pytest.raises(IndexError):
        BitArray.from_positions(4, [4])


def test_ones():
    bits = BitArray.ones(5)
    assert bits.count() == 5
    assert list(bits.positions()) == [0, 1, 2, 3, 4]


def test_width_zero():
    bits = BitArray(0)
    assert bits.count() == 0
    assert list(bits.runs()) == []


def test_mask_beyond_width_rejected():
    with pytest.raises(ValueError):
        BitArray(2, mask=0b100)


def test_runs():
    bits = BitArray.from_positions(8, [0, 1, 4])
    assert list(bits.runs()) == [(True, 2), (False, 2), (True, 1), (False, 3)]


def test_runs_all_zero():
    assert list(BitArray(5).runs()) == [(False, 5)]


def test_or_and_xor():
    a = BitArray.from_positions(8, [0, 1])
    b = BitArray.from_positions(8, [1, 2])
    assert list((a | b).positions()) == [0, 1, 2]
    assert list((a & b).positions()) == [1]
    assert list((a ^ b).positions()) == [0, 2]


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        BitArray(4) | BitArray(5)


def test_bytes_roundtrip():
    bits = BitArray.from_positions(19, [0, 8, 18])
    assert BitArray.from_bytes(19, bits.to_bytes()) == bits


def test_equality_and_copy():
    a = BitArray.from_positions(6, [2, 4])
    b = a.copy()
    assert a == b
    b.set(0)
    assert a != b


def test_repr_shows_bits():
    bits = BitArray.from_positions(3, [0])
    assert repr(bits) == "BitArray('100')"


bit_sets = st.integers(min_value=1, max_value=64).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.sets(st.integers(min_value=0, max_value=n - 1)),
        st.sets(st.integers(min_value=0, max_value=n - 1)),
    )
)


@given(bit_sets)
def test_algebra_matches_set_semantics(data):
    nbits, xs, ys = data
    a = BitArray.from_positions(nbits, xs)
    b = BitArray.from_positions(nbits, ys)
    assert set((a | b).positions()) == xs | ys
    assert set((a & b).positions()) == xs & ys
    assert set((a ^ b).positions()) == xs ^ ys
    assert a.count() == len(xs)


@given(bit_sets)
def test_runs_cover_width_exactly(data):
    nbits, xs, _ = data
    bits = BitArray.from_positions(nbits, xs)
    runs = list(bits.runs())
    assert sum(length for _, length in runs) == nbits
    # runs alternate
    for (v1, _), (v2, _) in zip(runs, runs[1:]):
        assert v1 != v2
