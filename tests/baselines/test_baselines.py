"""The three comparison methods: correctness and cost-model behaviour."""

import pytest

from repro.baselines.boolean_first import (
    boolean_first_skyline,
    boolean_first_topk,
    build_boolean_indexes,
    select_tuples,
)
from repro.baselines.domination_first import (
    bbs_skyline,
    domination_first_skyline,
    ranking_topk,
)
from repro.baselines.index_merge import index_merge_topk
from repro.baselines.naive import naive_skyline, naive_topk
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.predicates import BooleanPredicate
from repro.query.stats import QueryStats


def truth_points(system, predicate):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


# --------------------------------------------------------------------------- #
# Boolean-first
# --------------------------------------------------------------------------- #


def test_boolean_indexes_cover_all_dims(small_system):
    assert set(small_system.indexes) == set(
        small_system.relation.schema.boolean_dims
    )
    index = small_system.indexes["A1"]
    expected = [
        tid
        for tid in small_system.relation.tids()
        if small_system.relation.bool_value(tid, "A1") == 3
    ]
    assert sorted(index.search(3)) == expected


@pytest.mark.parametrize("n_conjuncts", [1, 2, 3])
def test_boolean_first_skyline_correct(small_system, rng, n_conjuncts):
    predicate = sample_predicate(small_system.relation, n_conjuncts, rng)
    tids, stats = boolean_first_skyline(
        small_system.relation, small_system.indexes, predicate
    )
    assert sorted(tids) == sorted(
        naive_skyline(truth_points(small_system, predicate))
    )
    assert stats.total_io() > 0
    assert stats.peak_heap >= len(tids)


def test_boolean_first_empty_predicate_scans(small_system):
    tids, stats = boolean_first_skyline(
        small_system.relation, small_system.indexes, BooleanPredicate()
    )
    assert sorted(tids) == sorted(
        naive_skyline(list(small_system.relation.pref_points()))
    )
    assert stats.btable == small_system.relation.heap_page_count()


def test_boolean_first_topk_correct(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    fn = sample_linear_function(2, rng)
    ranked, stats = boolean_first_topk(
        small_system.relation, small_system.indexes, fn, 10, predicate
    )
    expected = naive_topk(truth_points(small_system, predicate), fn, 10)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]


def test_select_tuples_prefers_index_for_selective_predicates(
    fresh_system, rng
):
    # Cardinality 100 over 2000 rows: ~20-tid postings, so the index path
    # must beat the full scan.
    system = fresh_system(n_tuples=2000, cardinality=100, seed=14)
    predicate = sample_predicate(system.relation, 1, rng)
    stats = QueryStats()
    selected = select_tuples(
        system.relation, system.indexes, predicate, stats
    )
    assert sorted(selected) == [
        tid
        for tid in system.relation.tids()
        if predicate.matches(system.relation, tid)
    ]
    assert stats.btable < system.relation.heap_page_count()
    assert stats.bindex > 0


def test_select_tuples_prefers_scan_for_wide_predicates(small_system, rng):
    # Cardinality 8 over 1500 rows: a posting touches every heap page, so
    # the planner should fall back to the plain table scan (no index I/O).
    predicate = sample_predicate(small_system.relation, 1, rng)
    stats = QueryStats()
    select_tuples(small_system.relation, small_system.indexes, predicate, stats)
    assert stats.btable == small_system.relation.heap_page_count()
    assert stats.bindex == 0


def test_select_tuples_peak_heap_is_candidate_count(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    tids, stats = boolean_first_skyline(
        small_system.relation, small_system.indexes, predicate
    )
    candidates = sum(
        1
        for tid in small_system.relation.tids()
        if predicate.matches(small_system.relation, tid)
    )
    assert stats.peak_heap == candidates


# --------------------------------------------------------------------------- #
# Domination-first (BBS + minimal probing)
# --------------------------------------------------------------------------- #


def test_bbs_skyline_no_predicate(small_system):
    tids, stats = bbs_skyline(small_system.rtree)
    assert sorted(tids) == sorted(
        naive_skyline(list(small_system.relation.pref_points()))
    )
    assert stats.dblock > 0
    assert stats.dbool == 0


@pytest.mark.parametrize("n_conjuncts", [1, 2, 3])
def test_domination_first_correct(small_system, rng, n_conjuncts):
    predicate = sample_predicate(small_system.relation, n_conjuncts, rng)
    tids, stats, _ = domination_first_skyline(
        small_system.relation, small_system.rtree, predicate
    )
    assert sorted(tids) == sorted(
        naive_skyline(truth_points(small_system, predicate))
    )
    assert stats.dbool >= len(tids)  # at least one probe per result
    assert stats.verified == stats.dbool


def test_domination_failed_candidates_do_not_prune(small_system, rng):
    """The subtle bug this baseline invites: a verified-out tuple must not
    dominate later candidates.  With selective predicates, a wrong
    implementation returns too few skyline points."""
    for _ in range(5):
        predicate = sample_predicate(small_system.relation, 3, rng)
        tids, _, _ = domination_first_skyline(
            small_system.relation, small_system.rtree, predicate
        )
        assert sorted(tids) == sorted(
            naive_skyline(truth_points(small_system, predicate))
        )


def test_ranking_topk_correct(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    fn = sample_linear_function(2, rng)
    ranked, stats, _ = ranking_topk(
        small_system.relation, small_system.rtree, fn, 10, predicate
    )
    expected = naive_topk(truth_points(small_system, predicate), fn, 10)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]
    assert stats.dbool >= 10


def test_minimal_probing_is_lazy(small_system, rng):
    """Far fewer verifications than candidates surfaced by plain BBS over
    the whole data set — only reported candidates are probed."""
    predicate = sample_predicate(small_system.relation, 1, rng)
    _, stats, _ = domination_first_skyline(
        small_system.relation, small_system.rtree, predicate
    )
    assert stats.verified < len(small_system.relation)


# --------------------------------------------------------------------------- #
# Index merge
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("n_conjuncts", [1, 2, 3])
def test_index_merge_topk_correct(small_system, rng, n_conjuncts):
    predicate = sample_predicate(small_system.relation, n_conjuncts, rng)
    fn = sample_linear_function(2, rng)
    ranked, stats = index_merge_topk(
        small_system.relation,
        small_system.rtree,
        small_system.indexes,
        fn,
        10,
        predicate,
    )
    expected = naive_topk(truth_points(small_system, predicate), fn, 10)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]
    assert stats.bindex > 0  # the online join is paid


def test_index_merge_no_predicate(small_system, rng):
    fn = sample_linear_function(2, rng)
    ranked, stats = index_merge_topk(
        small_system.relation,
        small_system.rtree,
        small_system.indexes,
        fn,
        5,
        BooleanPredicate(),
    )
    expected = naive_topk(list(small_system.relation.pref_points()), fn, 5)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]
    assert stats.bindex == 0


def test_naive_topk_tie_break_and_bounds():
    points = [(0, (1.0,)), (1, (1.0,)), (2, (2.0,))]
    from repro.query.ranking import LinearFunction

    ranked = naive_topk(points, LinearFunction([1.0]), 2)
    assert ranked == [(0, 1.0), (1, 1.0)]
    assert naive_topk(points, LinearFunction([1.0]), 10) == [
        (0, 1.0),
        (1, 1.0),
        (2, 2.0),
    ]
    assert naive_skyline([]) == []


def test_select_tuples_excludes_tombstoned_rows_on_both_paths():
    """Deleted rows stay in heap pages and B+-tree postings, but neither
    access path may return them."""
    from repro.cube.relation import Relation
    from repro.cube.schema import Schema
    from repro.storage.counters import BINDEX
    from repro.storage.disk import SimulatedDisk

    disk = SimulatedDisk(page_size=128)  # many heap pages => index scan wins
    schema = Schema(("A",), ("X", "Y"))
    bool_rows = [(i % 10,) for i in range(200)]
    pref_rows = [(i / 200, 1 - i / 200) for i in range(200)]
    relation = Relation(schema, bool_rows, pref_rows, disk=disk)
    indexes = build_boolean_indexes(relation, disk=disk)
    for tid in range(0, 200, 7):
        relation.tombstone(tid)
    live = set(relation.live_tids())

    # Table scan (empty predicate always scans the heap).
    stats = QueryStats()
    assert set(select_tuples(relation, indexes, BooleanPredicate(), stats)) == live

    # Index scan: postings still hold the dead tids; verification drops them.
    stats = QueryStats()
    selected = select_tuples(
        relation, indexes, BooleanPredicate({"A": 3}), stats
    )
    assert stats.counters.get(BINDEX) > 0  # the index path actually ran
    assert set(selected) == {
        tid for tid in live if relation.bool_value(tid, "A") == 3
    }
    assert set(indexes["A"].search(3)) - live  # dead tids were candidates
