"""Classic skyline algorithms agree with the naive reference."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_skyline
from repro.baselines.skyline_algs import bnl_skyline, dnc_skyline, sfs_skyline

ALGORITHMS = [sfs_skyline, bnl_skyline, dnc_skyline]


def random_points(n, dims, seed):
    rng = random.Random(seed)
    return [
        (tid, tuple(rng.random() for _ in range(dims))) for tid in range(n)
    ]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_empty(algorithm):
    assert algorithm([]) == []


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_point(algorithm):
    assert algorithm([(7, (0.5, 0.5))]) == [7]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_duplicates_survive(algorithm):
    points = [(0, (0.5, 0.5)), (1, (0.5, 0.5)), (2, (0.5, 0.5))]
    assert sorted(algorithm(points)) == [0, 1, 2]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_chain_has_single_winner(algorithm):
    points = [(i, (i / 10, i / 10)) for i in range(10)]
    assert algorithm(points) == [0]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_anti_chain_all_survive(algorithm):
    points = [(i, (i / 10, 1 - i / 10)) for i in range(10)]
    assert sorted(algorithm(points)) == list(range(10))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dims", [2, 3, 4])
@pytest.mark.parametrize("seed", [1, 2])
def test_matches_naive_random(algorithm, dims, seed):
    points = random_points(250, dims, seed)
    assert sorted(algorithm(points)) == sorted(naive_skyline(points))


def test_bnl_small_window_still_correct():
    points = random_points(300, 2, 5)
    assert sorted(bnl_skyline(points, window=4)) == sorted(
        naive_skyline(points)
    )


def test_bnl_window_one():
    points = random_points(100, 2, 6)
    assert sorted(bnl_skyline(points, window=1)) == sorted(
        naive_skyline(points)
    )


def test_dnc_small_threshold():
    points = random_points(200, 3, 7)
    assert sorted(dnc_skyline(points, threshold=4)) == sorted(
        naive_skyline(points)
    )


small_point_sets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(small_point_sets)
def test_all_algorithms_agree_property(raw):
    """Low-cardinality grids force heavy ties — the hard case."""
    points = [(tid, (float(x), float(y))) for tid, (x, y) in enumerate(raw)]
    expected = sorted(naive_skyline(points))
    assert sorted(sfs_skyline(points)) == expected
    assert sorted(bnl_skyline(points, window=3)) == expected
    assert sorted(dnc_skyline(points, threshold=2)) == expected


def test_skyline_points_are_undominated_and_complete():
    """Definitional check on a bigger instance."""
    from repro.rtree.geometry import dominates

    points = random_points(500, 3, 11)
    skyline = set(sfs_skyline(points))
    by_tid = dict(points)
    for tid, point in points:
        dominated = any(
            dominates(by_tid[s], point) for s in skyline if s != tid
        )
        assert (tid in skyline) == (not dominated)
