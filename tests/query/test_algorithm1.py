"""Algorithm 1 internals: strategies, pruning order, list bookkeeping."""

import pytest

from repro.baselines.naive import naive_skyline, naive_topk
from repro.query.algorithm1 import (
    HeapEntry,
    SearchState,
    SkylineStrategy,
    TopKStrategy,
    make_root_state,
    run_algorithm1,
)
from repro.query.ranking import LinearFunction
from repro.query.stats import QueryStats
from repro.rtree.bulk import bulk_load
from repro.rtree.geometry import Rect

import random


@pytest.fixture
def tree():
    rng = random.Random(99)
    points = [(tid, (rng.random(), rng.random())) for tid in range(300)]
    return bulk_load(points, dims=2, max_entries=6), points


def test_heap_entry_ordering():
    a = HeapEntry(key=1.0, seq=1, path=())
    b = HeapEntry(key=1.0, seq=2, path=())
    c = HeapEntry(key=0.5, seq=3, path=())
    assert c < a < b


def test_skyline_strategy_prune_and_add():
    strategy = SkylineStrategy(dims=2)
    entry = HeapEntry(key=1.0, seq=1, path=(1,), tid=0, point=(0.4, 0.6))
    assert not strategy.prune(entry)
    strategy.add_result(entry)
    dominated = HeapEntry(key=1.5, seq=2, path=(2,), tid=1, point=(0.5, 0.7))
    assert strategy.prune(dominated)
    incomparable = HeapEntry(key=1.0, seq=3, path=(3,), tid=2, point=(0.7, 0.3))
    assert not strategy.prune(incomparable)


def test_topk_strategy_bound():
    strategy = TopKStrategy(LinearFunction([1.0, 1.0]), k=2)
    for score, tid in [(0.3, 0), (0.5, 1)]:
        strategy.add_result(
            HeapEntry(key=score, seq=tid, path=(), tid=tid, point=(0, 0))
        )
    assert strategy.prune(HeapEntry(key=0.6, seq=9, path=()))
    assert strategy.prune(HeapEntry(key=0.5, seq=10, path=()))
    assert not strategy.prune(HeapEntry(key=0.4, seq=11, path=()))
    assert strategy.finished(0.5)
    assert not strategy.finished(0.49)


def test_topk_strategy_keeps_k_best():
    strategy = TopKStrategy(LinearFunction([1.0]), k=2)
    entries = [
        HeapEntry(key=s, seq=i, path=(), tid=i, point=(s,))
        for i, s in enumerate([0.9, 0.3, 0.5])
    ]
    kept = [strategy.add_result(e) for e in entries]
    assert kept == [True, True, True]  # 0.5 displaces 0.9
    assert strategy.scores == [0.3, 0.5]
    assert not strategy.add_result(
        HeapEntry(key=0.8, seq=9, path=(), tid=9, point=(0.8,))
    )


def test_topk_k_validation():
    with pytest.raises(ValueError):
        TopKStrategy(LinearFunction([1.0]), k=0)


def test_make_root_state_empty_tree():
    from repro.rtree.rtree import RTree

    tree = RTree(dims=2, max_entries=4, min_entries=2)
    state = make_root_state(tree, SkylineStrategy(2))
    assert state.heap == []


def test_run_skyline_without_boolean_matches_naive(tree):
    rtree, points = tree
    stats = QueryStats()
    state = run_algorithm1(rtree, SkylineStrategy(2), stats)
    got = {e.tid for e in state.results}
    assert got == set(naive_skyline(points))
    assert stats.results == len(got)
    assert stats.nodes_expanded > 0
    assert stats.peak_heap > 0


def test_run_topk_matches_naive(tree):
    rtree, points = tree
    fn = LinearFunction([0.7, 1.3])
    stats = QueryStats()
    state = run_algorithm1(rtree, TopKStrategy(fn, 10), stats)
    got = [(e.tid, e.key) for e in state.results]
    expected = naive_topk(points, fn, 10)
    assert [round(s, 9) for _, s in got] == [round(s, 9) for _, s in expected]


def test_results_pop_in_key_order(tree):
    rtree, points = tree
    state = run_algorithm1(rtree, SkylineStrategy(2), QueryStats())
    keys = [e.key for e in state.results]
    assert keys == sorted(keys)


def test_topk_early_termination_leaves_heap(tree):
    rtree, _ = tree
    fn = LinearFunction([1.0, 1.0])
    state = run_algorithm1(rtree, TopKStrategy(fn, 5), QueryStats())
    assert len(state.results) == 5
    assert state.heap  # pending entries preserved for incremental reuse


def test_lists_cover_everything_for_skyline(tree):
    """At termination every generated entry ended in exactly one of result,
    b_list, d_list, or was expanded — so results + d_list covers the
    frontier (the Lemma 2 requirement)."""
    rtree, points = tree
    stats = QueryStats()
    state = run_algorithm1(rtree, SkylineStrategy(2), stats)
    assert state.heap == []
    assert not state.b_list  # no boolean predicate
    # Every data point is a result, in d_list, or below a d_list node.
    covered = {e.tid for e in state.results}
    pending = [e for e in state.d_list]
    while pending:
        entry = pending.pop()
        if entry.is_tuple:
            covered.add(entry.tid)
        else:
            for _, child in entry.node.live_entries():
                if child.is_leaf_entry:
                    covered.add(child.tid)
                else:
                    pending.append(
                        HeapEntry(0, 0, (), node=child.child)
                    )
    assert covered == {tid for tid, _ in points}


def test_keep_lists_false_skips_bookkeeping(tree):
    rtree, _ = tree
    state = run_algorithm1(
        rtree, SkylineStrategy(2), QueryStats(), keep_lists=False
    )
    assert state.d_list == [] and state.b_list == []


def test_verifier_filters_results(tree):
    rtree, points = tree
    allowed = {tid for tid, _ in points if tid % 2 == 0}
    stats = QueryStats()
    state = run_algorithm1(
        rtree,
        SkylineStrategy(2),
        stats,
        verifier=lambda tid: tid in allowed,
    )
    got = {e.tid for e in state.results}
    expected = set(
        naive_skyline([(t, p) for t, p in points if t in allowed])
    )
    assert got == expected
    assert stats.verified >= len(expected)
    assert stats.verify_failed == stats.verified - len(state.results)


def test_resume_from_state(tree):
    """Resuming with a reconstructed heap reproduces a fresh run."""
    rtree, points = tree
    first = run_algorithm1(rtree, SkylineStrategy(2), QueryStats())
    resume = SearchState()
    resume.heap = list(first.results) + list(first.d_list)
    resume.seq = max(e.seq for e in resume.heap)
    second = run_algorithm1(
        rtree, SkylineStrategy(2), QueryStats(), state=resume
    )
    assert {e.tid for e in second.results} == {e.tid for e in first.results}
