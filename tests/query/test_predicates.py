"""Boolean predicates and OLAP navigation."""

import pytest

from repro.cube.cuboid import Cell
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.query.predicates import BooleanPredicate


@pytest.fixture
def relation():
    schema = Schema(("A", "B"), ("X",))
    return Relation(
        schema,
        [("a1", "b1"), ("a1", "b2"), ("a2", "b1")],
        [(0.1,), (0.2,), (0.3,)],
    )


def test_empty_predicate():
    predicate = BooleanPredicate()
    assert predicate.is_empty()
    assert len(predicate) == 0
    assert predicate.atomic_cells() == ()
    with pytest.raises(ValueError):
        predicate.cell()


def test_conjuncts_sorted_and_immutable():
    predicate = BooleanPredicate({"B": "b1", "A": "a1"})
    assert predicate.dims() == ("A", "B")
    with pytest.raises(AttributeError):
        predicate.x = 1


def test_cell_and_atoms():
    predicate = BooleanPredicate({"A": "a1", "B": "b2"})
    assert predicate.cell() == Cell(("A", "B"), ("a1", "b2"))
    assert predicate.atomic_cells() == (
        Cell(("A",), ("a1",)),
        Cell(("B",), ("b2",)),
    )


def test_matches(relation):
    predicate = BooleanPredicate({"A": "a1", "B": "b1"})
    assert predicate.matches(relation, 0)
    assert not predicate.matches(relation, 1)
    assert not predicate.matches(relation, 2)
    assert BooleanPredicate().matches(relation, 0)  # φ matches everything


def test_drill_down():
    base = BooleanPredicate({"A": "a1"})
    drilled = base.drill_down("B", "b1")
    assert drilled.conjuncts == {"A": "a1", "B": "b1"}
    assert base.conjuncts == {"A": "a1"}  # original untouched
    with pytest.raises(ValueError):
        drilled.drill_down("A", "a2")  # already constrained


def test_roll_up():
    predicate = BooleanPredicate({"A": "a1", "B": "b1"})
    rolled = predicate.roll_up("B")
    assert rolled.conjuncts == {"A": "a1"}
    assert rolled.roll_up("A").is_empty()
    with pytest.raises(ValueError):
        rolled.roll_up("B")


def test_equality_and_hash():
    a = BooleanPredicate({"A": 1, "B": 2})
    b = BooleanPredicate({"B": 2, "A": 1})
    assert a == b
    assert hash(a) == hash(b)
    assert a != BooleanPredicate({"A": 1})


def test_repr():
    assert "φ" in repr(BooleanPredicate())
    assert "A=1" in repr(BooleanPredicate({"A": 1}))


def test_iteration():
    predicate = BooleanPredicate({"B": 2, "A": 1})
    assert list(predicate) == [("A", 1), ("B", 2)]
