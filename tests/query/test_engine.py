"""The preference engine: standard queries and Lemma 2 drill/roll chains."""

import pytest

from repro.baselines.naive import naive_skyline, naive_topk
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.predicates import BooleanPredicate


def truth_skyline(system, predicate):
    relation = system.relation
    return set(
        naive_skyline(
            [
                (tid, relation.pref_point(tid))
                for tid in relation.tids()
                if predicate.matches(relation, tid)
            ]
        )
    )


def anchored_value(system, predicate, dim, rng):
    """A value for ``dim`` co-occurring with ``predicate`` (non-empty drill)."""
    matching = [
        tid
        for tid in system.relation.tids()
        if predicate.matches(system.relation, tid)
    ]
    anchor = rng.choice(matching)
    return system.relation.bool_value(anchor, dim)


def test_skyline_query_result_fields(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.skyline(predicate)
    assert result.kind == "skyline"
    assert result.predicate == predicate
    assert result.scores is None
    assert len(result) == len(result.tids)
    assert result.stats.elapsed_seconds > 0


def test_topk_query_result_fields(small_system, rng):
    fn = sample_linear_function(2, rng)
    result = small_system.engine.topk(fn, 5)
    assert result.kind == "topk"
    assert result.k == 5
    assert result.fn is fn
    assert len(result.scores) == len(result.tids) == 5


def test_empty_predicate_defaults(small_system):
    result = small_system.engine.skyline()
    assert result.predicate.is_empty()
    assert set(result.tids) == truth_skyline(small_system, BooleanPredicate())


def test_drill_down_matches_fresh_query(small_system, rng):
    for _ in range(4):
        base_pred = sample_predicate(small_system.relation, 1, rng)
        base = small_system.engine.skyline(base_pred)
        dim = rng.choice(
            [
                d
                for d in small_system.relation.schema.boolean_dims
                if d not in base_pred.dims()
            ]
        )
        value = anchored_value(small_system, base_pred, dim, rng)
        drilled = small_system.engine.drill_down(base, dim, value)
        expected = truth_skyline(
            small_system, base_pred.drill_down(dim, value)
        )
        assert set(drilled.tids) == expected


def test_drill_down_is_cheaper_than_fresh(small_system, rng):
    base_pred = sample_predicate(small_system.relation, 1, rng)
    base = small_system.engine.skyline(base_pred)
    dim = next(
        d
        for d in small_system.relation.schema.boolean_dims
        if d not in base_pred.dims()
    )
    value = anchored_value(small_system, base_pred, dim, rng)
    drilled = small_system.engine.drill_down(base, dim, value)
    fresh = small_system.engine.skyline(base_pred.drill_down(dim, value))
    assert set(drilled.tids) == set(fresh.tids)
    assert drilled.stats.sblock <= fresh.stats.sblock


def test_roll_up_matches_fresh_query(small_system, rng):
    for _ in range(4):
        predicate = sample_predicate(small_system.relation, 2, rng)
        base = small_system.engine.skyline(predicate)
        dim = rng.choice(predicate.dims())
        rolled = small_system.engine.roll_up(base, dim)
        expected = truth_skyline(small_system, predicate.roll_up(dim))
        assert set(rolled.tids) == expected


def test_roll_up_to_empty_predicate(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    base = small_system.engine.skyline(predicate)
    rolled = small_system.engine.roll_up(base, predicate.dims()[0])
    assert rolled.predicate.is_empty()
    assert set(rolled.tids) == truth_skyline(small_system, BooleanPredicate())


def test_chained_drill_downs(small_system, rng):
    predicate = sample_predicate(small_system.relation, 3, rng)
    dims = predicate.dims()
    conjuncts = predicate.conjuncts
    current = small_system.engine.skyline(
        BooleanPredicate({dims[0]: conjuncts[dims[0]]})
    )
    for dim in dims[1:]:
        current = small_system.engine.drill_down(current, dim, conjuncts[dim])
        assert set(current.tids) == truth_skyline(
            small_system, current.predicate
        )
    # And back up the same chain.
    for dim in reversed(dims[1:]):
        current = small_system.engine.roll_up(current, dim)
        assert set(current.tids) == truth_skyline(
            small_system, current.predicate
        )


def test_drill_then_roll_is_identity(small_system, rng):
    base_pred = sample_predicate(small_system.relation, 1, rng)
    base = small_system.engine.skyline(base_pred)
    dim = next(
        d
        for d in small_system.relation.schema.boolean_dims
        if d not in base_pred.dims()
    )
    value = anchored_value(small_system, base_pred, dim, rng)
    drilled = small_system.engine.drill_down(base, dim, value)
    back = small_system.engine.roll_up(drilled, dim)
    assert set(back.tids) == set(base.tids)


def test_topk_drill_down(small_system, rng):
    fn = sample_linear_function(2, rng)
    base_pred = sample_predicate(small_system.relation, 1, rng)
    base = small_system.engine.topk(fn, 10, base_pred)
    dim = next(
        d
        for d in small_system.relation.schema.boolean_dims
        if d not in base_pred.dims()
    )
    value = anchored_value(small_system, base_pred, dim, rng)
    drilled = small_system.engine.drill_down(base, dim, value)
    relation = small_system.relation
    new_pred = base_pred.drill_down(dim, value)
    expected = naive_topk(
        [
            (tid, relation.pref_point(tid))
            for tid in relation.tids()
            if new_pred.matches(relation, tid)
        ],
        fn,
        10,
    )
    assert [round(s, 9) for s in drilled.scores] == [
        round(s, 9) for s, in [(s,) for _, s in expected]
    ]


def test_topk_roll_up(small_system, rng):
    fn = sample_linear_function(2, rng)
    predicate = sample_predicate(small_system.relation, 2, rng)
    base = small_system.engine.topk(fn, 8, predicate)
    dim = predicate.dims()[0]
    rolled = small_system.engine.roll_up(base, dim)
    relation = small_system.relation
    new_pred = predicate.roll_up(dim)
    expected = naive_topk(
        [
            (tid, relation.pref_point(tid))
            for tid in relation.tids()
            if new_pred.matches(relation, tid)
        ],
        fn,
        8,
    )
    assert [round(s, 9) for s in rolled.scores] == [
        round(s, 9) for _, s in expected
    ]
