"""Disjunctive (OR) predicates via signature union."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_skyline, naive_topk
from repro.core.pcube import EmptyReader, SignatureAdapter
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.disjunction import (
    AnyOfReader,
    matches_dnf,
    reader_for_dnf,
    skyline_dnf,
    topk_dnf,
)
from repro.query.predicates import BooleanPredicate
from repro.system import build_system


def qualifying(system, disjuncts):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if matches_dnf(relation, disjuncts, tid)
    ]


def sample_disjuncts(system, rng, n=2):
    return [sample_predicate(system.relation, 1, rng) for _ in range(n)]


@pytest.mark.parametrize("eager", [False, True])
def test_skyline_dnf_matches_naive(small_system, rng, eager):
    for n_disjuncts in (1, 2, 3):
        disjuncts = sample_disjuncts(small_system, rng, n_disjuncts)
        tids, stats = skyline_dnf(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            disjuncts,
            eager_assembly=eager,
        )
        expected = set(naive_skyline(qualifying(small_system, disjuncts)))
        assert set(tids) == expected
        assert stats.results == len(expected)


@pytest.mark.parametrize("eager", [False, True])
def test_topk_dnf_matches_naive(small_system, rng, eager):
    disjuncts = sample_disjuncts(small_system, rng, 2)
    fn = sample_linear_function(2, rng)
    ranked, _ = topk_dnf(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        fn,
        10,
        disjuncts,
        eager_assembly=eager,
    )
    expected = naive_topk(qualifying(small_system, disjuncts), fn, 10)
    assert [round(s, 9) for _, s in ranked] == [
        round(s, 9) for _, s in expected
    ]


def test_dnf_with_conjunctive_disjuncts(small_system, rng):
    """(A=a AND B=b) OR (C=c): mixed-width disjuncts."""
    first = sample_predicate(small_system.relation, 2, rng)
    second = sample_predicate(small_system.relation, 1, rng)
    disjuncts = [first, second]
    tids, _ = skyline_dnf(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        disjuncts,
    )
    expected = set(naive_skyline(qualifying(small_system, disjuncts)))
    assert set(tids) == expected


def test_tautological_disjunct_disables_pruning(small_system):
    reader = reader_for_dnf(
        small_system.pcube,
        [BooleanPredicate({"A1": 1}), BooleanPredicate()],
    )
    assert reader is None


def test_all_unsatisfiable_disjuncts(small_system):
    reader = reader_for_dnf(
        small_system.pcube,
        [BooleanPredicate({"A1": 777}), BooleanPredicate({"A2": 888})],
    )
    assert isinstance(reader, EmptyReader)
    tids, stats = skyline_dnf(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        [BooleanPredicate({"A1": 777})],
    )
    assert tids == []
    assert stats.sblock == 0


def test_unsatisfiable_disjunct_is_dropped(small_system, rng):
    live = sample_predicate(small_system.relation, 1, rng)
    disjuncts = [live, BooleanPredicate({"A1": 777})]
    tids, _ = skyline_dnf(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        disjuncts,
    )
    expected = set(naive_skyline(qualifying(small_system, [live])))
    assert set(tids) == expected


def test_eager_reader_is_one_union_signature(small_system, rng):
    disjuncts = sample_disjuncts(small_system, rng, 2)
    reader = reader_for_dnf(small_system.pcube, disjuncts, eager=True)
    assert isinstance(reader, SignatureAdapter)
    # The union signature admits exactly the union of tuple paths.
    paths = small_system.rtree.all_paths()
    for tid in small_system.relation.tids():
        assert reader.check_path(paths[tid]) == matches_dnf(
            small_system.relation, disjuncts, tid
        )


def test_eager_never_reads_more_blocks_than_lazy(small_system, rng):
    for _ in range(3):
        disjuncts = [
            sample_predicate(small_system.relation, 2, rng)
            for _ in range(2)
        ]
        _, lazy_stats = skyline_dnf(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            disjuncts,
            eager_assembly=False,
        )
        _, eager_stats = skyline_dnf(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            disjuncts,
            eager_assembly=True,
        )
        assert eager_stats.sblock <= lazy_stats.sblock


def test_reader_validation(small_system):
    with pytest.raises(ValueError):
        reader_for_dnf(small_system.pcube, [])
    with pytest.raises(ValueError):
        AnyOfReader([])


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=50,
    ),
    v1=st.integers(min_value=0, max_value=2),
    v2=st.integers(min_value=0, max_value=2),
    eager=st.booleans(),
)
def test_dnf_property(rows, v1, v2, eager):
    schema = Schema(("A", "B"), ("X", "Y"))
    relation = Relation(
        schema,
        [(a, b) for a, b, _, _ in rows],
        [(x / 7.0, y / 7.0) for _, _, x, y in rows],
    )
    system = build_system(relation, fanout=4, with_indexes=False)
    disjuncts = [BooleanPredicate({"A": v1}), BooleanPredicate({"B": v2})]
    tids, _ = skyline_dnf(
        relation, system.rtree, system.pcube, disjuncts, eager_assembly=eager
    )
    expected = set(naive_skyline(qualifying(system, disjuncts)))
    assert set(tids) == expected
