"""Signature-method queries against ground truth, across configurations."""

import random

import pytest

from repro.baselines.naive import naive_skyline, naive_topk
from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.predicates import BooleanPredicate
from repro.query.skyline import skyline_signature
from repro.query.topk import topk_signature


def truth_points(system, predicate):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


@pytest.mark.parametrize("n_conjuncts", [0, 1, 2, 3])
def test_skyline_matches_naive(small_system, rng, n_conjuncts):
    for trial in range(3):
        if n_conjuncts:
            predicate = sample_predicate(small_system.relation, n_conjuncts, rng)
        else:
            predicate = BooleanPredicate()
        tids, stats, _ = skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
        )
        expected = set(naive_skyline(truth_points(small_system, predicate)))
        assert set(tids) == expected
        assert stats.results == len(expected)


@pytest.mark.parametrize("eager", [False, True])
def test_skyline_lazy_and_eager_assembly_agree(small_system, rng, eager):
    predicate = sample_predicate(small_system.relation, 2, rng)
    tids, _, _ = skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        predicate,
        eager_assembly=eager,
    )
    expected = set(naive_skyline(truth_points(small_system, predicate)))
    assert set(tids) == expected


def test_eager_assembly_never_reads_more_blocks(small_system, rng):
    """Exact intersection prunes at least as well as the lazy AND."""
    for _ in range(5):
        predicate = sample_predicate(small_system.relation, 2, rng)
        _, lazy_stats, _ = skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
            eager_assembly=False,
        )
        _, eager_stats, _ = skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
            eager_assembly=True,
        )
        assert eager_stats.sblock <= lazy_stats.sblock


def test_skyline_empty_selection(small_system):
    predicate = BooleanPredicate({"A1": 999})
    tids, stats, _ = skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        predicate,
    )
    assert tids == []
    # The root entry is boolean-pruned immediately: no R-tree blocks read.
    assert stats.sblock == 0


@pytest.mark.parametrize("k", [1, 5, 20, 100])
def test_topk_matches_naive(small_system, rng, k):
    predicate = sample_predicate(small_system.relation, 1, rng)
    fn = sample_linear_function(2, rng)
    ranked, stats, _ = topk_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        fn,
        k,
        predicate,
    )
    expected = naive_topk(truth_points(small_system, predicate), fn, k)
    assert len(ranked) == len(expected)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]
    # Scores come out sorted.
    scores = [s for _, s in ranked]
    assert scores == sorted(scores)


def test_topk_k_larger_than_selection(small_system, rng):
    predicate = sample_predicate(small_system.relation, 3, rng)
    fn = sample_linear_function(2, rng)
    qualifying = truth_points(small_system, predicate)
    ranked, _, _ = topk_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        fn,
        len(qualifying) + 50,
        predicate,
    )
    assert len(ranked) == len(qualifying)


def test_topk_with_distance_function(small_system, rng):
    from repro.data.workload import sample_target_function

    predicate = sample_predicate(small_system.relation, 1, rng)
    fn = sample_target_function(small_system.relation, rng)
    ranked, _, _ = topk_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        fn,
        10,
        predicate,
    )
    expected = naive_topk(truth_points(small_system, predicate), fn, 10)
    assert [round(s, 9) for _, s in ranked] == [round(s, 9) for _, s in expected]


def test_signature_reads_fewer_blocks_than_bbs(small_system, rng):
    """The headline mechanism: with a selective predicate, signature-guided
    search must expand no more nodes than predicate-blind BBS."""
    from repro.baselines.domination_first import domination_first_skyline

    for _ in range(5):
        predicate = sample_predicate(small_system.relation, 2, rng)
        _, sig_stats, _ = skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
        )
        _, dom_stats, _ = domination_first_skyline(
            small_system.relation, small_system.rtree, predicate
        )
        assert sig_stats.sblock <= dom_stats.dblock
        assert sig_stats.peak_heap <= dom_stats.peak_heap


def test_distribution_robustness(rng):
    """Correctness across data distributions (Figure 12's concern)."""
    from repro.data.synthetic import SyntheticConfig, generate_relation
    from repro.system import build_system

    for distribution in ("correlated", "anticorrelated", "clustered"):
        config = SyntheticConfig(
            n_tuples=600,
            n_boolean=2,
            cardinality=5,
            n_preference=3,
            distribution=distribution,
            seed=2,
        )
        relation = generate_relation(config)
        system = build_system(relation, fanout=8, with_indexes=False)
        predicate = sample_predicate(relation, 1, rng)
        tids, _, _ = skyline_signature(
            relation, system.rtree, system.pcube, predicate
        )
        expected = set(
            naive_skyline(
                [
                    (tid, relation.pref_point(tid))
                    for tid in relation.tids()
                    if predicate.matches(relation, tid)
                ]
            )
        )
        assert set(tids) == expected
