"""Subspace skylines: ``preference by N'1, ..., N'j`` (Section III)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_skyline
from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.workload import sample_predicate
from repro.query.algorithm1 import SkylineStrategy
from repro.query.predicates import BooleanPredicate
from repro.query.skyline import skyline_signature
from repro.system import build_system


def naive_subspace_skyline(points, positions):
    projected = [
        (tid, tuple(point[d] for d in positions)) for tid, point in points
    ]
    return naive_skyline(projected)


def truth_points(system, predicate):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


def test_strategy_validation():
    with pytest.raises(ValueError):
        SkylineStrategy(3, subspace=())
    with pytest.raises(ValueError):
        SkylineStrategy(3, subspace=(0, 0))
    with pytest.raises(ValueError):
        SkylineStrategy(3, subspace=(3,))


def test_full_subspace_equals_default(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    default_tids, _, _ = skyline_signature(
        small_system.relation, small_system.rtree, small_system.pcube, predicate
    )
    full_tids, _, _ = skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        predicate,
        preference_by=small_system.relation.schema.preference_dims,
    )
    assert set(default_tids) == set(full_tids)


@pytest.mark.parametrize("names", [("N1",), ("N2",), ("N1", "N2")])
def test_subspace_matches_naive(small_system, rng, names):
    predicate = sample_predicate(small_system.relation, 1, rng)
    positions = tuple(
        small_system.relation.schema.preference_position(n) for n in names
    )
    tids, _, _ = skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        predicate,
        preference_by=names,
    )
    expected = set(
        naive_subspace_skyline(truth_points(small_system, predicate), positions)
    )
    assert set(tids) == expected


def test_engine_subspace_and_drill_down(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.skyline(predicate, preference_by=("N2",))
    assert result.preference_by == ("N2",)
    positions = (small_system.relation.schema.preference_position("N2"),)
    assert set(result.tids) == set(
        naive_subspace_skyline(truth_points(small_system, predicate), positions)
    )
    # The subspace carries through incremental navigation.
    dim = next(
        d
        for d in small_system.relation.schema.boolean_dims
        if d not in predicate.dims()
    )
    anchor = next(
        t
        for t in small_system.relation.tids()
        if predicate.matches(small_system.relation, t)
    )
    drilled = small_system.engine.drill_down(
        result, dim, small_system.relation.bool_value(anchor, dim)
    )
    new_pred = predicate.drill_down(
        dim, small_system.relation.bool_value(anchor, dim)
    )
    assert set(drilled.tids) == set(
        naive_subspace_skyline(truth_points(small_system, new_pred), positions)
    )


def test_unknown_preference_dim_rejected(small_system):
    with pytest.raises(KeyError):
        small_system.engine.skyline(preference_by=("nope",))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    raw=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=40,
    ),
    subspace=st.sampled_from([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)]),
)
def test_subspace_property(raw, subspace):
    schema = Schema(("A",), ("N1", "N2", "N3"))
    bool_rows = [(a,) for a, *_ in raw]
    pref_rows = [(x / 5.0, y / 5.0, z / 5.0) for _, x, y, z in raw]
    relation = Relation(schema, bool_rows, pref_rows)
    system = build_system(relation, fanout=4, with_indexes=False)
    predicate = BooleanPredicate({"A": raw[0][0]})
    names = tuple(schema.preference_dims[d] for d in subspace)
    tids, _, _ = skyline_signature(
        relation, system.rtree, system.pcube, predicate, preference_by=names
    )
    qualifying = [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]
    assert set(tids) == set(naive_subspace_skyline(qualifying, subspace))
