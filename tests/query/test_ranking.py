"""Ranking functions: scores and the lower-bound contract."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.query.ranking import (
    LinearFunction,
    MonotoneFunction,
    SumFunction,
    WeightedSquaredDistance,
)
from repro.rtree.geometry import Rect


def test_linear_score():
    fn = LinearFunction([2.0, 3.0])
    assert fn.score((1.0, 1.0)) == 5.0


def test_linear_lower_bound_nonnegative_weights():
    fn = LinearFunction([1.0, 2.0])
    rect = Rect((1, 1), (5, 5))
    assert fn.lower_bound(rect) == 3.0


def test_linear_lower_bound_negative_weights():
    fn = LinearFunction([-1.0, 2.0])
    rect = Rect((1, 1), (5, 5))
    # minimum at (high, low): -5 + 2 = -3
    assert fn.lower_bound(rect) == -3.0


def test_linear_validation():
    with pytest.raises(ValueError):
        LinearFunction([])


def test_sum_function_is_skyline_key():
    fn = SumFunction(3)
    assert fn.score((1, 2, 3)) == 6.0
    assert fn.lower_bound(Rect((1, 2, 3), (9, 9, 9))) == 6.0


def test_weighted_distance_example_1():
    # (price - 15)² + 0.5 (mileage - 30)², in thousands.
    fn = WeightedSquaredDistance(target=(15.0, 30.0), weights=(1.0, 0.5))
    assert fn.score((15.0, 30.0)) == 0.0
    assert fn.score((16.0, 32.0)) == pytest.approx(1.0 + 0.5 * 4.0)


def test_weighted_distance_lower_bound_clamps():
    fn = WeightedSquaredDistance(target=(0.5, 0.5))
    inside = Rect((0, 0), (1, 1))
    assert fn.lower_bound(inside) == 0.0
    left = Rect((2, 0), (3, 1))
    assert fn.lower_bound(left) == pytest.approx(1.5**2)


def test_weighted_distance_validation():
    with pytest.raises(ValueError):
        WeightedSquaredDistance((0, 0), weights=(1.0,))
    with pytest.raises(ValueError):
        WeightedSquaredDistance((0, 0), weights=(-1.0, 1.0))


def test_monotone_function():
    fn = MonotoneFunction(max, name="max")
    assert fn.score((0.2, 0.8)) == 0.8
    assert fn.lower_bound(Rect((0.1, 0.3), (0.9, 0.9))) == 0.3


rect_and_point = st.tuples(
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
)


def make_rect(a, b):
    lows = [min(x, y) for x, y in zip(a, b)]
    highs = [max(x, y) for x, y in zip(a, b)]
    return Rect(lows, highs), lows, highs


@given(rect_and_point, st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=2))
def test_linear_lower_bound_property(data, weights):
    a, b, t = data
    rect, lows, highs = make_rect(a, b)
    fn = LinearFunction(weights)
    lb = fn.lower_bound(rect)
    # Any point inside (corners and the interpolated t) scores >= lb.
    for point in (
        lows,
        highs,
        [lo + frac * (hi - lo) for lo, hi, frac in zip(lows, highs, t)],
    ):
        assert fn.score(point) >= lb - 1e-9


@given(rect_and_point)
def test_distance_lower_bound_property(data):
    a, b, t = data
    rect, lows, highs = make_rect(a, b)
    fn = WeightedSquaredDistance(target=(0.4, 0.6), weights=(1.0, 2.0))
    lb = fn.lower_bound(rect)
    point = [lo + frac * (hi - lo) for lo, hi, frac in zip(lows, highs, t)]
    assert fn.score(point) >= lb - 1e-9


@given(rect_and_point)
def test_monotone_lower_bound_property(data):
    a, b, t = data
    rect, lows, highs = make_rect(a, b)
    fn = MonotoneFunction(lambda p: math.hypot(*p), name="l2-from-origin")
    point = [lo + frac * (hi - lo) for lo, hi, frac in zip(lows, highs, t)]
    assert fn.score(point) >= fn.lower_bound(rect) - 1e-9
