"""Section VII extensions: dynamic skylines and convex hull queries."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cube.relation import Relation
from repro.cube.schema import Schema
from repro.data.workload import sample_predicate
from repro.query.dynamic import (
    dynamic_skyline_signature,
    naive_dynamic_skyline,
    transform_point,
    transform_rect_lower,
)
from repro.query.hull import lower_hull_signature, naive_lower_hull
from repro.query.predicates import BooleanPredicate
from repro.rtree.geometry import Rect
from repro.system import build_system


# --------------------------------------------------------------------------- #
# the coordinate transform
# --------------------------------------------------------------------------- #


def test_transform_point():
    assert transform_point((0.2, 0.9), (0.5, 0.5)) == pytest.approx((0.3, 0.4))


def test_transform_rect_lower_cases():
    rect = Rect((0.2, 0.2), (0.4, 0.4))
    # query inside -> zero; left of -> lo - q; right of -> q - hi
    assert transform_rect_lower(rect, (0.3, 0.3)) == (0.0, 0.0)
    assert transform_rect_lower(rect, (0.0, 0.5)) == pytest.approx((0.2, 0.1))


@given(
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=2),
)
def test_transform_corner_is_a_lower_bound(a, b, q, t):
    lows = [min(x, y) for x, y in zip(a, b)]
    highs = [max(x, y) for x, y in zip(a, b)]
    rect = Rect(lows, highs)
    corner = transform_rect_lower(rect, q)
    inside = [lo + frac * (hi - lo) for lo, hi, frac in zip(lows, highs, t)]
    transformed = transform_point(inside, q)
    assert all(c <= v + 1e-12 for c, v in zip(corner, transformed))


# --------------------------------------------------------------------------- #
# dynamic skylines
# --------------------------------------------------------------------------- #


def truth_points(system, predicate):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if predicate.matches(relation, tid)
    ]


@pytest.mark.parametrize("n_conjuncts", [0, 1, 2])
def test_dynamic_skyline_matches_naive(small_system, rng, n_conjuncts):
    for _ in range(3):
        predicate = (
            sample_predicate(small_system.relation, n_conjuncts, rng)
            if n_conjuncts
            else BooleanPredicate()
        )
        query_point = (rng.random(), rng.random())
        tids, stats, _ = dynamic_skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            query_point,
            predicate,
        )
        expected = set(
            naive_dynamic_skyline(
                truth_points(small_system, predicate), query_point
            )
        )
        assert set(tids) == expected
        assert stats.results == len(expected)


def test_dynamic_skyline_at_origin_equals_static(small_system, rng):
    """With q at the origin the transform is the identity on [0,1]^d."""
    predicate = sample_predicate(small_system.relation, 1, rng)
    dynamic_tids, _, _ = dynamic_skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        (0.0, 0.0),
        predicate,
    )
    static = small_system.engine.skyline(predicate)
    assert set(dynamic_tids) == set(static.tids)


def test_dynamic_skyline_query_point_validation(small_system):
    with pytest.raises(ValueError):
        dynamic_skyline_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            (0.5,),  # wrong dimensionality
        )


def test_dynamic_skyline_includes_exact_hit(small_system):
    """A tuple exactly at q transforms to the zero vector and must be an
    answer (nothing can dominate it)."""
    relation = small_system.relation
    target_tid = 17
    query_point = relation.pref_point(target_tid)
    tids, _, _ = dynamic_skyline_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        query_point,
    )
    assert target_tid in tids


# --------------------------------------------------------------------------- #
# engine integration
# --------------------------------------------------------------------------- #


def test_engine_dynamic_skyline(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    query_point = (0.4, 0.6)
    result = small_system.engine.dynamic_skyline(query_point, predicate)
    assert result.kind == "dynamic_skyline"
    expected = set(
        naive_dynamic_skyline(truth_points(small_system, predicate), query_point)
    )
    assert set(result.tids) == expected


def test_engine_lower_hull(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.lower_hull(predicate)
    assert result.kind == "lower_hull"
    expected = naive_lower_hull(truth_points(small_system, predicate))
    assert [small_system.relation.pref_point(t) for t in result.tids] == [
        small_system.relation.pref_point(t) for t in expected
    ]


def test_engine_rejects_incremental_on_extensions(small_system, rng):
    predicate = sample_predicate(small_system.relation, 1, rng)
    result = small_system.engine.dynamic_skyline((0.5, 0.5), predicate)
    free_dim = next(
        d
        for d in small_system.relation.schema.boolean_dims
        if d not in predicate.dims()
    )
    with pytest.raises(ValueError):
        small_system.engine.drill_down(result, free_dim, 0)
    with pytest.raises(ValueError):
        small_system.engine.roll_up(result, predicate.dims()[0])


# --------------------------------------------------------------------------- #
# convex hull queries
# --------------------------------------------------------------------------- #


def hull_coords(relation, tids):
    return [relation.pref_point(tid) for tid in tids]


def test_lower_hull_matches_naive(small_system, rng):
    for n_conjuncts in (0, 1, 2):
        predicate = (
            sample_predicate(small_system.relation, n_conjuncts, rng)
            if n_conjuncts
            else BooleanPredicate()
        )
        tids, stats = lower_hull_signature(
            small_system.relation,
            small_system.rtree,
            small_system.pcube,
            predicate,
        )
        expected = naive_lower_hull(truth_points(small_system, predicate))
        assert hull_coords(small_system.relation, tids) == hull_coords(
            small_system.relation, expected
        )
        assert stats.total_io() > 0


def test_lower_hull_vertices_are_extreme(small_system, rng):
    """Definitional check: every hull vertex minimises some non-negative
    linear function over the subset; every edge has no point below it."""
    predicate = sample_predicate(small_system.relation, 1, rng)
    tids, _ = lower_hull_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        predicate,
    )
    points = [p for _, p in truth_points(small_system, predicate)]
    vertices = hull_coords(small_system.relation, tids)
    for (ax, ay), (bx, by) in zip(vertices, vertices[1:]):
        assert ax < bx and ay > by  # strictly monotone chain
        normal = (ay - by, bx - ax)
        edge_value = normal[0] * ax + normal[1] * ay
        for px, py in points:
            assert normal[0] * px + normal[1] * py >= edge_value - 1e-9


def test_lower_hull_requires_2d(fresh_system):
    system = fresh_system(n_tuples=100, n_preference=3, seed=1)
    with pytest.raises(ValueError):
        lower_hull_signature(system.relation, system.rtree, system.pcube)


def test_lower_hull_empty_selection(small_system):
    tids, _ = lower_hull_signature(
        small_system.relation,
        small_system.rtree,
        small_system.pcube,
        BooleanPredicate({"A1": 999}),
    )
    assert tids == []


def test_lower_hull_single_point():
    schema = Schema(("A",), ("X", "Y"))
    relation = Relation(schema, [("a",)], [(0.4, 0.6)])
    system = build_system(relation, fanout=4, with_indexes=False)
    tids, _ = lower_hull_signature(
        relation, system.rtree, system.pcube, BooleanPredicate({"A": "a"})
    )
    assert tids == [0]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    raw=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_lower_hull_property(raw):
    """Small grids (heavy ties / collinearity) against the naive chain."""
    schema = Schema(("A",), ("X", "Y"))
    points = [(x / 9.0, y / 9.0) for x, y in raw]
    relation = Relation(schema, [("a",)] * len(points), points)
    system = build_system(relation, fanout=4, with_indexes=False)
    tids, _ = lower_hull_signature(
        relation, system.rtree, system.pcube, BooleanPredicate({"A": "a"})
    )
    expected = naive_lower_hull(list(enumerate(points)))
    assert [relation.pref_point(t) for t in tids] == [
        relation.pref_point(t) for t in expected
    ]


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    raw=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=30,
    ),
    qx=st.integers(min_value=0, max_value=7),
    qy=st.integers(min_value=0, max_value=7),
)
def test_dynamic_skyline_property(raw, qx, qy):
    schema = Schema(("A",), ("X", "Y"))
    points = [(x / 7.0, y / 7.0) for x, y in raw]
    relation = Relation(schema, [("a",)] * len(points), points)
    system = build_system(relation, fanout=4, with_indexes=False)
    query_point = (qx / 7.0, qy / 7.0)
    tids, _, _ = dynamic_skyline_signature(
        relation, system.rtree, system.pcube, query_point
    )
    expected = set(naive_dynamic_skyline(list(enumerate(points)), query_point))
    assert set(tids) == expected


def test_dynamic_skyline_float_tie_regression():
    """Sum-key ties must not let a dominated point pop before its dominator.

    With q = (1/7, 5/7), the transformed coordinates of (4/7, 4/7) and
    (4/7, 6/7) differ by one ulp per dimension yet their float *sums* are
    identical, so without a lexicographic tie-break BBS reports the
    dominated point first and wrongly keeps it (hypothesis's original
    falsifying example, pinned here explicitly)."""
    schema = Schema(("A",), ("X", "Y"))
    points = [(4 / 7.0, 4 / 7.0), (4 / 7.0, 6 / 7.0)]
    relation = Relation(schema, [("a",)] * len(points), points)
    system = build_system(relation, fanout=4, with_indexes=False)
    query_point = (1 / 7.0, 5 / 7.0)
    tids, _, _ = dynamic_skyline_signature(
        relation, system.rtree, system.pcube, query_point
    )
    assert set(tids) == {1}
