"""QueryStats: accessors, the disk-latency model, summaries."""

import pytest

from repro.query.stats import QueryStats
from repro.storage.counters import BINDEX, BTABLE, DBLOCK, DBOOL, SBLOCK, SSIG


def test_fresh_stats_zero():
    stats = QueryStats()
    assert stats.total_io() == 0
    assert stats.peak_heap == 0
    assert stats.ssig == stats.sblock == stats.dblock == stats.dbool == 0
    assert stats.bindex == stats.btable == 0


def test_category_accessors():
    stats = QueryStats()
    stats.counters.record(SSIG, 2)
    stats.counters.record(SBLOCK, 3)
    stats.counters.record(DBLOCK, 5)
    stats.counters.record(DBOOL, 7)
    stats.counters.record(BINDEX, 11)
    stats.counters.record(BTABLE, 13)
    assert (stats.ssig, stats.sblock, stats.dblock) == (2, 3, 5)
    assert (stats.dbool, stats.bindex, stats.btable) == (7, 11, 13)
    assert stats.total_io() == 41


def test_note_heap_keeps_maximum():
    stats = QueryStats()
    for size in (3, 10, 4):
        stats.note_heap(size)
    assert stats.peak_heap == 10


def test_modeled_seconds():
    stats = QueryStats()
    stats.elapsed_seconds = 0.1
    stats.counters.record(SBLOCK, 20)
    assert stats.modeled_seconds(0.005) == pytest.approx(0.1 + 0.1)
    assert stats.modeled_seconds(0.0) == pytest.approx(0.1)


def test_modeled_seconds_validation():
    with pytest.raises(ValueError):
        QueryStats().modeled_seconds(-1.0)


def test_summary_contents():
    stats = QueryStats()
    stats.elapsed_seconds = 0.5
    stats.results = 4
    stats.counters.record(SSIG, 1)
    summary = stats.summary()
    assert summary["elapsed_seconds"] == 0.5
    assert summary["results"] == 4
    assert summary["total_io"] == 1
    assert summary[SSIG] == 1


# -- summary() key-set regression pins ---------------------------------- #
#
# summary() is the paper-comparable surface (Table II / the figures), so
# its key set is pinned: the clean set, the degraded block, and *nothing
# else*.  Serving-only annotations — the degraded flag's cousins from the
# routing layer (route, fallbacks, cache_outcome) — are deliberately kept
# out so routed and unrouted runs of the same query stay diffable.

CLEAN_SUMMARY_KEYS = frozenset({"elapsed_seconds", "total_io", "peak_heap", "results"})
DEGRADED_BLOCK_KEYS = frozenset(
    {
        "degraded",
        "fault_retries",
        "failed_loads",
        "degraded_checks",
        "breaker_skips",
    }
)


def test_summary_key_set_clean():
    stats = QueryStats()
    stats.counters.record(SSIG, 1)
    stats.counters.record(BTABLE, 2)
    assert set(stats.summary()) == CLEAN_SUMMARY_KEYS | {SSIG, BTABLE}


def test_summary_key_set_degraded():
    stats = QueryStats()
    stats.degraded = True
    stats.fault_retries = 2
    assert (
        set(stats.summary()) == CLEAN_SUMMARY_KEYS | DEGRADED_BLOCK_KEYS
    )


def test_routing_fields_never_leak_into_summary():
    """route/fallbacks/cache_outcome exist on QueryStats but must stay out
    of summary() in every combination — including alongside degradation."""
    stats = QueryStats()
    stats.route = "signature"
    stats.fallbacks = 2
    stats.cache_outcome = "hit"
    assert set(stats.summary()) == CLEAN_SUMMARY_KEYS

    stats.degraded = True
    keys = set(stats.summary())
    assert keys == CLEAN_SUMMARY_KEYS | DEGRADED_BLOCK_KEYS
    assert {"route", "fallbacks", "cache_outcome"}.isdisjoint(keys)


def test_routing_fields_default_unset():
    stats = QueryStats()
    assert stats.route is None
    assert stats.fallbacks == 0
    assert stats.cache_outcome is None
