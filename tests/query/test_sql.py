"""The SQL-style front end: parsing and end-to-end execution."""

import pytest

from repro.baselines.naive import naive_skyline, naive_topk
from repro.query.ranking import SeparableFunction
from repro.query.sql import ParsedQuery, SQLSyntaxError, execute, parse_query
from repro.rtree.geometry import Rect


# --------------------------------------------------------------------------- #
# SeparableFunction (the ORDER BY compilation target)
# --------------------------------------------------------------------------- #


def test_separable_mixed_terms():
    fn = SeparableFunction(
        [(0, "linear", 2.0, 0.0), (1, "squared", 0.5, 10.0)]
    )
    assert fn.score((3.0, 12.0)) == pytest.approx(6.0 + 0.5 * 4.0)


def test_separable_lower_bound_is_exact_per_term():
    fn = SeparableFunction(
        [(0, "linear", -1.0, 0.0), (1, "squared", 1.0, 5.0)]
    )
    rect = Rect((0.0, 0.0), (4.0, 3.0))
    # linear with negative weight -> high corner; squared -> clamp target
    assert fn.lower_bound(rect) == pytest.approx(-4.0 + (5.0 - 3.0) ** 2)


def test_separable_validation():
    with pytest.raises(ValueError):
        SeparableFunction([])
    with pytest.raises(ValueError):
        SeparableFunction([(0, "cubic", 1.0, 0.0)])
    with pytest.raises(ValueError):
        SeparableFunction([(0, "squared", -1.0, 0.0)])
    with pytest.raises(ValueError):
        SeparableFunction([(-1, "linear", 1.0, 0.0)])


# --------------------------------------------------------------------------- #
# parsing
# --------------------------------------------------------------------------- #


def test_parse_paper_example_1():
    parsed = parse_query(
        "select top 10 from R where type = 'sedan' and color = 'red' "
        "order by (price - 15000)^2 + 0.5*(mileage - 30000)^2"
    )
    assert parsed.kind == "topk"
    assert parsed.k == 10
    assert parsed.where == {"type": "sedan", "color": "red"}
    assert parsed.order_terms == [
        ("price", "squared", 1.0, 15000.0),
        ("mileage", "squared", 0.5, 30000.0),
    ]


def test_parse_top_dash_k():
    parsed = parse_query("SELECT TOP-5 FROM R ORDER BY price")
    assert parsed.k == 5
    assert parsed.where == {}
    assert parsed.order_terms == [("price", "linear", 1.0, 0.0)]


def test_parse_skyline_with_preference_by():
    parsed = parse_query(
        "select skylines from R where brand = canon and type = professional "
        "preference by price, resolution"
    )
    assert parsed.kind == "skyline"
    assert parsed.where == {"brand": "canon", "type": "professional"}
    assert parsed.preference_by == ("price", "resolution")


def test_parse_skyline_without_preference_by():
    parsed = parse_query("select skyline from R where A = 3")
    assert parsed.preference_by is None
    assert parsed.where == {"A": 3}


def test_parse_value_types():
    parsed = parse_query(
        'select skyline from R where A = 3 and B = 2.5 and C = "x y" and D = a1'
    )
    assert parsed.where == {"A": 3, "B": 2.5, "C": "x y", "D": "a1"}


def test_parse_linear_with_coefficients():
    parsed = parse_query(
        "select top 3 from R order by 0.2*x + y + 3*z"
    )
    assert parsed.order_terms == [
        ("x", "linear", 0.2, 0.0),
        ("y", "linear", 1.0, 0.0),
        ("z", "linear", 3.0, 0.0),
    ]


def test_parse_power_operator_variants():
    parsed = parse_query("select top 1 from R order by (x - 2)**2")
    assert parsed.order_terms == [("x", "squared", 1.0, 2.0)]


@pytest.mark.parametrize(
    "bad",
    [
        "delete from R",
        "select top 0 from R order by x",
        "select top 3 from R",  # missing ORDER BY
        "select top 3 from R preference by x",  # wrong clause
        "select skyline from R order by x",  # wrong clause
        "select skyline from R where A",  # bad conjunct
        "select skyline from R where A = 1 and A = 2",  # duplicate dim
        "select top 3 from R order by x * y",  # non-separable
        "select top 3 from R order by (x - 1)^3",  # unsupported power
        "select skyline from R preference by ",  # empty list
        "select skyline from R preference by x, x",  # duplicate
        "select top 3 from R order by ((x - 1)^2",  # unbalanced parens
    ],
)
def test_parse_rejects_bad_queries(bad):
    with pytest.raises(SQLSyntaxError):
        parse_query(bad)


def test_parsed_query_dataclass_defaults():
    parsed = ParsedQuery(kind="skyline")
    assert parsed.k is None and parsed.where == {}


# --------------------------------------------------------------------------- #
# end-to-end execution
# --------------------------------------------------------------------------- #


def qualifying(system, where):
    relation = system.relation
    return [
        (tid, relation.pref_point(tid))
        for tid in relation.tids()
        if all(relation.bool_value(tid, d) == v for d, v in where.items())
    ]


def test_execute_topk(small_system):
    result = execute(
        small_system.engine,
        "select top 5 from R where A1 = 3 order by 2*N1 + N2",
    )
    assert result.kind == "topk"
    from repro.query.ranking import LinearFunction

    expected = naive_topk(
        qualifying(small_system, {"A1": 3}), LinearFunction([2.0, 1.0]), 5
    )
    assert [round(s, 9) for s in result.scores] == [
        round(s, 9) for _, s in expected
    ]


def test_execute_topk_distance(small_system):
    result = execute(
        small_system.engine,
        "select top 4 from R where A2 = 1 "
        "order by (N1 - 0.5)^2 + 2*(N2 - 0.25)^2",
    )
    from repro.query.ranking import WeightedSquaredDistance

    fn = WeightedSquaredDistance(target=(0.5, 0.25), weights=(1.0, 2.0))
    expected = naive_topk(qualifying(small_system, {"A2": 1}), fn, 4)
    assert [round(s, 9) for s in result.scores] == [
        round(s, 9) for _, s in expected
    ]


def test_execute_skyline(small_system):
    result = execute(
        small_system.engine, "select skylines from R where A1 = 2 and A3 = 0"
    )
    expected = set(
        naive_skyline(qualifying(small_system, {"A1": 2, "A3": 0}))
    )
    assert set(result.tids) == expected


def test_execute_skyline_subspace(small_system):
    result = execute(
        small_system.engine,
        "select skylines from R where A1 = 2 preference by N1",
    )
    points = qualifying(small_system, {"A1": 2})
    expected = set(naive_skyline([(t, (p[0],)) for t, p in points]))
    assert set(result.tids) == expected


def test_execute_unknown_dimension(small_system):
    with pytest.raises(KeyError):
        execute(small_system.engine, "select skyline from R where nope = 1")
    with pytest.raises(KeyError):
        execute(small_system.engine, "select top 2 from R order by nope")
