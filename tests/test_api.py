"""The public API surface: everything advertised imports and is wired."""

import inspect

import repro
import repro.baselines
import repro.bitmap
import repro.btree
import repro.core
import repro.cube
import repro.data
import repro.query
import repro.rtree
import repro.storage


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_resolves():
    for module in (
        repro.baselines,
        repro.bitmap,
        repro.btree,
        repro.core,
        repro.cube,
        repro.data,
        repro.query,
        repro.rtree,
        repro.storage,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_callables_are_documented():
    """Every public class/function exported at top level has a docstring."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_engine_methods_documented():
    from repro.query.engine import PreferenceEngine

    for name, member in inspect.getmembers(
        PreferenceEngine, predicate=inspect.isfunction
    ):
        if name.startswith("_"):
            continue
        assert member.__doc__, f"PreferenceEngine.{name} lacks a docstring"


def test_quickstart_snippet_runs():
    """The README quickstart, condensed."""
    from repro import (
        BooleanPredicate,
        Relation,
        Schema,
        WeightedSquaredDistance,
        build_system,
    )

    schema = Schema(("type", "color"), ("price", "mileage"))
    bool_rows = [("sedan", "red"), ("suv", "red"), ("sedan", "blue")] * 20
    pref_rows = [(15_000 + i * 120.0, 30_000 - i * 91.0) for i in range(60)]
    relation = Relation(schema, bool_rows, pref_rows)
    system = build_system(relation, fanout=8)
    result = system.engine.topk(
        WeightedSquaredDistance(target=(15_000, 30_000), weights=(1.0, 0.5)),
        k=5,
        predicate=BooleanPredicate({"type": "sedan", "color": "red"}),
    )
    assert len(result.tids) == 5
    assert all(
        relation.bool_row(t) == ("sedan", "red") for t in result.tids
    )
