"""The reproducible benchmark runner: determinism, schema, gating, CLI.

Everything runs at miniature sizes (hundreds of tuples, 2 queries per
point) — the contract being tested is reproducibility and report shape,
not performance.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCENARIOS,
    compare_reports,
    dumps_report,
    flatten_metrics,
    run_benchmarks,
    strip_wall,
)
from repro.bench.__main__ import main

TINY = dict(figures=["fig06", "fig08", "fig13"], sizes=[300, 600], n_queries=2)


@pytest.fixture(scope="module")
def tiny_report():
    return run_benchmarks(seed=7, **TINY)


class TestDeterminism:
    def test_same_seed_byte_identical_modulo_wall(self, tiny_report):
        again = run_benchmarks(seed=7, **TINY)
        assert dumps_report(strip_wall(tiny_report)) == dumps_report(
            strip_wall(again)
        )

    def test_different_seed_changes_workload(self, tiny_report):
        other = run_benchmarks(seed=8, **TINY)
        assert dumps_report(strip_wall(tiny_report)) != dumps_report(
            strip_wall(other)
        )

    def test_strip_wall_removes_only_wall_fields(self, tiny_report):
        stripped = strip_wall(tiny_report)
        text = dumps_report(stripped)
        assert "wall_ms" not in text
        point = stripped["figures"]["fig08"]["series"]["Signature"][
            "points"
        ][0]
        assert {"x", "io", "heap_peak", "prune_counts", "results"} <= set(
            point
        )


class TestSchema:
    def test_report_envelope(self, tiny_report):
        assert tiny_report["schema"] == "repro.bench/v1"
        assert tiny_report["seed"] == 7
        assert tiny_report["sizes"] == [300, 600]
        assert set(tiny_report["figures"]) == set(TINY["figures"])

    def test_point_shape(self, tiny_report):
        for figure in tiny_report["figures"].values():
            assert figure["series"], figure
            for series in figure["series"].values():
                assert series["points"]
                for point in series["points"]:
                    assert "x" in point
                    if "io" in point:
                        assert "total" in point["io"]
                        assert point["io"]["total"] >= 0

    def test_fig13_x_axis_is_k(self, tiny_report):
        points = tiny_report["figures"]["fig13"]["series"]["Signature"][
            "points"
        ]
        assert [p["x"] for p in points] == [10, 20, 50, 100]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figures"):
            run_benchmarks(figures=["fig99"], sizes=[100])

    def test_all_scenarios_registered(self):
        assert {"fig05", "fig06", "fig08", "fig09", "fig10", "fig13"} == set(
            SCENARIOS
        )


class TestCompare:
    def test_identical_reports_clean(self, tiny_report):
        regressions, notes = compare_reports(
            tiny_report, json.loads(dumps_report(tiny_report))
        )
        assert regressions == []
        assert notes == []

    def test_doctored_baseline_trips_gate(self, tiny_report):
        baseline = json.loads(dumps_report(tiny_report))
        point = baseline["figures"]["fig08"]["series"]["Signature"][
            "points"
        ][0]
        point["io"]["total"] *= 0.5
        regressions, _ = compare_reports(
            tiny_report, baseline, fail_over=10.0
        )
        assert len(regressions) == 1
        assert regressions[0].path.endswith("io.total")
        assert regressions[0].pct > 10.0

    def test_wall_never_gates_by_default(self, tiny_report):
        baseline = json.loads(dumps_report(tiny_report))
        for figure in baseline["figures"].values():
            for series in figure["series"].values():
                for point in series["points"]:
                    if "wall_ms" in point:
                        point["wall_ms"] = 1e-12
        regressions, _ = compare_reports(tiny_report, baseline)
        assert regressions == []

    def test_missing_points_noted_not_failed(self, tiny_report):
        baseline = json.loads(dumps_report(tiny_report))
        del baseline["figures"]["fig13"]
        regressions, notes = compare_reports(tiny_report, baseline)
        assert regressions == []
        assert any("not in baseline" in note for note in notes)

    def test_flatten_excludes_wall_and_x(self, tiny_report):
        point = tiny_report["figures"]["fig08"]["series"]["Signature"][
            "points"
        ][0]
        flat = flatten_metrics(point)
        assert "x" not in flat
        assert all("wall_ms" not in path for path in flat)
        assert "io.total" in flat
        assert flatten_metrics(point, include_wall=True)["wall_ms"] >= 0


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "fig13" in out

    def test_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_pcube.json"
        code = main(
            [
                "--figures",
                "fig06",
                "--sizes",
                "300",
                "--queries",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.bench/v1"
        assert "fig06" in capsys.readouterr().out

    def test_compare_gate_exit_code(self, tmp_path, capsys):
        out = tmp_path / "current.json"
        baseline_path = tmp_path / "baseline.json"
        args = [
            "--figures",
            "fig06",
            "--sizes",
            "300",
            "--queries",
            "1",
            "--quiet",
            "--out",
            str(out),
        ]
        assert main(args) == 0
        baseline = json.loads(out.read_text())
        baseline["figures"]["fig06"]["series"]["P-Cube"]["points"][0][
            "size_mb"
        ] *= 0.2
        baseline_path.write_text(json.dumps(baseline))
        code = main(
            args + ["--compare", str(baseline_path), "--fail-over", "10"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # Without --fail-over the diff is informational only.
        assert main(args + ["--compare", str(baseline_path)]) == 0

    def test_bad_usage(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--figures", "fig99"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit):
            main(["--fail-over", "5"])  # requires --compare
        assert main(["--compare", str(tmp_path / "absent.json"),
                     "--figures", "fig06", "--sizes", "300",
                     "--queries", "1", "--quiet",
                     "--out", str(tmp_path / "o.json")]) == 2
