"""Tagged I/O counters."""

import pytest

from repro.storage.counters import (
    DBLOCK,
    KNOWN_CATEGORIES,
    SBLOCK,
    SSIG,
    IOCounters,
)


def test_fresh_counters_are_zero():
    counters = IOCounters()
    assert counters.total() == 0
    for category in KNOWN_CATEGORIES:
        assert counters.get(category) == 0


def test_record_and_get():
    counters = IOCounters()
    counters.record(SSIG)
    counters.record(SBLOCK, 3)
    assert counters.get(SSIG) == 1
    assert counters.get(SBLOCK) == 3
    assert counters.total() == 4


def test_negative_record_rejected():
    with pytest.raises(ValueError):
        IOCounters().record(SSIG, -1)


def test_custom_categories_accepted():
    counters = IOCounters()
    counters.record("my-component")
    assert counters.get("my-component") == 1


def test_snapshot_is_a_copy():
    counters = IOCounters()
    counters.record(DBLOCK)
    snap = counters.snapshot()
    snap[DBLOCK] = 99
    assert counters.get(DBLOCK) == 1


def test_reset():
    counters = IOCounters()
    counters.record(SSIG, 5)
    counters.reset()
    assert counters.total() == 0


def test_merge_adds():
    a = IOCounters()
    b = IOCounters()
    a.record(SSIG, 2)
    b.record(SSIG, 3)
    b.record(DBLOCK)
    a.merge(b)
    assert a.get(SSIG) == 5
    assert a.get(DBLOCK) == 1
    assert b.get(SSIG) == 3  # merge does not mutate the source


def test_iteration_is_sorted():
    counters = IOCounters()
    counters.record("z")
    counters.record("a")
    assert [k for k, _ in counters] == ["a", "z"]
