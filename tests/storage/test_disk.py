"""The simulated disk: allocation, counted reads, space accounting."""

import pytest

from repro.storage.counters import IOCounters, SBLOCK, SSIG
from repro.storage.disk import PageFault, SimulatedDisk


def test_allocate_assigns_unique_ids():
    disk = SimulatedDisk()
    ids = {disk.allocate("t") for _ in range(100)}
    assert len(ids) == 100


def test_read_returns_payload_and_counts():
    disk = SimulatedDisk()
    page_id = disk.allocate("rtree", payload="hello")
    counters = IOCounters()
    assert disk.read(page_id, SBLOCK, counters) == "hello"
    assert counters.get(SBLOCK) == 1
    assert disk.counters.get(SBLOCK) == 1


def test_read_without_local_counters_still_counts_globally():
    disk = SimulatedDisk()
    page_id = disk.allocate("x", payload=1)
    disk.read(page_id, SSIG)
    assert disk.counters.get(SSIG) == 1


def test_read_unknown_page_faults():
    disk = SimulatedDisk()
    with pytest.raises(PageFault):
        disk.read(42, SBLOCK)


def test_write_replaces_payload_and_size():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", size=10, payload="a")
    disk.write(page_id, "b", size=20)
    assert disk.peek(page_id).payload == "b"
    assert disk.peek(page_id).size == 20


def test_free_then_read_faults():
    disk = SimulatedDisk()
    page_id = disk.allocate("t")
    disk.free(page_id)
    with pytest.raises(PageFault):
        disk.read(page_id, SBLOCK)


def test_double_free_faults():
    disk = SimulatedDisk()
    page_id = disk.allocate("t")
    disk.free(page_id)
    with pytest.raises(PageFault):
        disk.free(page_id)


def test_size_accounting_by_tag_prefix():
    disk = SimulatedDisk()
    disk.allocate("pcube:sig", size=100)
    disk.allocate("pcube:index", size=50)
    disk.allocate("rtree", size=200)
    assert disk.size_bytes("pcube") == 150
    assert disk.size_bytes("pcube:sig") == 100
    assert disk.size_bytes("rtree") == 200
    assert disk.size_bytes() == 350
    assert disk.page_count("pcube") == 2


def test_size_mb():
    disk = SimulatedDisk()
    disk.allocate("t", size=1024 * 1024)
    assert disk.size_mb("t") == pytest.approx(1.0)


def test_default_allocation_is_full_page():
    disk = SimulatedDisk(page_size=4096)
    page_id = disk.allocate("t")
    assert disk.peek(page_id).size == 4096


def test_oversized_pages_flagged():
    disk = SimulatedDisk(page_size=100)
    disk.allocate("ok", size=100)
    big = disk.allocate("big", size=101)
    oversized = disk.oversized_pages()
    assert [p.page_id for p in oversized] == [big]


def test_peek_does_not_count():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", payload=7)
    disk.peek(page_id)
    assert disk.counters.total() == 0


def test_invalid_page_size_rejected():
    with pytest.raises(ValueError):
        SimulatedDisk(page_size=0)


def test_write_accounting_is_separate_from_read_counters():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", payload=1)
    other = disk.allocate("t", payload=2)
    disk.write(page_id, 3)
    disk.write(page_id, 4)
    disk.free(other)
    assert disk.write_counters.get("ALLOC") == 2
    assert disk.write_counters.get("WRITE") == 2
    assert disk.write_counters.get("FREE") == 1
    # Build/maintenance traffic never pollutes the paper's read figures.
    assert disk.counters.total() == 0
