"""Property tests for the deadline-budgeted retry policy (hypothesis).

Two serving-critical invariants, checked over the whole configuration
space rather than a few hand-picked examples:

* determinism — for a fixed seed, the jittered backoff schedule replays
  bit for bit (tests, benchmarks and the chaos harness depend on it);
* budget safety — with a deadline, the deterministic clock is *never*
  charged past it, however the attempts/backoff/jitter knobs are set (the
  serving guarantee behind :class:`repro.serve.resilience.RetryBudget`).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.errors import TransientIOError
from repro.storage.faults import RetryPolicy

pytestmark = pytest.mark.faults

policies = st.fixed_dictionaries(
    {
        "max_attempts": st.integers(min_value=1, max_value=6),
        "base_delay": st.floats(
            min_value=0.0, max_value=0.25, allow_nan=False
        ),
        "multiplier": st.floats(
            min_value=1.0, max_value=4.0, allow_nan=False
        ),
        "jitter": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def _charged_schedule(policy: RetryPolicy, failures: int) -> list[float]:
    """Run one flaky call; return the clock instants of each retry."""
    attempts = [0]
    instants: list[float] = []

    def flaky():
        attempts[0] += 1
        if attempts[0] <= failures:
            raise TransientIOError("injected")
        return "ok"

    def record(attempt: int, exc: Exception) -> None:
        instants.append(policy.clock.now)

    try:
        policy.call(flaky, on_retry=record)
    except TransientIOError:
        pass
    instants.append(policy.clock.now)  # the total charged wait
    return instants


@settings(max_examples=80, deadline=None)
@given(config=policies, failures=st.integers(min_value=0, max_value=8))
def test_jittered_backoff_replays_bit_for_bit(config, failures):
    first = _charged_schedule(RetryPolicy(**config), failures)
    second = _charged_schedule(RetryPolicy(**config), failures)
    assert first == second
    # And the schedule is well-formed: charged instants never decrease.
    assert first == sorted(first)


@settings(max_examples=120, deadline=None)
@given(
    config=policies,
    deadline=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
)
def test_budgeted_retries_never_charge_past_the_deadline(config, deadline):
    policy = RetryPolicy(**config)

    def always_fails():
        raise TransientIOError("still down")

    with pytest.raises(TransientIOError):
        policy.call(always_fails, deadline=deadline)
    # The hard guarantee: however the knobs are set, backoff charged to
    # the clock fits inside the budget.
    assert policy.clock.now <= deadline
    # Accounting is consistent: either the full attempt budget was spent,
    # or exactly one skipped-retry event ended the call early.
    if policy.exhausted_budgets:
        assert policy.exhausted_budgets == 1
        assert policy.retries <= config["max_attempts"] - 2
    else:
        assert policy.retries == config["max_attempts"] - 1


@settings(max_examples=60, deadline=None)
@given(config=policies)
def test_unbudgeted_call_spends_every_attempt(config):
    policy = RetryPolicy(**config)
    calls = [0]

    def always_fails():
        calls[0] += 1
        raise TransientIOError("still down")

    with pytest.raises(TransientIOError):
        policy.call(always_fails)
    assert calls[0] == config["max_attempts"]
    assert policy.exhausted_budgets == 0
