"""Fault injection, checksums, retry/backoff: the storage fault model."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.counters import SSIG, IOCounters
from repro.storage.disk import PageFault, SimulatedDisk
from repro.storage.errors import (
    CorruptPageError,
    StorageFault,
    TornWriteError,
    TransientIOError,
)
from repro.storage.faults import (
    CorruptPayload,
    DeterministicClock,
    FaultPlan,
    FaultRule,
    FaultyDisk,
    RetryPolicy,
)

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------- #
# checksummed pages (detection)
# ---------------------------------------------------------------------- #


def test_read_verifies_checksum_and_detects_swapped_payload():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", payload=b"good bytes")
    disk.peek(page_id).payload = b"evil bytes"  # corrupt behind the disk's back
    with pytest.raises(CorruptPageError) as excinfo:
        disk.read(page_id, SSIG)
    assert excinfo.value.page_id == page_id


def test_write_reseals_checksum():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", payload=b"v1")
    disk.write(page_id, b"v2")
    assert disk.read(page_id, SSIG) == b"v2"  # no false positive


def test_corrupt_read_still_counts_the_transfer():
    disk = SimulatedDisk()
    page_id = disk.allocate("t", payload=b"x")
    disk.peek(page_id).payload = b"y"
    with pytest.raises(CorruptPageError):
        disk.read(page_id, SSIG)
    assert disk.counters.get(SSIG) == 1


# ---------------------------------------------------------------------- #
# deterministic clock + retry policy
# ---------------------------------------------------------------------- #


def test_retry_policy_recovers_after_transient_faults():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransientIOError("not yet")
        return "ok"

    policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0)
    assert policy.call(flaky) == "ok"
    assert len(attempts) == 3
    assert policy.retries == 2
    # Backoff is charged to the deterministic clock: 0.01 + 0.02.
    assert policy.clock.now == pytest.approx(0.03)


def test_retry_policy_gives_up_after_budget():
    policy = RetryPolicy(max_attempts=3)

    def always_fails():
        raise TransientIOError("still down")

    with pytest.raises(TransientIOError):
        policy.call(always_fails)
    assert policy.retries == 2  # the final failure is not a retry


def test_retry_policy_does_not_retry_permanent_faults():
    calls = []

    def corrupt():
        calls.append(1)
        raise CorruptPageError(7)

    with pytest.raises(CorruptPageError):
        RetryPolicy(max_attempts=5).call(corrupt)
    assert len(calls) == 1


def test_retry_policy_rejects_bad_config():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        DeterministicClock().sleep(-1)


# ---------------------------------------------------------------------- #
# fault plans
# ---------------------------------------------------------------------- #


def test_fault_rule_validation():
    with pytest.raises(ValueError):
        FaultRule(kind="meteor")
    with pytest.raises(ValueError):
        FaultRule(kind="transient", op="defragment")
    with pytest.raises(ValueError):
        FaultRule(kind="transient", probability=1.5)


def test_plan_matches_by_tag_prefix_after_and_count():
    plan = FaultPlan([FaultRule(kind="transient", tag="pcube:sig", after=1, count=2)])
    # First matching access is skipped (after=1), next two fire, then done.
    assert plan.next_fault("read", "pcube:sig", 1) is None
    assert plan.next_fault("read", "rtree", 2) is None  # tag mismatch
    assert plan.next_fault("read", "pcube:sig", 3) is not None
    assert plan.next_fault("read", "pcube:sig", 4) is not None
    assert plan.next_fault("read", "pcube:sig", 5) is None
    assert not plan.pending()


def test_plan_probability_is_seeded_and_deterministic():
    def firings(seed):
        plan = FaultPlan(
            [FaultRule(kind="transient", probability=0.5, count=None)], seed=seed
        )
        return [
            plan.next_fault("read", "t", i) is not None for i in range(50)
        ]

    assert firings(7) == firings(7)
    assert any(firings(7))
    assert not all(firings(7))


# ---------------------------------------------------------------------- #
# the fault-injecting disk
# ---------------------------------------------------------------------- #


def test_faulty_disk_delegates_transparently():
    disk = FaultyDisk(SimulatedDisk(page_size=128))
    page_id = disk.allocate("t", size=64, payload="data")
    assert disk.page_size == 128
    assert disk.read(page_id, SSIG) == "data"
    assert disk.counters.get(SSIG) == 1
    assert disk.size_bytes("t") == 64
    assert disk.page_count("t") == 1
    assert disk.exists(page_id)
    disk.write(page_id, "data2")
    assert disk.peek(page_id).payload == "data2"
    disk.free(page_id)
    assert not disk.exists(page_id)
    with pytest.raises(PageFault):
        disk.read(page_id, SSIG)


def test_faulty_disk_injects_transient_then_recovers():
    disk = FaultyDisk(
        SimulatedDisk(),
        FaultPlan([FaultRule(kind="transient", count=2)]),
    )
    page_id = disk.allocate("t", payload="p")
    with pytest.raises(TransientIOError):
        disk.read(page_id, SSIG)
    with pytest.raises(TransientIOError):
        disk.read(page_id, SSIG)
    assert disk.read(page_id, SSIG) == "p"
    assert disk.fault_counts["transient"] == 2
    # Failed transfers are not counted as accesses.
    assert disk.counters.get(SSIG) == 1


def test_faulty_disk_corruption_is_permanent_and_detected():
    disk = FaultyDisk(
        SimulatedDisk(),
        FaultPlan([FaultRule(kind="corrupt", count=1)]),
    )
    page_id = disk.allocate("t", payload=b"payload")
    with pytest.raises(CorruptPageError):
        disk.read(page_id, SSIG)
    # The rule fired once, but the damage persists on every later read.
    with pytest.raises(CorruptPageError):
        disk.read(page_id, SSIG)
    assert isinstance(disk.peek(page_id).payload, CorruptPayload)
    assert disk.fault_counts["corrupt"] == 1


def test_faulty_disk_torn_write_and_allocate():
    disk = FaultyDisk(
        SimulatedDisk(),
        FaultPlan(
            [
                FaultRule(kind="torn", op="allocate", tag="sig", count=1),
                FaultRule(kind="torn", op="write", count=1),
            ]
        ),
    )
    ok = disk.allocate("other", payload=1)  # tag filter: not matched
    with pytest.raises(TornWriteError):
        disk.allocate("sig", payload=2)
    with pytest.raises(TornWriteError):
        disk.write(ok, 3)
    assert disk.peek(ok).payload == 1  # the torn write never landed
    assert disk.fault_counts["torn"] == 2


def test_faulty_disk_retry_through_buffer_pool():
    disk = FaultyDisk(
        SimulatedDisk(),
        FaultPlan([FaultRule(kind="transient", count=2)]),
    )
    page_id = disk.allocate("t", payload="v")
    policy = RetryPolicy(max_attempts=4)
    pool = BufferPool(disk, capacity=4, retry_policy=policy)
    counters = IOCounters()
    assert pool.get(page_id, SSIG, counters) == "v"
    assert policy.retries == 2
    assert counters.get(SSIG) == 1
    # Now cached: no further disk involvement, no further faults possible.
    assert pool.get(page_id, SSIG, counters) == "v"
    assert counters.get(SSIG) == 1


def test_storage_fault_family():
    assert issubclass(TransientIOError, StorageFault)
    assert issubclass(CorruptPageError, StorageFault)
    assert issubclass(TornWriteError, StorageFault)
    assert issubclass(StorageFault, IOError)


# ---------------------------------------------------------------------- #
# crash injection
# ---------------------------------------------------------------------- #


def test_crash_rule_fires_on_read_write_and_allocate():
    from repro.storage.faults import SimulatedCrash

    for op in ("read", "write", "allocate"):
        disk = FaultyDisk(
            SimulatedDisk(), FaultPlan([FaultRule(kind="crash", op=op)])
        )
        if op == "allocate":
            with pytest.raises(SimulatedCrash):
                disk.allocate("t", payload="p")
            continue
        page_id = disk.allocate("t", payload="p")
        with pytest.raises(SimulatedCrash):
            getattr(disk, op)(*((page_id, SSIG) if op == "read" else (page_id, "q")))


def test_crash_leaves_the_page_untouched():
    from repro.storage.faults import SimulatedCrash

    disk = FaultyDisk(SimulatedDisk())
    page_id = disk.allocate("t", payload="before")
    disk.plan = FaultPlan([FaultRule(kind="crash", op="write", count=1)])
    with pytest.raises(SimulatedCrash):
        disk.write(page_id, "after")
    assert disk.peek(page_id).payload == "before"


def test_crash_is_not_a_storage_fault():
    """Retry loops and degraded-read paths must never absorb a crash."""
    from repro.storage.faults import SimulatedCrash

    assert not issubclass(SimulatedCrash, StorageFault)
    assert issubclass(SimulatedCrash, RuntimeError)


def test_crash_is_not_retried():
    from repro.storage.faults import SimulatedCrash

    disk = FaultyDisk(
        SimulatedDisk(), FaultPlan([FaultRule(kind="crash", op="read")])
    )
    page_id = disk.inner.allocate("t", payload="p")
    policy = RetryPolicy(max_attempts=5)
    with pytest.raises(SimulatedCrash):
        policy.call(lambda: disk.read(page_id, SSIG))
    assert policy.retries == 0


def test_probability_zero_rule_counts_accesses_without_firing():
    """The crash-sweep enumeration trick: seen advances, nothing raises."""
    rule = FaultRule(kind="crash", op="read", tag="t", probability=0.0, count=None)
    disk = FaultyDisk(SimulatedDisk(), FaultPlan([rule]))
    page_id = disk.inner.allocate("t", payload="p")
    for _ in range(5):
        assert disk.read(page_id, SSIG) == "p"
    assert rule.seen == 5
    assert disk.fault_counts.get("crash", 0) == 0


def test_free_is_unfaultable():
    """WAL commit truncation relies on free never consulting the plan."""
    from repro.storage.faults import SimulatedCrash  # noqa: F401

    disk = FaultyDisk(SimulatedDisk())
    page_id = disk.allocate("t", payload="p")
    disk.plan = FaultPlan(
        [FaultRule(kind="crash", op=op) for op in ("read", "write", "allocate")]
    )
    disk.free(page_id)
    assert not disk.exists(page_id)
