"""The LRU buffer pool: hits are free, misses are counted disk reads."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.counters import IOCounters, SBLOCK
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk()


def test_hit_does_not_count(disk):
    page_id = disk.allocate("t", payload="x")
    pool = BufferPool(disk, capacity=4)
    counters = IOCounters()
    pool.get(page_id, SBLOCK, counters)
    pool.get(page_id, SBLOCK, counters)
    pool.get(page_id, SBLOCK, counters)
    assert counters.get(SBLOCK) == 1
    assert pool.hits == 2
    assert pool.misses == 1


def test_lru_eviction_recounts(disk):
    ids = [disk.allocate("t", payload=i) for i in range(3)]
    pool = BufferPool(disk, capacity=2)
    counters = IOCounters()
    pool.get(ids[0], SBLOCK, counters)
    pool.get(ids[1], SBLOCK, counters)
    pool.get(ids[2], SBLOCK, counters)  # evicts ids[0]
    pool.get(ids[0], SBLOCK, counters)  # miss again
    assert counters.get(SBLOCK) == 4


def test_lru_order_is_by_recency(disk):
    ids = [disk.allocate("t", payload=i) for i in range(3)]
    pool = BufferPool(disk, capacity=2)
    counters = IOCounters()
    pool.get(ids[0], SBLOCK, counters)
    pool.get(ids[1], SBLOCK, counters)
    pool.get(ids[0], SBLOCK, counters)  # refresh 0; 1 is now LRU
    pool.get(ids[2], SBLOCK, counters)  # evicts 1
    pool.get(ids[0], SBLOCK, counters)  # still resident
    assert counters.get(SBLOCK) == 3


def test_zero_capacity_disables_caching(disk):
    page_id = disk.allocate("t", payload=1)
    pool = BufferPool(disk, capacity=0)
    counters = IOCounters()
    pool.get(page_id, SBLOCK, counters)
    pool.get(page_id, SBLOCK, counters)
    assert counters.get(SBLOCK) == 2
    assert len(pool) == 0


def test_write_invalidates_registered_pools(disk):
    page_id = disk.allocate("t", payload="old")
    pool = BufferPool(disk, capacity=4)
    assert pool.get(page_id, SBLOCK) == "old"
    disk.write(page_id, "new")
    # In-place rewrites evict the page from every registered pool, so a
    # shared pool can never serve a stale payload to a concurrent reader.
    assert pool.get(page_id, SBLOCK) == "new"


def test_manual_invalidate_forces_reread(disk):
    page_id = disk.allocate("t", payload="old")
    pool = BufferPool(disk, capacity=4)
    assert pool.get(page_id, SBLOCK) == "old"
    pool.invalidate(page_id)
    counters = IOCounters()
    pool.get(page_id, SBLOCK, counters)
    assert counters.get(SBLOCK) == 1  # dropped from cache: a real re-read


def test_pinned_pages_survive_eviction_pressure(disk):
    ids = [disk.allocate("t", payload=i) for i in range(4)]
    pool = BufferPool(disk, capacity=2)
    counters = IOCounters()
    pool.get(ids[0], SBLOCK, counters)
    pool.pin(ids[0])
    for i in (1, 2, 3):
        pool.get(ids[i], SBLOCK, counters)
    pool.get(ids[0], SBLOCK, counters)  # still resident despite pressure
    assert counters.get(SBLOCK) == 4
    assert pool.pin_count(ids[0]) == 1
    pool.unpin(ids[0])
    with pytest.raises(ValueError):
        pool.unpin(ids[0])


def test_pool_view_tracks_per_query_deltas(disk):
    from repro.storage.buffer import PoolView

    page_id = disk.allocate("t", payload="x")
    pool = BufferPool(disk, capacity=4)
    view_a = PoolView(pool)
    view_b = PoolView(pool)
    view_a.get(page_id, SBLOCK)  # miss
    view_b.get(page_id, SBLOCK)  # hit (cached by A's miss)
    assert (view_a.hits, view_a.misses) == (0, 1)
    assert (view_b.hits, view_b.misses) == (1, 0)
    assert (pool.hits, pool.misses) == (1, 1)
    view_a.pin(page_id)
    view_a.release()
    assert pool.pin_count(page_id) == 0


def test_clear_resets_stats(disk):
    page_id = disk.allocate("t", payload=1)
    pool = BufferPool(disk, capacity=4)
    pool.get(page_id, SBLOCK)
    pool.clear()
    assert pool.hits == 0 and pool.misses == 0 and len(pool) == 0


def test_negative_capacity_rejected(disk):
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=-1)


def test_free_evicts_from_registered_pools(disk):
    page_id = disk.allocate("t", payload="x")
    pool_a = BufferPool(disk, capacity=4)
    pool_b = BufferPool(disk, capacity=4)
    pool_a.get(page_id, SBLOCK)
    pool_b.get(page_id, SBLOCK)
    disk.free(page_id)
    # Neither pool may keep serving a freed page from cache.
    assert len(pool_a) == 0
    assert len(pool_b) == 0


def test_invalidation_during_in_flight_miss_is_not_cached(disk):
    """A payload read *before* a concurrent invalidate must not be
    inserted *after* it — that would leave a stale page resident."""
    page_id = disk.allocate("t", payload="old")
    pool = BufferPool(disk, capacity=4)
    real_read = disk.read

    def read_then_rewrite(pid, category, counters=None):
        payload = real_read(pid, category, counters)
        # The rewrite lands while the miss's read is "in flight": the
        # pool has released its lock and not yet cached the payload.
        disk.write(page_id, "new")
        return payload

    disk.read = read_then_rewrite
    try:
        assert pool.get(page_id, SBLOCK) == "old"  # the read it performed
    finally:
        disk.read = real_read
    assert len(pool) == 0  # the stale payload was discarded, not cached
    assert pool.get(page_id, SBLOCK) == "new"
    assert len(pool) == 1
    # The in-flight bookkeeping drained with the reads.
    assert pool._inflight == {} and pool._inval_gen == {}


def test_read_fault_during_miss_drains_inflight_bookkeeping(disk):
    pool = BufferPool(disk, capacity=4)
    with pytest.raises(KeyError):
        pool.get(999, SBLOCK)  # never-allocated page faults
    assert pool._inflight == {} and pool._inval_gen == {}


def test_freed_then_reallocated_id_is_never_aliased(disk):
    pool = BufferPool(disk, capacity=4)
    old = disk.allocate("t", payload="old")
    pool.get(old, SBLOCK)
    disk.free(old)
    new = disk.allocate("t", payload="new")
    assert new != old  # ids are monotonic, freed ids never reused
    assert pool.get(new, SBLOCK) == "new"
