"""Pages and their invariants."""

import pytest

from repro.storage.page import DEFAULT_PAGE_SIZE, Page


def test_default_page_size_matches_paper():
    assert DEFAULT_PAGE_SIZE == 4096


def test_page_fields():
    page = Page(page_id=3, tag="rtree", size=100, payload={"x": 1})
    assert page.page_id == 3
    assert page.tag == "rtree"
    assert page.size == 100
    assert page.payload == {"x": 1}


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Page(page_id=0, tag="t", size=-1)


def test_zero_size_allowed():
    assert Page(page_id=0, tag="t", size=0).size == 0


def test_payload_not_in_repr():
    page = Page(page_id=1, tag="heap", size=8, payload=list(range(1000)))
    assert "1000" not in repr(page)
