"""QueryExecutor behaviour: admission, deadlines, cancellation, stats."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.executor import (
    AdmissionFull,
    QueryCancelled,
    QueryExecutor,
    QueryTimeout,
)

pytestmark = pytest.mark.concurrent


@pytest.fixture
def system(fresh_system):
    return fresh_system(n_tuples=400)


def _blocker(started: threading.Event, gate: threading.Event):
    """A submit() callable that parks its worker until the gate opens."""

    def run(session):
        started.set()
        assert gate.wait(timeout=30.0)
        return session.skyline()

    return run


def test_result_matches_serial_engine(system):
    serial = system.engine.skyline()
    with QueryExecutor(system, threads=2) as executor:
        result = executor.skyline().result(timeout=30.0)
    assert result.tids == serial.tids
    assert result.stats.epoch == system.epochs.current_epoch
    assert result.stats.queue_wait_seconds >= 0.0


def test_bounded_admission_rejects_when_full(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=1) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)  # worker is parked
        queued = executor.skyline()  # fills the depth-1 queue
        with pytest.raises(AdmissionFull):
            executor.skyline()
        assert executor.stats.snapshot()["rejected"] == 1
        gate.set()
        assert blocked.result(timeout=30.0).tids == queued.result(
            timeout=30.0
        ).tids


def test_cancel_queued_ticket(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=4) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        doomed = executor.skyline()
        assert doomed.cancel()
        gate.set()
        with pytest.raises(QueryCancelled):
            doomed.result(timeout=30.0)
        blocked.result(timeout=30.0)
    stats = executor.stats.snapshot()
    assert stats["cancelled"] == 1 and stats["completed"] == 1


def test_cancel_after_completion_returns_false(system):
    with QueryExecutor(system, threads=1) as executor:
        ticket = executor.skyline()
        ticket.result(timeout=30.0)
        assert not ticket.cancel()


def test_deadline_expires_in_queue(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1, queue_depth=4) as executor:
        blocked = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        doomed = executor.skyline(deadline=0.01)
        time.sleep(0.05)  # let the deadline lapse while queued
        gate.set()
        with pytest.raises(QueryTimeout):
            doomed.result(timeout=30.0)
        blocked.result(timeout=30.0)
    assert executor.stats.snapshot()["timed_out"] == 1


def test_ticker_aborts_a_running_query(system):
    """Cooperative cancellation reaches queries mid-run via the ticker."""
    started = threading.Event()

    def spin(session):
        started.set()
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            session.ticker()  # what run_algorithm1 polls per heap pop
            time.sleep(0.001)
        raise AssertionError("ticker never fired")

    with QueryExecutor(system, threads=1) as executor:
        ticket = executor.submit("spin", spin)
        assert started.wait(timeout=30.0)
        assert ticket.cancel()
        with pytest.raises(QueryCancelled):
            ticket.result(timeout=30.0)


def test_submit_after_shutdown_raises(system):
    executor = QueryExecutor(system, threads=1)
    executor.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        executor.skyline()
    executor.shutdown()  # idempotent


def test_nonwaiting_shutdown_fails_queued_tickets(system):
    """shutdown(wait=False) must unblock waiters on still-queued tickets
    instead of abandoning them behind the stop sentinels forever."""
    started, gate = threading.Event(), threading.Event()
    executor = QueryExecutor(system, threads=1, queue_depth=4)
    running = executor.submit("block", _blocker(started, gate))
    assert started.wait(timeout=30.0)  # worker is parked on the gate
    queued = executor.skyline()
    executor.shutdown(wait=False)
    with pytest.raises(RuntimeError, match="shut down"):
        queued.result(timeout=30.0)
    gate.set()
    # The in-flight query still completes normally.
    assert running.result(timeout=30.0).tids
    stats = executor.stats.snapshot()
    assert stats["completed"] == 1


def test_result_timeout_on_pending_ticket(system):
    started, gate = threading.Event(), threading.Event()
    with QueryExecutor(system, threads=1) as executor:
        ticket = executor.submit("block", _blocker(started, gate))
        assert started.wait(timeout=30.0)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        assert not ticket.done()
        gate.set()
        ticket.result(timeout=30.0)
        assert ticket.done()


def test_mixed_kinds_complete_and_aggregate(system):
    serial = {
        "skyline": system.engine.skyline(),
        "dynamic": system.engine.dynamic_skyline((0.5, 0.5)),
        "hull": system.engine.lower_hull(),
    }
    with QueryExecutor(system, threads=4) as executor:
        tickets = {
            "skyline": executor.skyline(),
            "dynamic": executor.dynamic_skyline((0.5, 0.5)),
            "hull": executor.lower_hull(),
        }
        for name, ticket in tickets.items():
            assert ticket.result(timeout=30.0).tids == serial[name].tids
    stats = executor.stats.snapshot()
    assert stats["submitted"] == stats["completed"] == 3
    assert stats["failed"] == 0
    assert stats["epochs_served"] == {system.epochs.current_epoch: 3}
