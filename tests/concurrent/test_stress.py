"""Threaded stress: byte-identical pinned-epoch answers under churn.

The contract under test is the tentpole's: readers pinned at an epoch get
*bit-for-bit* the serial answer for that epoch no matter how much
maintenance commits concurrently, the executor keeps serving fresh epochs
throughout, and when everything drains the system audits clean with all
deferred pages reclaimed.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.data.workload import sample_linear_function, sample_predicate
from repro.query.session import QuerySession
from repro.serve.executor import QueryExecutor
from repro.storage.buffer import BufferPool

pytestmark = pytest.mark.concurrent

READER_THREADS = 4
ROUNDS_PER_READER = 3
MAINTENANCE_OPS = 12


def _workload(system, rng, n=6):
    relation = system.relation
    dims = relation.schema.n_preference
    queries = []
    for index in range(n):
        predicate = sample_predicate(relation, 1 + index % 2, rng)
        if index % 2 == 0:
            queries.append(("skyline", {"predicate": predicate}))
        else:
            queries.append(
                (
                    "topk",
                    {
                        "fn": sample_linear_function(dims, rng),
                        "k": 5,
                        "predicate": predicate,
                    },
                )
            )
    return queries


def _churn(system, errors):
    """One writer: WAL-protected inserts, updates and deletes."""
    try:
        schema = system.relation.schema
        bool_row = tuple(0 for _ in range(schema.n_boolean))
        spawned = []
        for step in range(MAINTENANCE_OPS):
            point = tuple(
                0.01 * (step + 1) for _ in range(schema.n_preference)
            )
            if step % 3 == 0 or not spawned:
                tid, _ = system.insert(bool_row, point)
                spawned.append(tid)
            elif step % 3 == 1:
                system.update(spawned[-1], point)
            else:
                system.delete(spawned.pop(0))
    except Exception as exc:  # pragma: no cover - surfaced by the assert
        errors.append(f"writer: {exc!r}")


def test_pinned_readers_are_byte_identical_under_churn(fresh_system):
    system = fresh_system(n_tuples=800, seed=31)
    system.enable_epochs()
    pool = BufferPool(system.disk, capacity=4096)

    pinned = system.pin_snapshot()
    rng = random.Random(5)
    workload = _workload(system, rng)
    serial = [
        getattr(QuerySession.for_snapshot(pinned), kind)(**kwargs)
        for kind, kwargs in workload
    ]

    errors: list[str] = []

    def reader(reader_id: int):
        try:
            for _ in range(ROUNDS_PER_READER):
                session = QuerySession.for_snapshot(pinned, pool=pool)
                for index, (kind, kwargs) in enumerate(workload):
                    result = getattr(session, kind)(**kwargs)
                    if (
                        result.tids != serial[index].tids
                        or result.scores != serial[index].scores
                    ):
                        errors.append(
                            f"reader {reader_id} query {index} diverged "
                            f"from the serial epoch-{pinned.epoch} answer"
                        )
        except Exception as exc:  # pragma: no cover
            errors.append(f"reader {reader_id}: {exc!r}")

    threads = [
        threading.Thread(target=reader, args=(i,))
        for i in range(READER_THREADS)
    ]
    threads.append(threading.Thread(target=_churn, args=(system, errors)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "stress thread hung"

    assert errors == []
    assert system.epochs.current_epoch > pinned.epoch  # churn published
    system.unpin_snapshot(pinned)
    assert system.epochs.deferred_free_count() == 0
    assert system.verify_consistency().ok


def test_executor_serves_fresh_epochs_during_churn(fresh_system):
    system = fresh_system(n_tuples=800, seed=37)
    rng = random.Random(11)
    workload = _workload(system, rng)
    errors: list[str] = []

    with QueryExecutor(system, threads=READER_THREADS) as executor:
        writer = threading.Thread(target=_churn, args=(system, errors))
        writer.start()
        tickets = []
        for _ in range(3):
            tickets.extend(
                getattr(executor, kind)(**kwargs)
                for kind, kwargs in workload
            )
        results = [ticket.result(timeout=120.0) for ticket in tickets]
        writer.join(timeout=120.0)
        assert not writer.is_alive(), "writer hung"

    assert errors == []
    epochs_seen = {result.stats.epoch for result in results}
    assert epochs_seen  # every answer is stamped with its epoch
    assert max(epochs_seen) <= system.epochs.current_epoch
    stats = executor.stats.snapshot()
    assert stats["failed"] == 0
    assert stats["completed"] == len(results)
    # Quiesced: every pin released, every deferred page reclaimed.
    assert system.epochs.pinned_epochs() == {}
    assert system.epochs.deferred_free_count() == 0
    assert system.verify_consistency().ok
